//! Tabular Q-learning via the temporal-difference update of Section II-B.
//!
//! `Q_t(s,a) = Q_{t-1}(s,a) + α (R(s,a) + γ max_{a'} Q(s',a') − Q_{t-1}(s,a))`
//!
//! The table is the exact baseline the paper's DNN approximates; it is also
//! what makes the action-space-explosion ablation measurable (the joint
//! action space is tabulated directly, the mini-action space through the
//! DQN).

use crate::policy;
use jarvis_stdkit::rng::SliceRandom;
use jarvis_stdkit::rng::Rng;
use std::collections::BTreeMap;

/// A sparse tabular Q function over dense state ids and flat action indices.
///
/// Storage is ordered (`BTreeMap`) so any future iteration over the table
/// (debug dumps, serialization) is independent of hasher state (lint rule
/// R1, DESIGN.md §12).
#[derive(Debug, Clone)]
pub struct QTable {
    num_actions: usize,
    alpha: f64,
    gamma: f64,
    table: BTreeMap<usize, Vec<f64>>,
}

impl QTable {
    /// New table for `num_actions` actions with learning rate `alpha` and
    /// discount `gamma`.
    ///
    /// # Panics
    ///
    /// Panics unless `num_actions > 0`, `0 < alpha ≤ 1`, and `0 ≤ gamma ≤ 1`.
    #[must_use]
    pub fn new(num_actions: usize, alpha: f64, gamma: f64) -> Self {
        assert!(num_actions > 0, "num_actions must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
        QTable { num_actions, alpha, gamma, table: BTreeMap::new() }
    }

    /// Number of actions per state.
    #[must_use]
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Number of states visited so far.
    #[must_use]
    pub fn num_visited_states(&self) -> usize {
        self.table.len()
    }

    /// Current Q value of `(state, action)` (0 before any update).
    #[must_use]
    pub fn q(&self, state: usize, action: usize) -> f64 {
        self.table
            .get(&state)
            .and_then(|row| row.get(action))
            .copied()
            .unwrap_or(0.0)
    }

    /// The full Q row of a state (zeros before any update).
    #[must_use]
    pub fn q_row(&self, state: usize) -> Vec<f64> {
        self.table
            .get(&state)
            .cloned()
            .unwrap_or_else(|| vec![0.0; self.num_actions])
    }

    /// Temporal-difference update for the transition
    /// `(state, action, reward, next_state)`. `next_valid` masks the actions
    /// considered in the `max_{a'}` backup; `done` suppresses the backup at
    /// terminal states.
    pub fn update(
        &mut self,
        state: usize,
        action: usize,
        reward: f64,
        next_state: usize,
        next_valid: &[usize],
        done: bool,
    ) {
        let future = if done {
            0.0
        } else {
            policy::max_q(&self.q_row(next_state), next_valid)
        };
        let row = self
            .table
            .entry(state)
            .or_insert_with(|| vec![0.0; self.num_actions]);
        debug_assert!(action < row.len(), "action {action} out of range");
        let old = row[action];
        row[action] = old + self.alpha * (reward + self.gamma * future - old);
    }

    /// The greedy action among `valid`, or `None` when `valid` is empty.
    #[must_use]
    pub fn best_action(&self, state: usize, valid: &[usize]) -> Option<usize> {
        policy::argmax(&self.q_row(state), valid)
    }

    /// The `c`-th best action among `valid` — the paper's `Max(Q, c)`.
    #[must_use]
    pub fn top_c_action(&self, state: usize, valid: &[usize], c: usize) -> Option<usize> {
        policy::top_c(&self.q_row(state), valid, c)
    }

    /// ε-greedy action selection over the `valid` set.
    ///
    /// # Panics
    ///
    /// Panics when `valid` is empty — a state must always offer at least one
    /// action (the no-op in Jarvis environments).
    pub fn epsilon_greedy(
        &self,
        state: usize,
        valid: &[usize],
        epsilon: f64,
        rng: &mut impl Rng,
    ) -> usize {
        assert!(!valid.is_empty(), "no valid action available");
        if rng.gen::<f64>() <= epsilon {
            *valid.choose(rng).expect("non-empty")
        } else {
            self.best_action(state, valid).expect("non-empty")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::testenv::Chain;
    use crate::env::{DiscreteEnvironment, Environment};
    use jarvis_stdkit::rng::SeedableRng;
    use jarvis_stdkit::rng::ChaCha8Rng;

    #[test]
    fn single_update_follows_td_equation() {
        let mut q = QTable::new(2, 0.5, 0.9);
        // Pre-load next state value.
        q.update(1, 0, 2.0, 1, &[], true); // Q(1,0) = 0.5 * 2 = 1.0
        assert_eq!(q.q(1, 0), 1.0);
        // Now update state 0 with backup from state 1.
        q.update(0, 1, 0.0, 1, &[0, 1], false);
        // Q(0,1) = 0 + 0.5 * (0 + 0.9 * 1.0 - 0) = 0.45
        assert!((q.q(0, 1) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn done_suppresses_backup() {
        let mut q = QTable::new(2, 1.0, 1.0);
        q.update(5, 0, 3.0, 5, &[0, 1], true);
        assert_eq!(q.q(5, 0), 3.0);
    }

    #[test]
    fn masked_backup_ignores_invalid_next_actions() {
        let mut q = QTable::new(2, 1.0, 1.0);
        q.update(1, 1, 10.0, 1, &[], true); // Q(1,1) = 10
        // Backup allowed only over action 0 of state 1 (worth 0).
        q.update(0, 0, 0.0, 1, &[0], false);
        assert_eq!(q.q(0, 0), 0.0);
        // Full mask sees the 10.
        q.update(0, 1, 0.0, 1, &[0, 1], false);
        assert_eq!(q.q(0, 1), 10.0);
    }

    #[test]
    fn solves_chain() {
        let mut env = Chain::new(4);
        let mut q = QTable::new(2, 0.5, 0.95);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..300 {
            env.reset();
            for _ in 0..64 {
                let s = env.state_id();
                let a = q.epsilon_greedy(s, &env.valid_actions(), 0.3, &mut rng);
                let step = env.step(a);
                q.update(s, a, step.reward, env.state_id(), &env.valid_actions(), step.done);
                if step.done {
                    break;
                }
            }
        }
        // Greedy policy goes right from every non-terminal state.
        for s in 0..4 {
            assert_eq!(q.best_action(s, &[0, 1]), Some(1), "state {s}");
        }
    }

    #[test]
    fn unvisited_state_is_zero() {
        let q = QTable::new(3, 0.1, 0.9);
        assert_eq!(q.q(42, 2), 0.0);
        assert_eq!(q.q_row(42), vec![0.0; 3]);
        assert_eq!(q.num_visited_states(), 0);
    }

    #[test]
    fn epsilon_one_is_uniform_random() {
        let q = QTable::new(2, 0.5, 0.9);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 10_000;
        let ones = (0..n)
            .filter(|_| q.epsilon_greedy(0, &[0, 1], 1.0, &mut rng) == 1)
            .count();
        let rate = ones as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.03, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "no valid action")]
    fn empty_valid_set_panics() {
        let q = QTable::new(2, 0.5, 0.9);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        q.epsilon_greedy(0, &[], 0.5, &mut rng);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        QTable::new(2, 0.0, 0.9);
    }
}
