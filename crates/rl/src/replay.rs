//! Bounded experience-replay memory (the `Mem`/`Replay` of Algorithm 2).

use jarvis_stdkit::rng::sample_indices;
use jarvis_stdkit::rng::Rng;
use std::collections::VecDeque;

/// A bounded FIFO memory with uniform random sampling.
///
/// Stores the agent's experiences across episodes; [`ReplayBuffer::sample`]
/// draws the random mini-batch that Algorithm 2's `Replay(BSize)` procedure
/// replays through the DNN.
#[derive(Debug, Clone)]
pub struct ReplayBuffer<T> {
    capacity: usize,
    items: VecDeque<T>,
}

impl<T> ReplayBuffer<T> {
    /// An empty buffer holding at most `capacity` experiences.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer { capacity, items: VecDeque::with_capacity(capacity.min(4096)) }
    }

    /// Append an experience, evicting the oldest when full.
    pub fn push(&mut self, item: T) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
        }
        self.items.push_back(item);
    }

    /// Number of stored experiences.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Draw `n` distinct experiences uniformly at random; returns `None`
    /// until at least `n` are stored (Algorithm 2 replays only once
    /// `|Mem| > BSize`).
    pub fn sample(&self, n: usize, rng: &mut impl Rng) -> Option<Vec<&T>> {
        if n == 0 || self.items.len() < n {
            return None;
        }
        let idx = sample_indices(rng, self.items.len(), n);
        Some(idx.into_iter().map(|i| &self.items[i]).collect())
    }

    /// Iterate over stored experiences, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Drop all stored experiences.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<T> Extend<T> for ReplayBuffer<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jarvis_stdkit::rng::SeedableRng;
    use jarvis_stdkit::rng::ChaCha8Rng;

    #[test]
    fn push_and_evict_fifo() {
        let mut buf = ReplayBuffer::new(3);
        buf.extend([1, 2, 3, 4]);
        assert_eq!(buf.len(), 3);
        let items: Vec<_> = buf.iter().copied().collect();
        assert_eq!(items, vec![2, 3, 4]);
        assert_eq!(buf.capacity(), 3);
    }

    #[test]
    fn sample_requires_enough_items() {
        let mut buf = ReplayBuffer::new(10);
        buf.push(1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(buf.sample(2, &mut rng).is_none());
        assert!(buf.sample(0, &mut rng).is_none());
        buf.push(2);
        assert_eq!(buf.sample(2, &mut rng).unwrap().len(), 2);
    }

    #[test]
    fn sample_is_distinct() {
        let mut buf = ReplayBuffer::new(100);
        buf.extend(0..100);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let s = buf.sample(50, &mut rng).unwrap();
        let unique: std::collections::HashSet<_> = s.iter().map(|&&x| x).collect();
        assert_eq!(unique.len(), 50);
    }

    #[test]
    fn sample_covers_buffer_over_draws() {
        let mut buf = ReplayBuffer::new(8);
        buf.extend(0..8);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            for &&x in &buf.sample(2, &mut rng).unwrap() {
                seen.insert(x);
            }
        }
        assert_eq!(seen.len(), 8, "uniform sampling should reach every item");
    }

    #[test]
    fn clear_empties() {
        let mut buf = ReplayBuffer::new(4);
        buf.extend([1, 2]);
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ReplayBuffer::<i32>::new(0);
    }
}
