//! Property-based tests for the RL substrate.

use jarvis_rl::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Q-table updates keep values bounded by the discounted reward bound
    /// |Q| ≤ r_max / (1 − γ) under arbitrary update sequences.
    #[test]
    fn qtable_values_bounded(
        gamma in 0.0f64..0.99,
        updates in prop::collection::vec(
            (0usize..6, 0usize..3, -1.0f64..1.0, 0usize..6, any::<bool>()),
            1..200,
        ),
    ) {
        let mut q = QTable::new(3, 0.5, gamma);
        for &(s, a, r, s2, done) in &updates {
            q.update(s, a, r, s2, &[0, 1, 2], done);
        }
        let bound = 1.0 / (1.0 - gamma) + 1e-6;
        for s in 0..6 {
            for a in 0..3 {
                prop_assert!(q.q(s, a).abs() <= bound, "Q({s},{a}) = {}", q.q(s, a));
            }
        }
    }

    /// ε-greedy with ε = 0 always takes the greedy action; with ε = 1 it
    /// always stays within the valid set.
    #[test]
    fn epsilon_greedy_extremes(
        valid in prop::collection::vec(0usize..4, 1..4),
        seed in any::<u64>(),
    ) {
        let mut valid = valid;
        valid.sort_unstable();
        valid.dedup();
        let mut q = QTable::new(4, 0.5, 0.9);
        q.update(0, valid[0], 1.0, 0, &[], true); // make valid[0] the best
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let greedy = q.epsilon_greedy(0, &valid, 0.0, &mut rng);
        prop_assert_eq!(Some(greedy), q.best_action(0, &valid));
        for _ in 0..20 {
            let a = q.epsilon_greedy(0, &valid, 1.0, &mut rng);
            prop_assert!(valid.contains(&a));
        }
    }

    /// The epsilon schedule never leaves [min, initial] no matter the loss
    /// sequence.
    #[test]
    fn epsilon_schedule_bounds(
        start in 0.2f64..1.0,
        decay in 0.5f64..0.999,
        losses in prop::collection::vec(0.0f64..10.0, 0..100),
    ) {
        let min = start / 4.0;
        let mut s = EpsilonSchedule::new(start, min, decay, 1.0);
        for &l in &losses {
            let eps = s.observe_loss(l);
            prop_assert!(eps >= min - 1e-12 && eps <= start + 1e-12);
        }
    }

    /// Replay sampling returns distinct indices within bounds.
    #[test]
    fn replay_sampling_is_well_formed(
        capacity in 2usize..64,
        pushes in 0usize..200,
        n in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            buf.push(i);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match buf.sample(n, &mut rng) {
            None => prop_assert!(buf.len() < n),
            Some(sample) => {
                prop_assert_eq!(sample.len(), n);
                let set: std::collections::HashSet<_> = sample.iter().map(|&&x| x).collect();
                prop_assert_eq!(set.len(), n, "duplicates in sample");
                for &&x in &sample {
                    prop_assert!(x < pushes, "sampled item never pushed");
                }
            }
        }
    }

    /// A constrained environment's valid set is always a subset of the
    /// base environment's.
    #[test]
    fn constraint_is_a_subset(mask in prop::collection::vec(any::<bool>(), 2)) {
        use jarvis_rl::{ConstrainedEnv, Environment};

        #[derive(Clone)]
        struct TwoAction;
        impl Environment for TwoAction {
            fn state_dim(&self) -> usize { 1 }
            fn num_actions(&self) -> usize { 2 }
            fn observe(&self) -> Vec<f64> { vec![0.0] }
            fn valid_actions(&self) -> Vec<usize> { vec![0, 1] }
            fn reset(&mut self) -> Vec<f64> { self.observe() }
            fn step(&mut self, _a: usize) -> Step {
                Step { obs: self.observe(), reward: 0.0, done: false }
            }
        }

        let m = mask.clone();
        let env = ConstrainedEnv::new(TwoAction, move |_, a| m[a]);
        let valid = env.valid_actions();
        for &a in &valid {
            prop_assert!(mask[a], "blocked action {a} leaked through");
        }
        prop_assert_eq!(valid.len(), mask.iter().filter(|&&b| b).count());
    }

    /// DQN action selection is always within the valid set, for any
    /// observation.
    #[test]
    fn dqn_act_respects_valid_set(
        obs in prop::collection::vec(-1.0f64..1.0, 3),
        valid in prop::collection::vec(0usize..5, 1..5),
        seed in any::<u64>(),
    ) {
        let mut valid = valid;
        valid.sort_unstable();
        valid.dedup();
        let mut cfg = DqnConfig::new(3, 5);
        cfg.hidden = vec![4];
        cfg.seed = seed;
        let mut agent = DqnAgent::new(cfg).unwrap();
        for _ in 0..10 {
            let a = agent.act(&obs, &valid).unwrap();
            prop_assert!(valid.contains(&a));
        }
    }
}
