//! Property-based tests for the RL substrate.

use jarvis_rl::*;
use jarvis_stdkit::prop_assert;
use jarvis_stdkit::prop_assert_eq;
use jarvis_stdkit::propcheck::Config;
use jarvis_stdkit::rng::{ChaCha8Rng, SeedableRng};

/// Q-table updates keep values bounded by the discounted reward bound
/// |Q| ≤ r_max / (1 − γ) under arbitrary update sequences.
#[test]
fn qtable_values_bounded() {
    Config::with_cases(48).run(|g| {
        let gamma = g.f64_in(0.0, 0.99);
        let n_updates = g.usize_in(1, 199);
        let mut q = QTable::new(3, 0.5, gamma);
        for _ in 0..n_updates {
            let s = g.usize_in(0, 5);
            let a = g.usize_in(0, 2);
            let r = g.f64_in(-1.0, 1.0);
            let s2 = g.usize_in(0, 5);
            let done = g.bool(0.5);
            q.update(s, a, r, s2, &[0, 1, 2], done);
        }
        let bound = 1.0 / (1.0 - gamma) + 1e-6;
        for s in 0..6 {
            for a in 0..3 {
                prop_assert!(q.q(s, a).abs() <= bound, "Q({s},{a}) = {}", q.q(s, a));
            }
        }
        Ok(())
    });
}

/// ε-greedy with ε = 0 always takes the greedy action; with ε = 1 it
/// always stays within the valid set.
#[test]
fn epsilon_greedy_extremes() {
    Config::with_cases(48).run(|g| {
        let mut valid: Vec<usize> = (0..g.usize_in(1, 3)).map(|_| g.usize_in(0, 3)).collect();
        let seed = g.u64();
        valid.sort_unstable();
        valid.dedup();
        let mut q = QTable::new(4, 0.5, 0.9);
        q.update(0, valid[0], 1.0, 0, &[], true); // make valid[0] the best
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let greedy = q.epsilon_greedy(0, &valid, 0.0, &mut rng);
        prop_assert_eq!(Some(greedy), q.best_action(0, &valid));
        for _ in 0..20 {
            let a = q.epsilon_greedy(0, &valid, 1.0, &mut rng);
            prop_assert!(valid.contains(&a));
        }
        Ok(())
    });
}

/// The epsilon schedule never leaves [min, initial] no matter the loss
/// sequence.
#[test]
fn epsilon_schedule_bounds() {
    Config::with_cases(48).run(|g| {
        let start = g.f64_in(0.2, 1.0);
        let decay = g.f64_in(0.5, 0.999);
        let n_losses = g.usize_in(0, 99);
        let min = start / 4.0;
        let mut s = EpsilonSchedule::new(start, min, decay, 1.0);
        for _ in 0..n_losses {
            let eps = s.observe_loss(g.f64_in(0.0, 10.0));
            prop_assert!(eps >= min - 1e-12 && eps <= start + 1e-12);
        }
        Ok(())
    });
}

/// Replay sampling returns distinct indices within bounds.
#[test]
fn replay_sampling_is_well_formed() {
    Config::with_cases(48).run(|g| {
        let capacity = g.usize_in(2, 63);
        let pushes = g.usize_in(0, 199);
        let n = g.usize_in(1, 15);
        let seed = g.u64();
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            buf.push(i);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match buf.sample(n, &mut rng) {
            None => prop_assert!(buf.len() < n),
            Some(sample) => {
                prop_assert_eq!(sample.len(), n);
                let set: std::collections::HashSet<_> = sample.iter().map(|&&x| x).collect();
                prop_assert_eq!(set.len(), n, "duplicates in sample");
                for &&x in &sample {
                    prop_assert!(x < pushes, "sampled item never pushed");
                }
            }
        }
        Ok(())
    });
}

/// A constrained environment's valid set is always a subset of the
/// base environment's.
#[test]
fn constraint_is_a_subset() {
    #[derive(Clone)]
    struct TwoAction;
    impl Environment for TwoAction {
        fn state_dim(&self) -> usize {
            1
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn observe(&self) -> Vec<f64> {
            vec![0.0]
        }
        fn valid_actions(&self) -> Vec<usize> {
            vec![0, 1]
        }
        fn reset(&mut self) -> Vec<f64> {
            self.observe()
        }
        fn step(&mut self, _a: usize) -> Step {
            Step { obs: self.observe(), reward: 0.0, done: false }
        }
    }

    Config::with_cases(48).run(|g| {
        let mask = vec![g.bool(0.5), g.bool(0.5)];
        let m = mask.clone();
        let env = ConstrainedEnv::new(TwoAction, move |_, a| m[a]);
        let valid = env.valid_actions();
        for &a in &valid {
            prop_assert!(mask[a], "blocked action {a} leaked through");
        }
        prop_assert_eq!(valid.len(), mask.iter().filter(|&&b| b).count());
        Ok(())
    });
}

/// The batched act path is bit-identical to the single-state path: two
/// identically-seeded agents — one calling `act` row by row, one calling
/// `act_batch` once — produce the same actions, and for a batch of one
/// `act == act_batch[0]` exactly (the delegation contract). Greedy Q rows
/// from the batched forward match single-row forwards bitwise.
#[test]
fn dqn_act_batch_matches_sequential_act_bitwise() {
    Config::with_cases(48).run(|g| {
        let state_dim = g.usize_in(1, 5);
        let num_actions = g.usize_in(2, 6);
        let batch = g.usize_in(1, 12);
        let seed = g.u64();
        let mut cfg = DqnConfig::new(state_dim, num_actions);
        cfg.hidden = vec![g.usize_in(1, 8)];
        cfg.seed = seed;
        let eps = g.f64_in(0.0, 1.0);
        cfg.schedule = EpsilonSchedule::new(eps, eps / 2.0, 0.97, f64::INFINITY);
        let mut sequential = DqnAgent::new(cfg.clone()).unwrap();
        let mut batched = DqnAgent::new(cfg).unwrap();

        let obs: Vec<Vec<f64>> = (0..batch)
            .map(|_| (0..state_dim).map(|_| g.f64_in(-1.0, 1.0)).collect())
            .collect();
        let valid: Vec<Vec<usize>> = (0..batch)
            .map(|_| {
                let mut v: Vec<usize> = (0..g.usize_in(1, num_actions - 1))
                    .map(|_| g.usize_in(0, num_actions - 1))
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();

        let seq: Vec<usize> = obs
            .iter()
            .zip(&valid)
            .map(|(o, v)| sequential.act(o, v).unwrap())
            .collect();
        let obs_refs: Vec<&[f64]> = obs.iter().map(Vec::as_slice).collect();
        let valid_refs: Vec<&[usize]> = valid.iter().map(Vec::as_slice).collect();
        let got = batched.act_batch(&obs_refs, &valid_refs).unwrap();
        prop_assert_eq!(&seq, &got, "batched actions diverged from sequential");

        // Greedy values ride the same GEMM: batched Q rows are bitwise equal
        // to single-row forwards, so constraint-masked argmax rows agree too.
        let q_batch = batched.q_values_batch(&obs_refs).unwrap();
        for (i, o) in obs.iter().enumerate() {
            let q_single = batched.q_values(o).unwrap();
            prop_assert!(
                q_single.iter().zip(&q_batch[i]).all(|(a, b)| a.to_bits() == b.to_bits()),
                "q row {i} diverged"
            );
        }
        let best_batch = batched.best_action_batch(&obs_refs, &valid_refs).unwrap();
        for (i, (o, v)) in obs.iter().zip(&valid).enumerate() {
            prop_assert_eq!(best_batch[i], batched.best_action(o, v).unwrap());
        }
        Ok(())
    });
}

/// DQN action selection is always within the valid set, for any
/// observation.
#[test]
fn dqn_act_respects_valid_set() {
    Config::with_cases(48).run(|g| {
        let obs: Vec<f64> = (0..3).map(|_| g.f64_in(-1.0, 1.0)).collect();
        let mut valid: Vec<usize> = (0..g.usize_in(1, 4)).map(|_| g.usize_in(0, 4)).collect();
        let seed = g.u64();
        valid.sort_unstable();
        valid.dedup();
        let mut cfg = DqnConfig::new(3, 5);
        cfg.hidden = vec![4];
        cfg.seed = seed;
        let mut agent = DqnAgent::new(cfg).unwrap();
        for _ in 0..10 {
            let a = agent.act(&obs, &valid).unwrap();
            prop_assert!(valid.contains(&a));
        }
        Ok(())
    });
}
