//! The wire types of the serving runtime: envelopes in, outcomes out.

use jarvis::Verdict;
use jarvis_iot_model::MiniAction;
use jarvis_stdkit::{json_enum, json_struct};

/// What an [`Envelope`] carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A command observed in a home (an occupant or an app acting on a
    /// device). The runtime checks it against the home's safe-transition
    /// table before stepping the home's state — the monitor path.
    Action(MiniAction),
    /// An exogenous sensor attribute change (door opened, temperature band
    /// moved). Applied to the home's state unchecked — the environment is
    /// never "unsafe", only actions are.
    Sensor(MiniAction),
    /// A decision query: "what should this home do right now?" Answered by
    /// the batched policy path with the ambient telemetry carried here.
    Query {
        /// Indoor temperature, °C.
        indoor_c: f64,
        /// Outdoor temperature, °C.
        outdoor_c: f64,
        /// Current electricity price, $/kWh.
        price_per_kwh: f64,
    },
}

json_enum!(EventKind {
    Action(mini),
    Sensor(mini),
    Query { indoor_c, outdoor_c, price_per_kwh },
});

/// One routed unit of work: a home-tagged, globally sequenced event.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Global sequence number, assigned in arrival order at ingest. The
    /// determinism contract is stated over this ordering: outcomes are
    /// reported sorted by `seq` whatever the shard count.
    pub seq: u64,
    /// The home this event belongs to.
    pub home: u64,
    /// Minute-of-day timestamp.
    pub minute: u32,
    /// The payload.
    pub kind: EventKind,
}

json_struct!(Envelope { seq, home, minute, kind });

/// Which machinery answered a decision query — the degraded-mode telemetry
/// of the self-healing runtime (DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionSource {
    /// The neural policy path: a batched Q forward walked down the ranking
    /// to the best action the home's safe set allows.
    Policy,
    /// The SPL safe-table fallback: the policy path was quarantined or the
    /// shard had exhausted its restart budget, so the runtime answered with
    /// the always-safe no-op while the monitor kept enforcing. Enforcement
    /// never lapses; only *suggestions* degrade.
    SafeTableFallback,
}

json_enum!(DecisionSource { Policy, SafeTableFallback });

/// One per-event result emitted by a worker shard.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The safety verdict for an [`EventKind::Action`] event. `Violation`
    /// means the action was blocked (the home's state did not move) and the
    /// home's alarm counter was bumped.
    Verdict {
        /// The event's global sequence number.
        seq: u64,
        /// The home the event belonged to.
        home: u64,
        /// The monitor verdict.
        verdict: Verdict,
    },
    /// An [`EventKind::Sensor`] event was applied to the home's state.
    SensorApplied {
        /// The event's global sequence number.
        seq: u64,
        /// The home the event belonged to.
        home: u64,
    },
    /// The policy's answer to an [`EventKind::Query`]: the best *safe*
    /// action, found by walking the Q ranking down past unsafe entries
    /// (the `Max(Q, c)` loop of the paper's Algorithm 2).
    Decision {
        /// The event's global sequence number.
        seq: u64,
        /// The home the event belonged to.
        home: u64,
        /// The suggested mini-action (`None` = do nothing).
        action: Option<MiniAction>,
        /// The flat policy-head index of the suggestion (0 = no-op).
        flat: usize,
        /// The Q value of the suggestion.
        q_value: f64,
        /// How many higher-Q but unsafe actions were skipped.
        rank: usize,
        /// Which machinery produced the answer (policy vs degraded-mode
        /// safe-table fallback).
        source: DecisionSource,
    },
}

impl Outcome {
    /// The global sequence number of the event this outcome answers.
    #[must_use]
    pub fn seq(&self) -> u64 {
        match *self {
            Outcome::Verdict { seq, .. }
            | Outcome::SensorApplied { seq, .. }
            | Outcome::Decision { seq, .. } => seq,
        }
    }

    /// The home the answered event belonged to.
    #[must_use]
    pub fn home(&self) -> u64 {
        match *self {
            Outcome::Verdict { home, .. }
            | Outcome::SensorApplied { home, .. }
            | Outcome::Decision { home, .. } => home,
        }
    }
}

/// What the router does when a shard's bounded ingest ring
/// (a [`jarvis_stdkit::sync::StealQueue`]) is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block the router until the shard drains — classic backpressure; no
    /// event is ever lost, throughput degrades instead.
    Block,
    /// Shed the event: it is *not* delivered, and a [`Rejection`] naming its
    /// sequence number is reported. Nothing is dropped silently.
    Shed,
    /// Fail the whole `serve` call with
    /// [`JarvisError::Overload`](jarvis::JarvisError) on the first full
    /// queue.
    Error,
}

/// The explicit record of one shed event — the runtime's guarantee that
/// backpressure never drops work silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// The shed event's global sequence number.
    pub seq: u64,
    /// The home the event belonged to.
    pub home: u64,
    /// The shard whose queue was full.
    pub shard: usize,
}
