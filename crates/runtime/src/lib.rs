//! # jarvis-runtime
//!
//! A sharded, multi-home serving runtime over the Jarvis stack: the layer
//! that takes the paper's one-home prototype toward the ROADMAP's
//! fleet-scale north star.
//!
//! The runtime ingests per-home event streams ([`ServingRuntime::ingest_day`]
//! / [`ServingRuntime::ingest_fleet_day`], optionally corrupted by a
//! [`FaultInjector`](jarvis_sim::FaultInjector) at the ingest boundary),
//! places homes onto `N` worker shards with deterministic load-aware bin
//! packing (see [`Placement`]), routes envelopes over lock-free bounded
//! [`jarvis_stdkit::sync::StealQueue`](jarvis_stdkit::sync::StealQueue)
//! ingest rings, and answers three kinds of events:
//!
//! - **Actions** are checked against the home's learned safe-transition
//!   table (the paper's runtime monitor): safe actions step the home's FSM
//!   state, violations are blocked and alarmed.
//! - **Sensor** events step the state unchecked (the environment is never
//!   "unsafe", only actions are).
//! - **Queries** are parked in a batching window (closed adaptively the
//!   moment the shard's ingest ring runs dry) and answered through one
//!   [`DqnAgent::q_values_batch`](jarvis_rl::DqnAgent::q_values_batch)
//!   matrix pass riding the blocked GEMM kernels, then walked down the Q
//!   ranking to the best action each home's safe set allows. Closed
//!   batches are published on per-shard run queues; an idle worker
//!   *steals* batches from its siblings in a fixed victim order, so one
//!   hot shard's inference backlog drains across the whole pool.
//!
//! **Determinism contract.** The batched forward is bit-identical per row
//! to a single-row forward, every event of one home is processed in global
//! sequence order whatever the shard count, and decisions draw no
//! randomness. Stealing moves only *closed* batches whose observations,
//! valid-action sets, and action maps were snapshotted at in-order
//! processing time — pure inference work — so for a fixed ingested stream,
//! the outcome list (sorted by sequence number) is byte-identical across
//! shard counts, steal schedules, batching modes, and between
//! deterministic and threaded-`Block` execution. Backpressure is explicit:
//! a full queue blocks, sheds with a reported [`Rejection`], or fails with
//! [`JarvisError::Overload`](jarvis::JarvisError), per [`OverloadPolicy`] —
//! never a silent drop. Shards snapshot and restore byte-identically via
//! [`ShardSnapshot`], carrying the fleet policy as a bit-exact
//! [`DqnCheckpoint`](jarvis_rl::DqnCheckpoint).
//!
//! ```no_run
//! use jarvis_policy::SafeTransitionTable;
//! use jarvis_rl::{DqnAgent, DqnConfig};
//! use jarvis_runtime::{RuntimeConfig, ServingRuntime};
//! use jarvis_sim::{FleetGenerator, HomeDataset};
//! use jarvis_smart_home::SmartHome;
//!
//! let home = SmartHome::evaluation_home();
//! let state_dim = home.fsm().state_sizes().iter().sum::<usize>() + 5;
//! let num_actions = home.agent_mini_actions().len() + 1;
//! let policy = DqnAgent::new(DqnConfig::new(state_dim, num_actions))?;
//!
//! let mut runtime = ServingRuntime::new(RuntimeConfig::new(4), policy)?;
//! let fleet = FleetGenerator::new(42, 16);
//! for id in 0..fleet.num_homes() {
//!     runtime.register_home(u64::from(id), home.clone(), SafeTransitionTable::new())?;
//! }
//! let ingest = runtime.ingest_fleet_day(&fleet, 0, None, Some(15))?;
//! let report = runtime.serve(ingest.envelopes)?;
//! println!("{} outcomes, {} decisions", report.outcomes.len(), report.decisions());
//! # Ok::<(), jarvis::JarvisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod online;
mod policy_store;
mod runtime;
mod shard;
mod slot;
mod supervisor;
mod wal;

pub use event::{DecisionSource, Envelope, EventKind, Outcome, OverloadPolicy, Rejection};
pub use online::{
    AmbientTelemetry, FineTuneConfig, FineTuneReport, OnlineConfig, OnlineLearner,
};
pub use policy_store::{
    PolicyStore, PolicyVersion, ShadowGates, ShadowRow, ShadowScore, SwapPoint, SwapRecord,
};
pub use runtime::{
    IngestReport, Placement, RuntimeConfig, RuntimeSnapshot, ServeReport, ServingRuntime,
    ShardSnapshot,
};
pub use slot::{HomeSlot, HomeSnapshot};
pub use supervisor::{
    FailureCause, QuarantineRecord, RecoveryReport, RestartRecord, SupervisedReport,
    SupervisorConfig,
};
pub use wal::{ShardWal, WalRecord};
