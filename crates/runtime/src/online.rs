//! Online continual learning in the serving path (DESIGN.md §16).
//!
//! The paper freezes enforcement after the learning phase; a production
//! fleet can't. This module gives each [`crate::HomeSlot`] a serializable
//! [`OnlineLearner`] that keeps learning *while* the slot serves:
//!
//! - **Incremental SPL** — monitor-flagged (state, action) pairs
//!   accumulate in a shadow [`SplDelta`](jarvis_policy::SplDelta) and fold
//!   into the slot's `P_safe` on a deterministic per-home envelope cadence
//!   with hysteresis ([`OnlineConfig::fold_every`],
//!   [`OnlineConfig::hysteresis_folds`]), so a routine shift is eventually
//!   admitted while a single anomalous day never is. Quarantined and
//!   degraded-mode windows pass `learn = false` down the event path and
//!   never contribute.
//! - **Replay deltas** — safely executed actions append
//!   [`Experience`](jarvis_rl::Experience) transitions to a bounded
//!   per-slot replay delta that the [`ServingRuntime::fine_tune`]
//!   background pass drains into the home's attached PR-3
//!   `OptimizerCheckpoint` and into a fleet-level candidate policy, through
//!   the [`jarvis_stdkit::pool`] worker pool, off the decision path.
//!
//! Everything here is state, not machinery: the learner rides inside
//! [`HomeSnapshot`](crate::HomeSnapshot) and therefore inside WAL
//! checkpoints and [`RuntimeSnapshot`](crate::RuntimeSnapshot)s, which is
//! what makes crash recovery and rollback byte-identical with online
//! learning enabled.
//!
//! [`ServingRuntime::fine_tune`]: crate::ServingRuntime::fine_tune

use jarvis::JarvisError;
use jarvis_policy::SplDelta;
use jarvis_rl::Experience;
use jarvis_stdkit::json_struct;

/// Tuning knobs of the per-slot online learner.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineConfig {
    /// Per-home envelopes between SPL folds (the virtual-tick cadence; the
    /// runtime never reads a wall clock for this).
    pub fold_every: u64,
    /// Minimum observations of a candidate pair within one fold window for
    /// the window to count as supporting it.
    pub support_threshold: u64,
    /// Consecutive supported folds before a candidate pair enters the safe
    /// table. With a fold window of roughly a day, `>= 2` guarantees one
    /// anomalous day can never poison `P_safe`.
    pub hysteresis_folds: u32,
    /// Bound on the per-slot replay delta; the oldest experience is dropped
    /// first when full.
    pub replay_delta_cap: usize,
}

json_struct!(OnlineConfig { fold_every, support_threshold, hysteresis_folds, replay_delta_cap });

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            fold_every: 256,
            support_threshold: 3,
            hysteresis_folds: 2,
            replay_delta_cap: 256,
        }
    }
}

impl OnlineConfig {
    pub(crate) fn validate(&self) -> Result<(), JarvisError> {
        if self.fold_every == 0 {
            return Err(JarvisError::Config("fold cadence must be at least 1 envelope".into()));
        }
        if self.support_threshold == 0 {
            return Err(JarvisError::Config("support threshold must be at least 1".into()));
        }
        if self.hysteresis_folds == 0 {
            return Err(JarvisError::Config("hysteresis must be at least 1 fold".into()));
        }
        if self.replay_delta_cap == 0 {
            return Err(JarvisError::Config("replay delta cap must be at least 1".into()));
        }
        Ok(())
    }
}

/// The last ambient telemetry a slot saw (carried by decision queries),
/// used to encode replay-delta observations between queries.
#[derive(Debug, Clone, PartialEq)]
pub struct AmbientTelemetry {
    /// Indoor temperature, °C.
    pub indoor_c: f64,
    /// Outdoor temperature, °C.
    pub outdoor_c: f64,
    /// Electricity price, $/kWh.
    pub price_per_kwh: f64,
}

json_struct!(AmbientTelemetry { indoor_c, outdoor_c, price_per_kwh });

impl Default for AmbientTelemetry {
    fn default() -> Self {
        AmbientTelemetry { indoor_c: 21.0, outdoor_c: 10.0, price_per_kwh: 0.15 }
    }
}

/// One slot's continual-learning state: the shadow SPL delta, the fold
/// counters, and the bounded replay delta. Pure serializable state — it
/// rides in [`HomeSnapshot`](crate::HomeSnapshot)s, WAL checkpoints, and
/// [`RuntimeSnapshot`](crate::RuntimeSnapshot)s byte-for-byte, so recovery
/// and rollback restore learning progress exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineLearner {
    /// The learner's configuration.
    pub config: OnlineConfig,
    /// The shadow safe-table delta under hysteresis.
    pub delta: SplDelta,
    /// Learning-eligible envelopes seen since the last fold.
    pub since_fold: u64,
    /// Folds performed over this slot's lifetime.
    pub folds: u64,
    /// Pairs admitted into the safe table over this slot's lifetime.
    pub admitted: u64,
    /// Safe transitions waiting to be drained by the fine-tuner, oldest
    /// first.
    pub replay: Vec<Experience>,
    /// Experiences dropped because the replay delta was full.
    pub dropped: u64,
    /// Ambient telemetry of the most recent decision query.
    pub ambient: AmbientTelemetry,
}

json_struct!(OnlineLearner {
    config,
    delta,
    since_fold,
    folds,
    admitted,
    replay,
    dropped,
    ambient,
});

impl OnlineLearner {
    /// A fresh learner under `config`.
    #[must_use]
    pub fn new(config: OnlineConfig) -> Self {
        OnlineLearner {
            config,
            delta: SplDelta::new(),
            since_fold: 0,
            folds: 0,
            admitted: 0,
            replay: Vec::new(),
            dropped: 0,
            ambient: AmbientTelemetry::default(),
        }
    }

    /// Append a safe transition to the replay delta, dropping the oldest
    /// entry when the bound is hit.
    pub(crate) fn push_experience(&mut self, exp: Experience) {
        if self.replay.len() >= self.config.replay_delta_cap {
            self.replay.remove(0);
            self.dropped += 1;
        }
        self.replay.push(exp);
    }

    /// Take the accumulated replay delta, leaving the learner empty.
    pub(crate) fn drain_replay(&mut self) -> Vec<Experience> {
        std::mem::take(&mut self.replay)
    }
}

/// Tuning knobs of one [`ServingRuntime::fine_tune`] background pass.
///
/// [`ServingRuntime::fine_tune`]: crate::ServingRuntime::fine_tune
#[derive(Debug, Clone, PartialEq)]
pub struct FineTuneConfig {
    /// Gradient steps replayed per tuned agent (per home, and once more for
    /// the fleet candidate).
    pub replay_steps: u32,
    /// Minimum experiences in a slot's replay delta before the slot is
    /// tuned; smaller deltas are left to accumulate.
    pub min_delta: usize,
}

json_struct!(FineTuneConfig { replay_steps, min_delta });

impl Default for FineTuneConfig {
    fn default() -> Self {
        FineTuneConfig { replay_steps: 4, min_delta: 8 }
    }
}

impl FineTuneConfig {
    pub(crate) fn validate(&self) -> Result<(), JarvisError> {
        if self.min_delta == 0 {
            return Err(JarvisError::Config("min_delta must be at least 1".into()));
        }
        Ok(())
    }
}

/// What one [`ServingRuntime::fine_tune`] pass did.
///
/// [`ServingRuntime::fine_tune`]: crate::ServingRuntime::fine_tune
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FineTuneReport {
    /// Homes whose attached `OptimizerCheckpoint` was updated in place.
    pub homes_tuned: usize,
    /// Homes skipped: replay delta below `min_delta`, or no attached
    /// checkpoint to tune.
    pub homes_skipped: usize,
    /// Experiences drained across all tuned homes.
    pub experiences: usize,
    /// The staged fleet-candidate policy version produced from the pooled
    /// deltas, when any home was tuned (`None` = nothing to learn from).
    pub candidate: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use jarvis_stdkit::json::{FromJson, ToJson};

    #[test]
    fn replay_delta_is_bounded_oldest_first() {
        let mut learner =
            OnlineLearner::new(OnlineConfig { replay_delta_cap: 2, ..OnlineConfig::default() });
        for reward in 0..4 {
            learner.push_experience(Experience {
                state: vec![0.0],
                action: 0,
                reward: f64::from(reward),
                next: vec![1.0],
                next_valid: vec![0],
                done: false,
            });
        }
        assert_eq!(learner.replay.len(), 2);
        assert_eq!(learner.dropped, 2);
        assert_eq!(learner.replay[0].reward, 2.0, "oldest entries are dropped first");
        assert_eq!(learner.drain_replay().len(), 2);
        assert!(learner.replay.is_empty());
    }

    #[test]
    fn learner_round_trips_byte_for_byte() {
        let mut learner = OnlineLearner::new(OnlineConfig::default());
        learner.since_fold = 17;
        learner.folds = 3;
        learner.admitted = 1;
        learner.ambient = AmbientTelemetry { indoor_c: 19.5, outdoor_c: -3.0, price_per_kwh: 0.4 };
        learner.push_experience(Experience {
            state: vec![0.5, 1.0],
            action: 2,
            reward: 1.0,
            next: vec![0.25, 0.75],
            next_valid: vec![0, 2],
            done: false,
        });
        let json = learner.to_json();
        let back = OnlineLearner::from_json(&json).unwrap();
        assert_eq!(back, learner);
        assert_eq!(back.to_json(), json, "serialization must be byte-stable");
    }

    #[test]
    fn config_validation_rejects_zeroes() {
        for cfg in [
            OnlineConfig { fold_every: 0, ..OnlineConfig::default() },
            OnlineConfig { support_threshold: 0, ..OnlineConfig::default() },
            OnlineConfig { hysteresis_folds: 0, ..OnlineConfig::default() },
            OnlineConfig { replay_delta_cap: 0, ..OnlineConfig::default() },
        ] {
            assert!(cfg.validate().is_err());
        }
        assert!(OnlineConfig::default().validate().is_ok());
    }
}
