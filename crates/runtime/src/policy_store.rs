//! Versioned policy storage with shadow evaluation and deterministic
//! promotion gates (DESIGN.md §16).
//!
//! A [`PolicyStore`] keeps immutable, content-hashed policy versions. New
//! candidates (e.g. from [`ServingRuntime::fine_tune`]) are *staged*, then
//! run in **shadow**: the serving path scores the candidate against the
//! active policy on live traffic — per-decision agreement, safety parity of
//! the unconstrained argmax, and Q-regret under the active policy's value
//! estimate — without the candidate ever answering a query. Promotion is a
//! pure function of the accumulated [`ShadowScore`] and the configured
//! [`ShadowGates`]: same traffic ⇒ same decision, bit for bit.
//!
//! Swaps are explicit [`SwapRecord`]s; under supervised serving each shard
//! also logs a WAL swap record at the boundary, so crash recovery replays
//! onto the same active version. Rollback is
//! [`PolicyStore::rollback`] plus a byte-identical
//! [`RuntimeSnapshot`](crate::RuntimeSnapshot) restore.
//!
//! [`ServingRuntime::fine_tune`]: crate::ServingRuntime::fine_tune

use jarvis::JarvisError;
use jarvis_rl::DqnCheckpoint;
use jarvis_stdkit::json::{FromJson, Json, JsonError, ToJson};
use jarvis_stdkit::json_struct;
use std::collections::BTreeMap;

/// FNV-1a 64-bit over the checkpoint's canonical JSON — a cheap,
/// deterministic content address (integrity + dedup, not cryptography).
fn content_hash(json: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in json.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// One immutable policy version.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyVersion {
    /// The version id (dense, starting at 0 for the bootstrap policy).
    pub id: u64,
    /// FNV-1a 64 content hash of the checkpoint JSON.
    pub hash: String,
    /// The bit-exact policy weights.
    pub checkpoint: DqnCheckpoint,
}

json_struct!(PolicyVersion { id, hash, checkpoint });

/// One applied policy swap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapRecord {
    /// First global sequence number served by the new version.
    pub at_seq: u64,
    /// The version that was active before.
    pub from: u64,
    /// The version that became active.
    pub to: u64,
}

json_struct!(SwapRecord { at_seq, from, to });

/// A scheduled mid-stream policy swap for
/// [`ServingRuntime::serve_online`](crate::ServingRuntime::serve_online):
/// every envelope with `seq >= at_seq` is served by `version`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapPoint {
    /// First global sequence number the new version serves.
    pub at_seq: u64,
    /// The store version to swap in.
    pub version: u64,
}

/// One shadow-scored decision row, emitted by the batched decision path
/// when a candidate is staged. Rows are aggregated *sorted by seq*, so the
/// accumulated score is bitwise independent of shard count, steal schedule,
/// and batch grouping.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowRow {
    /// The decision's global sequence number.
    pub seq: u64,
    /// The candidate's constrained choice equalled the active policy's.
    pub agree: bool,
    /// Safety parity of the unconstrained argmax: the candidate's raw
    /// preference was safe-table-allowed iff the active policy's was. A
    /// `false` row means the candidate *wants* unsafe actions where the
    /// active policy does not (or vice versa).
    pub parity_ok: bool,
    /// Q-regret of the candidate's constrained choice under the *active*
    /// policy's value estimate, clamped at 0.
    pub regret: f64,
}

json_struct!(ShadowRow { seq, agree, parity_ok, regret });

/// Deterministic promotion gates over an accumulated [`ShadowScore`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowGates {
    /// Minimum shadow-scored decisions before promotion is considered.
    pub min_decisions: u64,
    /// Minimum agreement rate (agreements / decisions).
    pub min_agreement: f64,
    /// Maximum mean Q-regret per decision.
    pub max_mean_regret: f64,
}

json_struct!(ShadowGates { min_decisions, min_agreement, max_mean_regret });

impl Default for ShadowGates {
    fn default() -> Self {
        ShadowGates { min_decisions: 64, min_agreement: 0.75, max_mean_regret: 0.25 }
    }
}

/// The accumulated shadow evaluation of the staged candidate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShadowScore {
    /// Decisions scored.
    pub decisions: u64,
    /// Decisions where the candidate's constrained choice agreed.
    pub agreements: u64,
    /// Decisions with a safety-parity violation — any non-zero count blocks
    /// promotion.
    pub parity_violations: u64,
    /// Sum of per-decision Q-regret, folded in seq order.
    pub regret_sum: f64,
}

json_struct!(ShadowScore { decisions, agreements, parity_violations, regret_sum });

impl ShadowScore {
    /// Agreement rate, or 0 with no decisions.
    #[must_use]
    pub fn agreement(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.agreements as f64 / self.decisions as f64
        }
    }

    /// Mean per-decision regret, or 0 with no decisions.
    #[must_use]
    pub fn mean_regret(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.regret_sum / self.decisions as f64
        }
    }
}

/// Immutable versioned policy storage with shadow evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyStore {
    versions: BTreeMap<u64, PolicyVersion>,
    active: u64,
    candidate: Option<u64>,
    next_id: u64,
    gates: ShadowGates,
    score: ShadowScore,
    swaps: Vec<SwapRecord>,
}

/// JSON row form (the version map serializes as a sorted list).
#[derive(Debug, Clone)]
struct StoreRepr {
    versions: Vec<PolicyVersion>,
    active: u64,
    candidate: Option<u64>,
    next_id: u64,
    gates: ShadowGates,
    score: ShadowScore,
    swaps: Vec<SwapRecord>,
}

json_struct!(StoreRepr { versions, active, candidate, next_id, gates, score, swaps });

impl ToJson for PolicyStore {
    fn to_json_value(&self) -> Json {
        StoreRepr {
            versions: self.versions.values().cloned().collect(),
            active: self.active,
            candidate: self.candidate,
            next_id: self.next_id,
            gates: self.gates.clone(),
            score: self.score.clone(),
            swaps: self.swaps.clone(),
        }
        .to_json_value()
    }
}

impl FromJson for PolicyStore {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        let repr = StoreRepr::from_json_value(v)?;
        Ok(PolicyStore {
            versions: repr.versions.into_iter().map(|p| (p.id, p)).collect(),
            active: repr.active,
            candidate: repr.candidate,
            next_id: repr.next_id,
            gates: repr.gates,
            score: repr.score,
            swaps: repr.swaps,
        })
    }
}

impl PolicyStore {
    /// A store bootstrapped with `initial` as version 0, active.
    #[must_use]
    pub fn new(initial: DqnCheckpoint, gates: ShadowGates) -> Self {
        let hash = content_hash(&initial.to_json());
        let mut versions = BTreeMap::new();
        versions.insert(0, PolicyVersion { id: 0, hash, checkpoint: initial });
        PolicyStore {
            versions,
            active: 0,
            candidate: None,
            next_id: 1,
            gates,
            score: ShadowScore::default(),
            swaps: Vec::new(),
        }
    }

    /// The active version id.
    #[must_use]
    pub fn active(&self) -> u64 {
        self.active
    }

    /// The staged candidate version id, if any.
    #[must_use]
    pub fn candidate(&self) -> Option<u64> {
        self.candidate
    }

    /// A version by id.
    #[must_use]
    pub fn version(&self, id: u64) -> Option<&PolicyVersion> {
        self.versions.get(&id)
    }

    /// Number of stored versions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the store holds no versions (never true: version 0 always
    /// exists).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Every applied swap, oldest first.
    #[must_use]
    pub fn swaps(&self) -> &[SwapRecord] {
        &self.swaps
    }

    /// The promotion gates.
    #[must_use]
    pub fn gates(&self) -> &ShadowGates {
        &self.gates
    }

    /// The candidate's accumulated shadow score.
    #[must_use]
    pub fn score(&self) -> &ShadowScore {
        &self.score
    }

    /// Register a checkpoint as a new immutable version and return its id.
    /// Content-addressed: re-registering bytes the store already holds
    /// returns the existing id instead of minting a duplicate.
    pub fn register(&mut self, checkpoint: DqnCheckpoint) -> u64 {
        let hash = content_hash(&checkpoint.to_json());
        if let Some(existing) = self.versions.values().find(|p| p.hash == hash) {
            return existing.id;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.versions.insert(id, PolicyVersion { id, hash, checkpoint });
        id
    }

    /// Stage `id` as the shadow candidate, resetting the shadow score.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] for an unknown id or the active
    /// version (shadowing the active policy against itself scores nothing).
    pub fn stage(&mut self, id: u64) -> Result<(), JarvisError> {
        if !self.versions.contains_key(&id) {
            return Err(JarvisError::Config(format!("policy version {id} is not registered")));
        }
        if id == self.active {
            return Err(JarvisError::Config(format!(
                "policy version {id} is already active; nothing to shadow"
            )));
        }
        self.candidate = Some(id);
        self.score = ShadowScore::default();
        Ok(())
    }

    /// Unstage the candidate and drop its accumulated score.
    pub fn unstage(&mut self) {
        self.candidate = None;
        self.score = ShadowScore::default();
    }

    /// Fold shadow rows into the candidate's score. Callers pass rows
    /// sorted by `seq` so the floating-point fold is order-stable.
    pub fn absorb(&mut self, rows: &[ShadowRow]) {
        if self.candidate.is_none() {
            return;
        }
        for row in rows {
            self.score.decisions += 1;
            if row.agree {
                self.score.agreements += 1;
            }
            if !row.parity_ok {
                self.score.parity_violations += 1;
            }
            self.score.regret_sum += row.regret;
        }
    }

    /// Promote the candidate iff its score clears every gate: enough
    /// decisions, agreement rate at or above the floor, zero parity
    /// violations, and mean regret at or below the ceiling. On promotion
    /// the swap is recorded at `at_seq`, the candidate slot clears, and the
    /// new active version's id is returned inside the record. Purely
    /// deterministic — no clocks, no randomness.
    pub fn try_promote(&mut self, at_seq: u64) -> Option<SwapRecord> {
        let candidate = self.candidate?;
        let s = &self.score;
        let passes = s.decisions >= self.gates.min_decisions
            && s.agreement() >= self.gates.min_agreement
            && s.parity_violations == 0
            && s.mean_regret() <= self.gates.max_mean_regret;
        if !passes {
            return None;
        }
        // invariant: stage() only accepts registered ids, so the swap holds
        Some(self.force_swap(at_seq, candidate).expect("candidate is registered"))
    }

    /// Swap `to` in as the active version at `at_seq` unconditionally
    /// (scheduled swaps, rollback, disaster drills). Clears the candidate
    /// when it is the version being activated.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] for an unregistered version.
    pub fn force_swap(&mut self, at_seq: u64, to: u64) -> Result<SwapRecord, JarvisError> {
        if !self.versions.contains_key(&to) {
            return Err(JarvisError::Config(format!("policy version {to} is not registered")));
        }
        let record = SwapRecord { at_seq, from: self.active, to };
        self.active = to;
        if self.candidate == Some(to) {
            self.candidate = None;
            self.score = ShadowScore::default();
        }
        self.swaps.push(record.clone());
        Ok(record)
    }

    /// Roll the active policy back to an earlier version, recording the
    /// swap. The caller restores the matching
    /// [`RuntimeSnapshot`](crate::RuntimeSnapshot) for byte-identical state.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] for an unregistered version.
    pub fn rollback(&mut self, at_seq: u64, to: u64) -> Result<SwapRecord, JarvisError> {
        self.force_swap(at_seq, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jarvis_rl::{DqnAgent, DqnConfig};

    fn checkpoint(seed: u64) -> DqnCheckpoint {
        let mut config = DqnConfig::new(4, 3);
        config.hidden = vec![4];
        config.seed = seed;
        DqnAgent::new(config).unwrap().checkpoint()
    }

    fn rows(n: u64, agree: bool, parity_ok: bool, regret: f64) -> Vec<ShadowRow> {
        (0..n).map(|seq| ShadowRow { seq, agree, parity_ok, regret }).collect()
    }

    #[test]
    fn register_is_content_addressed() {
        let mut store = PolicyStore::new(checkpoint(1), ShadowGates::default());
        let a = store.register(checkpoint(2));
        let b = store.register(checkpoint(2));
        assert_eq!(a, b, "identical bytes must not mint a new version");
        assert_eq!(store.register(checkpoint(3)), a + 1);
        assert_eq!(store.len(), 3);
        assert_eq!(store.register(checkpoint(1)), 0, "the bootstrap version dedups too");
    }

    #[test]
    fn promotion_requires_every_gate() {
        let gates =
            ShadowGates { min_decisions: 10, min_agreement: 0.9, max_mean_regret: 0.05 };
        let mut store = PolicyStore::new(checkpoint(1), gates);
        let cand = store.register(checkpoint(2));
        store.stage(cand).unwrap();

        // Too few decisions.
        store.absorb(&rows(5, true, true, 0.0));
        assert!(store.try_promote(100).is_none());

        // Enough decisions, all agreeing and safe: promotes.
        store.absorb(&rows(5, true, true, 0.0));
        let record = store.try_promote(100).unwrap();
        assert_eq!(record, SwapRecord { at_seq: 100, from: 0, to: cand });
        assert_eq!(store.active(), cand);
        assert_eq!(store.candidate(), None);
        assert_eq!(store.swaps().len(), 1);
    }

    #[test]
    fn parity_violation_blocks_promotion() {
        let gates = ShadowGates { min_decisions: 1, min_agreement: 0.0, max_mean_regret: 1e9 };
        let mut store = PolicyStore::new(checkpoint(1), gates);
        let cand = store.register(checkpoint(2));
        store.stage(cand).unwrap();
        store.absorb(&rows(50, true, true, 0.0));
        store.absorb(&[ShadowRow { seq: 50, agree: true, parity_ok: false, regret: 0.0 }]);
        assert!(
            store.try_promote(51).is_none(),
            "a single safety-parity violation must block promotion"
        );
    }

    #[test]
    fn staging_the_active_version_is_rejected() {
        let mut store = PolicyStore::new(checkpoint(1), ShadowGates::default());
        assert!(store.stage(0).is_err());
        assert!(store.stage(99).is_err());
    }

    #[test]
    fn rollback_records_a_swap_back() {
        let mut store = PolicyStore::new(checkpoint(1), ShadowGates::default());
        let cand = store.register(checkpoint(2));
        store.force_swap(10, cand).unwrap();
        let back = store.rollback(20, 0).unwrap();
        assert_eq!(back, SwapRecord { at_seq: 20, from: cand, to: 0 });
        assert_eq!(store.active(), 0);
        assert_eq!(store.swaps().len(), 2);
    }

    #[test]
    fn store_round_trips_byte_for_byte() {
        let mut store = PolicyStore::new(checkpoint(1), ShadowGates::default());
        let cand = store.register(checkpoint(2));
        store.stage(cand).unwrap();
        store.absorb(&rows(3, true, true, 0.125));
        store.force_swap(40, cand).unwrap();
        let json = store.to_json();
        let back = PolicyStore::from_json(&json).unwrap();
        assert_eq!(back, store);
        assert_eq!(back.to_json(), json, "serialization must be byte-stable");
    }
}
