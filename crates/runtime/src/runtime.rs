//! The serving runtime: home registry, event ingest, sharded serve loop,
//! and shard snapshot/restore.

use crate::event::{Envelope, EventKind, Outcome, OverloadPolicy, Rejection};
use crate::online::{FineTuneConfig, FineTuneReport, OnlineConfig};
use crate::policy_store::{PolicyStore, ShadowGates, ShadowRow, SwapPoint, SwapRecord};
use crate::shard::{self, Job, PolicyView, ShardOutput, WorkerShared};
use crate::slot::{HomeSlot, HomeSnapshot};
use crate::supervisor::{
    RecoveryReport, Roster, ShardSupervisor, SupervisedReport, SupervisorConfig,
};
use crate::wal::ShardWal;
use jarvis::{JarvisError, OptimizerCheckpoint};
use jarvis_policy::{MatchMode, SafeTransitionTable};
use jarvis_rl::{DqnAgent, DqnCheckpoint, Experience, QuantizedPolicy};
use jarvis_sim::{
    ChaosSchedule, FaultInjector, FaultSummary, FleetGenerator, HomeDataset, MINUTES_PER_DAY,
};
use jarvis_smart_home::logger::normalize_action;
use jarvis_smart_home::SmartHome;
use jarvis_stdkit::json::{FromJson, ToJson};
use jarvis_stdkit::json_struct;
use jarvis_stdkit::pool::{ScopedTask, WorkerPool};
use jarvis_stdkit::sync::PushError;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// How homes are assigned to worker shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Fixed `home_id % shards` routing — placement never moves, whatever
    /// the load. Kept for comparison benchmarks and hash-stable routing
    /// experiments.
    Modulo,
    /// Load-aware placement: before each serve call the runtime counts the
    /// stream's events per home and greedily packs homes onto shards,
    /// heaviest first, always onto the least-loaded shard (longest-
    /// processing-time-first bin packing). Rebalancing is deterministic —
    /// ties break by home id and shard index — so the same stream always
    /// produces the same placement.
    LoadAware,
}

/// Configuration of a [`ServingRuntime`].
///
/// (Not `PartialEq`: the `telemetry` field is a function pointer, whose
/// comparison is address-based and unpredictable.)
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker shards.
    pub shards: usize,
    /// Bound of each shard's lock-free ingest ring (threaded mode only).
    /// Values below 2 are served with a 2-slot ring — the sequence
    /// protocol's minimum — while overload errors still report the
    /// configured value.
    pub queue_capacity: usize,
    /// Maximum queries parked before a batched forward is forced. 1 =
    /// per-query single-row inference.
    pub batch_window: usize,
    /// What the router does when a shard's ingest ring is full (threaded
    /// mode).
    pub overload: OverloadPolicy,
    /// Run shards sequentially on the caller's thread instead of spawning
    /// workers. Outputs are bit-identical to threaded serving for any shard
    /// count, steal schedule, or batching mode; queue bounds and throttling
    /// do not apply.
    pub deterministic: bool,
    /// Match mode for safe-transition lookups in the per-home monitors.
    pub match_mode: MatchMode,
    /// Artificial per-event worker delay in nanoseconds (threaded mode
    /// only). Zero in production; non-zero values let tests and benchmarks
    /// make a shard deterministically slower than the router to exercise
    /// the overload paths.
    pub worker_throttle_ns: u64,
    /// How homes are placed onto shards. Default: [`Placement::LoadAware`].
    pub placement: Placement,
    /// Close a batch as soon as the shard's ingest ring runs dry instead of
    /// holding parked queries until the window fills (threaded mode only;
    /// the deterministic path has no queue to drain). Default `true` — this
    /// is what keeps tail latency flat when a shard's share of the stream
    /// arrives slower than `batch_window` events at a time. Cannot change
    /// any decision: batch boundaries only group pure per-row forwards.
    pub adaptive_batching: bool,
    /// Stride of the fixed steal schedule: shard `i` tries victims `i +
    /// stride`, `i + 2·stride`, … (mod `shards`). 1 = ring order. The
    /// schedule permutes who steals from whom first; outputs are invariant
    /// because stolen batches are pure.
    pub steal_stride: usize,
    /// Injectable telemetry clock for decision latencies (monotonic
    /// nanoseconds). `None` (the default) makes serving perform zero
    /// wall-clock calls — timing is not part of the determinism contract,
    /// so the clock is opt-in (lint rule R2, DESIGN.md §12). Benchmarks
    /// pass [`jarvis_stdkit::bench::monotonic_ns`].
    pub telemetry: Option<fn() -> u64>,
}

impl RuntimeConfig {
    /// Defaults: `queue_capacity` 256, `batch_window` 16, blocking
    /// backpressure, threaded execution, exact-match monitoring,
    /// load-aware placement, adaptive batching, steal stride 1.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        RuntimeConfig {
            shards,
            queue_capacity: 256,
            batch_window: 16,
            overload: OverloadPolicy::Block,
            deterministic: false,
            match_mode: MatchMode::Exact,
            worker_throttle_ns: 0,
            placement: Placement::LoadAware,
            adaptive_batching: true,
            steal_stride: 1,
            telemetry: None,
        }
    }

    fn validate(&self) -> Result<(), JarvisError> {
        if self.shards == 0 {
            return Err(JarvisError::Config("shard count must be at least 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(JarvisError::Config("queue capacity must be at least 1".into()));
        }
        if self.batch_window == 0 {
            return Err(JarvisError::Config("batch window must be at least 1".into()));
        }
        if self.steal_stride == 0 {
            return Err(JarvisError::Config("steal stride must be at least 1".into()));
        }
        Ok(())
    }
}

/// What `ingest_day` turned a day of home activity into.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// The sequenced envelopes, ready for [`ServingRuntime::serve`].
    pub envelopes: Vec<Envelope>,
    /// Activity events that mapped onto the home's catalogue.
    pub mapped: usize,
    /// Decision queries injected.
    pub queries: usize,
    /// Activity events whose device or action is outside the catalogue
    /// (counted, never silently lost).
    pub unmapped: usize,
    /// What the fault injector did, when one was attached.
    pub faults: Option<FaultSummary>,
}

/// The result of one [`ServingRuntime::serve`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// One outcome per delivered event, sorted by global sequence number.
    pub outcomes: Vec<Outcome>,
    /// Every event shed under [`OverloadPolicy::Shed`], in routing order.
    pub rejected: Vec<Rejection>,
    /// Per-decision latencies (enqueue → decision: queueing + batch-window
    /// residency + inference, per event), unordered. Informational: timing
    /// is *not* part of the determinism contract, and this is empty unless
    /// [`RuntimeConfig::telemetry`] injected a clock.
    pub latencies_ns: Vec<u64>,
}

impl ServeReport {
    /// Delivered outcomes plus explicit rejections — equals the number of
    /// events submitted (the no-silent-drop invariant).
    #[must_use]
    pub fn total_accounted(&self) -> usize {
        self.outcomes.len() + self.rejected.len()
    }

    /// Number of policy decisions made.
    #[must_use]
    pub fn decisions(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Decision { .. }))
            .count()
    }

    /// A decision-latency percentile in nanoseconds (`q` in `[0, 1]`), or
    /// `None` when no decisions were made.
    #[must_use]
    pub fn latency_percentile(&self, q: f64) -> Option<u64> {
        if self.latencies_ns.is_empty() {
            return None;
        }
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted.get(rank).copied()
    }
}

/// A whole-runtime snapshot: fleet policy plus every home's dynamic state.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeSnapshot {
    /// Shard count the snapshot was taken under.
    pub shards: usize,
    /// Next global sequence number.
    pub next_seq: u64,
    /// The fleet policy agent, as a PR-3 style bit-exact checkpoint.
    pub policy: DqnCheckpoint,
    /// Every registered home's dynamic state, ordered by id.
    pub homes: Vec<HomeSnapshot>,
    /// The continual-learning configuration, when online learning is on.
    pub online: Option<OnlineConfig>,
    /// The versioned policy store, when online learning is on. Restoring
    /// it alongside `policy` is what makes rollback byte-identical.
    pub store: Option<PolicyStore>,
}

json_struct!(RuntimeSnapshot { shards, next_seq, policy, homes, online, store });

/// A single shard's snapshot: the fleet policy plus the dynamic state of
/// the homes that shard owns — everything needed to stand the shard back up.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// The shard index.
    pub shard: usize,
    /// Shard count the snapshot was taken under (routing depends on it).
    pub shards: usize,
    /// The fleet policy agent at snapshot time.
    pub policy: DqnCheckpoint,
    /// The shard's homes, ordered by id.
    pub homes: Vec<HomeSnapshot>,
}

json_struct!(ShardSnapshot { shard, shards, policy, homes });

/// A sharded multi-home serving runtime over one shared policy agent.
///
/// See DESIGN.md §11 for the base architecture (shard ownership, queue
/// bounds, the batching window, the determinism contract) and §13 for the
/// work-stealing run queues, the fixed steal schedule, and load-aware
/// placement.
#[derive(Debug)]
pub struct ServingRuntime {
    config: RuntimeConfig,
    policy: DqnAgent,
    /// An int8 fixed-point snapshot of `policy` for the decision path,
    /// deployed by [`ServingRuntime::quantize_policy`] after passing its
    /// rank-ordering accuracy gate. `None` (the default) serves f64.
    quantized: Option<QuantizedPolicy>,
    homes: BTreeMap<u64, HomeSlot>,
    /// Current home → shard placement. Seeded modulo at registration,
    /// deterministically rebalanced per serve call under
    /// [`Placement::LoadAware`].
    assignments: BTreeMap<u64, usize>,
    next_seq: u64,
    /// Continual-learning configuration; `None` until
    /// [`ServingRuntime::enable_online`].
    online: Option<OnlineConfig>,
    /// Versioned policy storage with shadow evaluation; created by
    /// [`ServingRuntime::enable_online`] with the current policy as
    /// version 0.
    store: Option<PolicyStore>,
}

impl ServingRuntime {
    /// Build a runtime serving `policy` under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] for a zero shard count, queue
    /// capacity, or batch window.
    pub fn new(config: RuntimeConfig, policy: DqnAgent) -> Result<Self, JarvisError> {
        config.validate()?;
        Ok(ServingRuntime {
            config,
            policy,
            quantized: None,
            homes: BTreeMap::new(),
            assignments: BTreeMap::new(),
            next_seq: 0,
            online: None,
            store: None,
        })
    }

    /// The runtime's configuration.
    #[must_use]
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The shared fleet policy agent.
    #[must_use]
    pub fn policy(&self) -> &DqnAgent {
        &self.policy
    }

    /// The deployed quantized policy, when one passed the gate.
    #[must_use]
    pub fn quantized_policy(&self) -> Option<&QuantizedPolicy> {
        self.quantized.as_ref()
    }

    /// Observation vectors covering every registered home over a fixed grid
    /// of (minute, indoor °C, outdoor °C, price/kWh) ambient conditions —
    /// the default calibration corpus for [`ServingRuntime::quantize_policy`].
    /// Deterministic: ordered by home id, then grid order.
    #[must_use]
    pub fn calibration_observations(&self) -> Vec<Vec<f64>> {
        const MINUTES: [u32; 4] = [0, 480, 960, 1439];
        const INDOOR_C: [f64; 3] = [16.0, 21.0, 26.0];
        const OUTDOOR_C: [f64; 3] = [-5.0, 10.0, 30.0];
        const PRICE: [f64; 3] = [0.05, 0.15, 0.45];
        let mut rows = Vec::with_capacity(self.homes.len() * 108);
        for slot in self.homes.values() {
            for &minute in &MINUTES {
                for &indoor in &INDOOR_C {
                    for &outdoor in &OUTDOOR_C {
                        for &price in &PRICE {
                            rows.push(slot.encode(minute, indoor, outdoor, price));
                        }
                    }
                }
            }
        }
        rows
    }

    /// Quantize the fleet policy to int8 fixed-point and deploy it on the
    /// decision path — **iff** it passes the rank-ordering accuracy gate:
    /// the quantized greedy argmax must agree with the f64 network on at
    /// least `min_agreement` of the calibration corpus (pass the
    /// [`ServingRuntime::calibration_observations`] grid, or any corpus of
    /// states the deployment actually visits). Returns the measured
    /// agreement on success; on gate failure the runtime keeps serving f64.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] when the gate fails or `calib` is
    /// empty, and [`JarvisError::Neural`] for ragged or mis-sized rows.
    pub fn quantize_policy(
        &mut self,
        calib: &[&[f64]],
        min_agreement: f64,
    ) -> Result<f64, JarvisError> {
        if calib.is_empty() {
            return Err(JarvisError::Config(
                "quantization needs a non-empty calibration corpus".into(),
            ));
        }
        let qp = self.policy.quantize_policy(calib)?;
        let agreement = qp.agreement();
        if agreement < min_agreement {
            return Err(JarvisError::Config(format!(
                "quantized policy agreement {agreement:.4} below the {min_agreement:.4} gate \
                 on {} calibration states; keeping the f64 policy",
                calib.len()
            )));
        }
        self.quantized = Some(qp);
        Ok(agreement)
    }

    /// Undeploy the quantized policy and return to f64 serving.
    pub fn clear_quantized_policy(&mut self) {
        self.quantized = None;
    }

    /// Turn on online continual learning (DESIGN.md §16): every registered
    /// home (and every home registered later) gets an [`OnlineLearner`]
    /// under `cfg`, and a [`PolicyStore`] is created with the current fleet
    /// policy as version 0, active, gated by `gates`.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] for invalid `cfg` or when online
    /// learning is already enabled.
    ///
    /// [`OnlineLearner`]: crate::OnlineLearner
    pub fn enable_online(
        &mut self,
        cfg: OnlineConfig,
        gates: ShadowGates,
    ) -> Result<(), JarvisError> {
        cfg.validate()?;
        if self.online.is_some() {
            return Err(JarvisError::Config("online learning is already enabled".into()));
        }
        for slot in self.homes.values_mut() {
            slot.enable_online(cfg.clone());
        }
        self.store = Some(PolicyStore::new(self.policy.checkpoint(), gates));
        self.online = Some(cfg);
        Ok(())
    }

    /// The continual-learning configuration, when enabled.
    #[must_use]
    pub fn online_config(&self) -> Option<&OnlineConfig> {
        self.online.as_ref()
    }

    /// The versioned policy store, when online learning is enabled.
    #[must_use]
    pub fn policy_store(&self) -> Option<&PolicyStore> {
        self.store.as_ref()
    }

    /// Mutable access to the policy store (staging candidates, adjusting
    /// swap history in tests). The store's own API guards its invariants.
    #[must_use]
    pub fn policy_store_mut(&mut self) -> Option<&mut PolicyStore> {
        self.store.as_mut()
    }

    /// Number of registered homes.
    #[must_use]
    pub fn num_homes(&self) -> usize {
        self.homes.len()
    }

    /// The slot serving home `id`, if registered.
    #[must_use]
    pub fn slot(&self, id: u64) -> Option<&HomeSlot> {
        self.homes.get(&id)
    }

    /// The shard that currently owns home `id`. Under
    /// [`Placement::LoadAware`] this reflects the placement of the most
    /// recent serve call (modulo before the first one); unknown ids fall
    /// back to modulo routing so their events still reach a shard that can
    /// reject them loudly.
    #[must_use]
    pub fn shard_of(&self, id: u64) -> usize {
        self.assignments
            .get(&id)
            .copied()
            .unwrap_or((id % self.config.shards as u64) as usize)
    }

    /// Recompute the home → shard placement for a stream about to be
    /// served. Under [`Placement::Modulo`] this pins `id % shards`. Under
    /// [`Placement::LoadAware`] it runs deterministic LPT bin packing:
    /// homes sorted by event count descending (id ascending on ties), each
    /// assigned to the least-loaded shard (lowest index on ties) weighted
    /// by `events + 1`, so idle homes still spread across shards for
    /// snapshot partitioning.
    fn rebalance(&mut self, events: &[Envelope]) {
        let shards = self.config.shards as u64;
        match self.config.placement {
            Placement::Modulo => {
                self.assignments =
                    self.homes.keys().map(|&id| (id, (id % shards) as usize)).collect();
            }
            Placement::LoadAware => {
                let mut counts: BTreeMap<u64, u64> =
                    self.homes.keys().map(|&id| (id, 0u64)).collect();
                for env in events {
                    if let Some(count) = counts.get_mut(&env.home) {
                        *count += 1;
                    }
                }
                let mut order: Vec<(u64, u64)> =
                    counts.into_iter().map(|(id, count)| (count, id)).collect();
                order.sort_by_key(|&(count, id)| (std::cmp::Reverse(count), id));
                let mut loads = vec![0u64; self.config.shards];
                self.assignments.clear();
                for (count, id) in order {
                    let shard = loads
                        .iter()
                        .enumerate()
                        .min_by_key(|&(idx, &load)| (load, idx))
                        .map_or(0, |(idx, _)| idx);
                    loads[shard] += count + 1;
                    self.assignments.insert(id, shard);
                }
            }
        }
    }

    /// Register a home with its learned safe-transition table.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] when `id` is already registered or
    /// the home's observation/action dimensions do not match the policy
    /// network.
    pub fn register_home(
        &mut self,
        id: u64,
        home: SmartHome,
        table: SafeTransitionTable,
    ) -> Result<(), JarvisError> {
        if self.homes.contains_key(&id) {
            return Err(JarvisError::Config(format!("home {id} is already registered")));
        }
        let slot = HomeSlot::new(id, home, table, self.config.match_mode);
        let want_dim = self.policy.config().state_dim;
        let want_actions = self.policy.config().num_actions;
        if slot.obs_dim() != want_dim {
            return Err(JarvisError::Config(format!(
                "home {id} encodes {}-dim observations, policy expects {want_dim}",
                slot.obs_dim()
            )));
        }
        if slot.num_actions() != want_actions {
            return Err(JarvisError::Config(format!(
                "home {id} has {} actions, policy expects {want_actions}",
                slot.num_actions()
            )));
        }
        let mut slot = slot;
        if let Some(cfg) = &self.online {
            slot.enable_online(cfg.clone());
        }
        self.homes.insert(id, slot);
        self.assignments.insert(id, (id % self.config.shards as u64) as usize);
        Ok(())
    }

    /// Attach an `OptimizerCheckpoint` JSON to a registered home so it
    /// rides along in shard snapshots.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] when `id` is not registered.
    pub fn attach_checkpoint(&mut self, id: u64, checkpoint: String) -> Result<(), JarvisError> {
        match self.homes.get_mut(&id) {
            Some(slot) => {
                slot.set_checkpoint(Some(checkpoint));
                Ok(())
            }
            None => Err(JarvisError::Config(format!("home {id} is not registered"))),
        }
    }

    /// Turn one home's day of recorded activity into sequenced envelopes:
    /// catalogue commands become monitor-checked [`EventKind::Action`]s,
    /// sensor attribute changes become [`EventKind::Sensor`]s, and a
    /// decision [`EventKind::Query`] carrying the trace's ambient telemetry
    /// is injected every `query_every` minutes. When a [`FaultInjector`] is
    /// attached, the stream is corrupted *before* mapping — the ingest
    /// boundary is where sensors fail in the field.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] when `home` is not registered or
    /// `query_every` is `Some(0)`.
    pub fn ingest_day(
        &mut self,
        home: u64,
        data: &HomeDataset,
        day: u32,
        injector: Option<&FaultInjector>,
        query_every: Option<u32>,
    ) -> Result<IngestReport, JarvisError> {
        let items = self.day_items(home, data, day, injector, query_every)?;
        Ok(self.seal(vec![items]))
    }

    /// Ingest one day for a whole [`FleetGenerator`] fleet: member `i`
    /// must be registered as home id `i`. Every member's stream is built
    /// independently, then merged by `(minute, home)` into one fleet-wide
    /// arrival order before sequencing.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] when a fleet member is not
    /// registered or `query_every` is `Some(0)`.
    pub fn ingest_fleet_day(
        &mut self,
        fleet: &FleetGenerator,
        day: u32,
        injector: Option<&FaultInjector>,
        query_every: Option<u32>,
    ) -> Result<IngestReport, JarvisError> {
        let mut per_home = Vec::with_capacity(fleet.num_homes() as usize);
        for idx in 0..fleet.num_homes() {
            let data = fleet.dataset(idx);
            per_home.push(self.day_items(u64::from(idx), &data, day, injector, query_every)?);
        }
        Ok(self.seal(per_home))
    }

    /// Build one home's unsequenced `(minute, intra, kind)` items for a day.
    fn day_items(
        &self,
        home: u64,
        data: &HomeDataset,
        day: u32,
        injector: Option<&FaultInjector>,
        query_every: Option<u32>,
    ) -> Result<DayItems, JarvisError> {
        let Some(slot) = self.homes.get(&home) else {
            return Err(JarvisError::Config(format!("home {home} is not registered")));
        };
        if query_every == Some(0) {
            return Err(JarvisError::Config("query_every must be at least 1 minute".into()));
        }
        let activity = data.activity(day);
        let (events, faults) = match injector {
            Some(inj) => {
                let faulted = inj.inject_day(&activity);
                (faulted.events, Some(faulted.summary))
            }
            None => (activity.events.clone(), None),
        };

        let fsm = slot.home().fsm();
        let mut items: Vec<(u32, u32, EventKind)> = Vec::with_capacity(events.len());
        let mut unmapped = 0usize;
        for event in &events {
            let mapped = fsm.device_by_name(&event.device).and_then(|device| {
                normalize_action(&event.device, &event.name).and_then(|name| {
                    fsm.device(device)
                        .ok()
                        .and_then(|spec| spec.action_idx(&name))
                        .map(|action| jarvis_iot_model::MiniAction { device, action })
                })
            });
            match mapped {
                Some(mini) if event.is_sensor => {
                    items.push((event.minute, 0, EventKind::Sensor(mini)));
                }
                Some(mini) => items.push((event.minute, 0, EventKind::Action(mini))),
                None => unmapped += 1,
            }
        }
        let mapped = items.len();

        let mut queries = 0usize;
        if let Some(every) = query_every {
            let mut minute = every;
            while minute < MINUTES_PER_DAY {
                let indoor_c = activity
                    .trace
                    .indoor_temp
                    .get(minute as usize)
                    .copied()
                    .unwrap_or(21.0);
                let outdoor_c = data.weather().outdoor_temp(day, minute);
                let price_per_kwh = data.prices().price_per_kwh(day, minute / 60);
                // Queries sort after same-minute events: decide on the state
                // the home has actually reached by that minute.
                items.push((minute, 1, EventKind::Query { indoor_c, outdoor_c, price_per_kwh }));
                queries += 1;
                minute += every;
            }
        }
        items.sort_by_key(|&(minute, tag, _)| (minute, tag));
        Ok(DayItems { home, items, mapped, queries, unmapped, faults })
    }

    /// Merge per-home item lists into fleet arrival order and assign global
    /// sequence numbers.
    fn seal(&mut self, per_home: Vec<DayItems>) -> IngestReport {
        let mut mapped = 0;
        let mut queries = 0;
        let mut unmapped = 0;
        let mut faults: Option<FaultSummary> = None;
        let mut merged: Vec<(u32, u64, u32, EventKind)> = Vec::new();
        for day in per_home {
            mapped += day.mapped;
            queries += day.queries;
            unmapped += day.unmapped;
            if let Some(f) = day.faults {
                let total = faults.get_or_insert_with(FaultSummary::default);
                total.dropped += f.dropped;
                total.duplicated += f.duplicated;
                total.delayed += f.delayed;
                total.stuck_suppressed += f.stuck_suppressed;
                total.offline_suppressed += f.offline_suppressed;
            }
            for (minute, tag, kind) in day.items {
                merged.push((minute, day.home, tag, kind));
            }
        }
        merged.sort_by_key(|&(minute, home, tag, _)| (minute, home, tag));
        let envelopes = merged
            .into_iter()
            .map(|(minute, home, _, kind)| {
                let seq = self.next_seq;
                self.next_seq += 1;
                Envelope { seq, home, minute, kind }
            })
            .collect();
        IngestReport { envelopes, mapped, queries, unmapped, faults }
    }

    /// Serve a stream of envelopes through the worker shards and report
    /// one outcome per delivered event, sorted by sequence number.
    ///
    /// Placement is rebalanced for the stream first (see
    /// [`RuntimeConfig::placement`]). In deterministic mode the shards run
    /// sequentially on the caller's thread; in threaded mode each shard
    /// owns a scoped worker fed through a lock-free bounded ingest ring,
    /// with the configured [`OverloadPolicy`] deciding what a full ring
    /// does, and idle workers stealing closed inference batches from
    /// sibling run queues in a fixed victim order.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Overload`] under [`OverloadPolicy::Error`]
    /// when a queue fills, [`JarvisError::Config`] for events targeting
    /// unregistered homes, and model/neural errors from the slots or the
    /// policy network.
    pub fn serve(&mut self, events: Vec<Envelope>) -> Result<ServeReport, JarvisError> {
        self.rebalance(&events);
        let submitted = events.len();
        let shadow = self.shadow_agent()?;
        let (outputs, rejected) = if self.config.deterministic {
            (self.serve_deterministic(events, shadow.as_ref())?, Vec::new())
        } else {
            self.serve_threaded(events, shadow.as_ref())?
        };
        let mut outcomes = Vec::with_capacity(submitted);
        let mut latencies_ns = Vec::new();
        let mut shadow_rows: Vec<ShadowRow> = Vec::new();
        for output in outputs {
            outcomes.extend(output.outcomes);
            latencies_ns.extend(output.latencies_ns);
            shadow_rows.extend(output.shadow);
        }
        outcomes.sort_by_key(Outcome::seq);
        self.absorb_shadow(shadow_rows);
        Ok(ServeReport { outcomes, rejected, latencies_ns })
    }

    /// Materialize the staged candidate as a shadow agent, when one is
    /// staged. Rebuilt per serve call from the store's immutable bytes.
    fn shadow_agent(&self) -> Result<Option<DqnAgent>, JarvisError> {
        let Some(store) = &self.store else { return Ok(None) };
        let Some(candidate) = store.candidate() else { return Ok(None) };
        let version = store.version(candidate).ok_or_else(|| {
            JarvisError::Config(format!("staged candidate {candidate} is not stored"))
        })?;
        Ok(Some(DqnAgent::from_checkpoint(version.checkpoint.clone())?))
    }

    /// Fold shadow rows into the staged candidate's score, sorted by seq so
    /// the floating-point accumulation is independent of shard count, steal
    /// schedule, and batch grouping.
    fn absorb_shadow(&mut self, mut rows: Vec<ShadowRow>) {
        if rows.is_empty() {
            return;
        }
        if let Some(store) = self.store.as_mut() {
            rows.sort_by_key(|r| r.seq);
            store.absorb(&rows);
        }
    }

    /// Serve a stream under supervision: every shard runs inside a
    /// `catch_unwind` panic boundary with a write-ahead log, and failures —
    /// worker panics or deadline-overrunning stalls, optionally injected by
    /// a [`ChaosSchedule`] — are recovered by restoring the shard's last
    /// WAL checkpoint, replaying the logged suffix, and retrying, with
    /// seeded exponential backoff in virtual ticks (see
    /// [`SupervisorConfig`] and DESIGN.md §15).
    ///
    /// Recovery is deterministic: with a transient chaos plan (attempt
    /// counts below the quarantine threshold) the supervised run's
    /// outcomes, snapshot bytes, and rejection/quarantine accounting are
    /// bitwise identical to an uninterrupted [`ServingRuntime::serve`] in
    /// deterministic mode. Poison pills and exhausted restart budgets
    /// degrade to safe-table-only serving
    /// ([`DecisionSource::SafeTableFallback`](crate::DecisionSource)) —
    /// enforcement never lapses.
    ///
    /// In deterministic mode shards run sequentially on the caller's
    /// thread; otherwise each shard owns one scoped supervised worker.
    /// Both modes are bitwise identical (shards are independent here —
    /// supervised serving uses no ingest rings, so `rejected` is always
    /// empty and no queue bound applies).
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] for invalid supervisor settings,
    /// events targeting unregistered homes, or a shard that fails again
    /// after exhausting its restart budget, plus model/neural errors from
    /// the slots or the policy network.
    pub fn serve_supervised(
        &mut self,
        events: Vec<Envelope>,
        sup: &SupervisorConfig,
        chaos: Option<&ChaosSchedule>,
    ) -> Result<SupervisedReport, JarvisError> {
        let shadow = self.shadow_agent()?;
        let active = self.policy.clone();
        self.serve_supervised_epochs(events, sup, chaos, &[], &[active], shadow.as_ref())
    }

    /// Serve a stream under supervision with a scheduled mid-stream policy
    /// swap plan: `swaps[k]` activates its version for every envelope with
    /// `seq >= at_seq` (see [`SwapPoint`]). Shards flush their batching
    /// window at epoch boundaries — a batch never spans a swap — and log a
    /// WAL swap record, so crash recovery replays every envelope under the
    /// policy that first served it and lands on the same active version.
    /// After the call, the last swap's version is the runtime's active
    /// policy and the store records every swap.
    ///
    /// # Errors
    ///
    /// Everything [`ServingRuntime::serve_supervised`] returns, plus
    /// [`JarvisError::Config`] when online learning is not enabled or the
    /// swap plan is unordered / names unknown versions.
    pub fn serve_online_supervised(
        &mut self,
        events: Vec<Envelope>,
        sup: &SupervisorConfig,
        chaos: Option<&ChaosSchedule>,
        swaps: &[SwapPoint],
    ) -> Result<SupervisedReport, JarvisError> {
        self.validate_swaps(swaps)?;
        // invariant: validate_swaps errored already if the store is missing
        let store = self.store.as_ref().expect("validate_swaps checked the store");
        let mut epoch_agents = Vec::with_capacity(swaps.len() + 1);
        epoch_agents.push(self.policy.clone());
        for sp in swaps {
            // invariant: validate_swaps checked every plan version exists
            let version = store.version(sp.version).expect("validate_swaps checked versions");
            epoch_agents.push(DqnAgent::from_checkpoint(version.checkpoint.clone())?);
        }
        let shadow = self.shadow_agent()?;
        let report =
            self.serve_supervised_epochs(events, sup, chaos, swaps, &epoch_agents, shadow.as_ref())?;
        self.commit_swaps(swaps, epoch_agents)?;
        Ok(report)
    }

    /// The shared supervised-serving core: one epoch per entry of
    /// `epoch_agents` (`swaps.len() + 1` of them; `epoch_agents[0]` is the
    /// policy active at entry, later entries the swapped-in versions).
    fn serve_supervised_epochs(
        &mut self,
        events: Vec<Envelope>,
        sup: &SupervisorConfig,
        chaos: Option<&ChaosSchedule>,
        swaps: &[SwapPoint],
        epoch_agents: &[DqnAgent],
        shadow: Option<&DqnAgent>,
    ) -> Result<SupervisedReport, JarvisError> {
        sup.validate()?;
        self.rebalance(&events);
        let shards = self.config.shards;
        let submitted = events.len();
        let mut streams: Vec<Vec<Envelope>> = (0..shards).map(|_| Vec::new()).collect();
        for env in events {
            let shard = self.shard_of(env.home);
            streams[shard].push(env);
        }
        let mut parts: Vec<BTreeMap<u64, HomeSlot>> =
            (0..shards).map(|_| BTreeMap::new()).collect();
        for (id, slot) in std::mem::take(&mut self.homes) {
            let shard = self.shard_of(id);
            parts[shard].insert(id, slot);
        }

        // The quantized deployment belongs to the entry policy; swapped-in
        // epochs serve f64 until re-quantized and re-gated explicitly.
        let quantized = self.quantized.as_ref();
        let views: Vec<PolicyView<'_>> = epoch_agents
            .iter()
            .enumerate()
            .map(|(k, agent)| {
                PolicyView::new(agent, if k == 0 { quantized } else { None }, shadow)
            })
            .collect();
        let roster = Roster { views, swaps };
        let roster = &roster;
        let batch_window = self.config.batch_window;
        let clock = self.config.telemetry;
        let mut results: Vec<Result<(ShardOutput, RecoveryReport, ShardWal), JarvisError>> =
            Vec::with_capacity(shards);

        if self.config.deterministic {
            for (idx, (part, stream)) in parts.iter_mut().zip(streams).enumerate() {
                results.push(
                    ShardSupervisor::new(idx, sup, chaos)
                        .run(part, roster, batch_window, clock, stream),
                );
            }
        } else {
            std::thread::scope(|s| {
                let mut handles = Vec::with_capacity(shards);
                for (idx, (part, stream)) in parts.iter_mut().zip(streams).enumerate() {
                    handles.push(s.spawn(move || {
                        ShardSupervisor::new(idx, sup, chaos)
                            .run(part, roster, batch_window, clock, stream)
                    }));
                }
                for handle in handles {
                    results.push(handle.join().unwrap_or_else(|_| {
                        Err(JarvisError::Config(
                            "a supervised shard worker died outside its panic boundary".into(),
                        ))
                    }));
                }
            });
        }

        // Reassemble home ownership before surfacing any error, so the
        // runtime stays usable after a failed supervised serve.
        for part in parts {
            self.homes.extend(part);
        }
        let mut outcomes = Vec::with_capacity(submitted);
        let mut latencies_ns = Vec::new();
        let mut shadow_rows: Vec<ShadowRow> = Vec::new();
        let mut recovery = RecoveryReport::default();
        let mut wals = Vec::with_capacity(shards);
        for result in results {
            let (output, shard_recovery, wal) = result?;
            outcomes.extend(output.outcomes);
            latencies_ns.extend(output.latencies_ns);
            shadow_rows.extend(output.shadow);
            recovery.absorb(shard_recovery);
            wals.push(wal);
        }
        outcomes.sort_by_key(Outcome::seq);
        self.absorb_shadow(shadow_rows);
        Ok(SupervisedReport {
            report: ServeReport { outcomes, rejected: Vec::new(), latencies_ns },
            recovery,
            wals,
        })
    }

    /// Serve a stream with a scheduled mid-stream policy swap plan:
    /// `swaps[k]` activates its version for every envelope with `seq >=
    /// at_seq`. The stream is split at each swap point and served segment by
    /// segment, so a batching window never spans a swap; each applied swap
    /// is recorded in the store. Every scheduled swap is applied even when
    /// the stream ends early — the plan is a commitment, not a hint — and
    /// after the call the last swap's version is the active policy.
    ///
    /// The swap schedule is part of the determinism contract: the same
    /// `(stream, swaps)` pair reproduces outcomes bitwise across shard
    /// counts, steal schedules, and serving modes.
    ///
    /// # Errors
    ///
    /// Everything [`ServingRuntime::serve`] returns, plus
    /// [`JarvisError::Config`] when online learning is not enabled or the
    /// swap plan is unordered / names unknown versions.
    pub fn serve_online(
        &mut self,
        events: Vec<Envelope>,
        swaps: &[SwapPoint],
    ) -> Result<ServeReport, JarvisError> {
        self.validate_swaps(swaps)?;
        let mut remaining = events;
        remaining.sort_by_key(|env| env.seq);
        let mut report =
            ServeReport { outcomes: Vec::new(), rejected: Vec::new(), latencies_ns: Vec::new() };
        let absorb = |report: &mut ServeReport, part: ServeReport| {
            report.outcomes.extend(part.outcomes);
            report.rejected.extend(part.rejected);
            report.latencies_ns.extend(part.latencies_ns);
        };
        for sp in swaps {
            let cut = remaining.partition_point(|env| env.seq < sp.at_seq);
            let tail = remaining.split_off(cut);
            let head = std::mem::replace(&mut remaining, tail);
            if !head.is_empty() {
                let part = self.serve(head)?;
                absorb(&mut report, part);
            }
            self.apply_swap(*sp)?;
        }
        if !remaining.is_empty() {
            let part = self.serve(remaining)?;
            absorb(&mut report, part);
        }
        report.outcomes.sort_by_key(Outcome::seq);
        Ok(report)
    }

    /// Check a swap plan: online learning enabled, `at_seq` strictly
    /// increasing, every version registered.
    fn validate_swaps(&self, swaps: &[SwapPoint]) -> Result<(), JarvisError> {
        let Some(store) = &self.store else {
            return Err(JarvisError::Config(
                "scheduled policy swaps need online learning enabled (enable_online)".into(),
            ));
        };
        let mut last: Option<u64> = None;
        for sp in swaps {
            if store.version(sp.version).is_none() {
                return Err(JarvisError::Config(format!(
                    "swap plan names unregistered policy version {}",
                    sp.version
                )));
            }
            if last.is_some_and(|prev| sp.at_seq <= prev) {
                return Err(JarvisError::Config(
                    "swap plan must be strictly increasing in at_seq".into(),
                ));
            }
            last = Some(sp.at_seq);
        }
        Ok(())
    }

    /// Activate one scheduled swap: rebuild the agent from the stored
    /// bytes, record the swap, drop the (old-weights) quantized deployment.
    fn apply_swap(&mut self, sp: SwapPoint) -> Result<(), JarvisError> {
        // invariant: validate_swaps errored already if the store is missing
        let store = self.store.as_mut().expect("validate_swaps checked the store");
        // invariant: validate_swaps checked every plan version exists
        let version = store.version(sp.version).expect("validate_swaps checked versions");
        let agent = DqnAgent::from_checkpoint(version.checkpoint.clone())?;
        store.force_swap(sp.at_seq, sp.version)?;
        self.policy = agent;
        self.quantized = None;
        Ok(())
    }

    /// Record an already-executed supervised swap plan in the store and
    /// install the final epoch's policy as active.
    fn commit_swaps(
        &mut self,
        swaps: &[SwapPoint],
        mut epoch_agents: Vec<DqnAgent>,
    ) -> Result<(), JarvisError> {
        if swaps.is_empty() {
            return Ok(());
        }
        // invariant: validate_swaps errored already if the store is missing
        let store = self.store.as_mut().expect("validate_swaps checked the store");
        for sp in swaps {
            store.force_swap(sp.at_seq, sp.version)?;
        }
        // invariant: callers pass swaps.len() + 1 epoch agents, never zero
        self.policy = epoch_agents.pop().expect("one agent per epoch");
        self.quantized = None;
        Ok(())
    }

    /// One background fine-tuning pass (DESIGN.md §16): drain every
    /// eligible slot's replay delta — at least
    /// [`FineTuneConfig::min_delta`] experiences and an attached
    /// `OptimizerCheckpoint` — and replay it into that home's checkpoint
    /// through `pool`, off the decision path. The drained deltas are then
    /// pooled (in home-id order) into a fleet-level candidate: the current
    /// policy's checkpoint replayed over every drained experience,
    /// registered in the store and staged for shadow evaluation.
    ///
    /// Deterministic across pool sizes: the pool schedules *where* each
    /// per-home tune runs, never *what* it computes, and per-home results
    /// land in pre-assigned slots.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] for invalid `cfg`, when online
    /// learning is not enabled, or when a home carries a corrupt optimizer
    /// checkpoint, and [`JarvisError::Neural`] from the replay passes.
    pub fn fine_tune(
        &mut self,
        pool: &WorkerPool,
        cfg: &FineTuneConfig,
    ) -> Result<FineTuneReport, JarvisError> {
        cfg.validate()?;
        if self.store.is_none() {
            return Err(JarvisError::Config(
                "fine-tuning needs online learning enabled (enable_online)".into(),
            ));
        }
        let mut homes_skipped = 0usize;
        let mut work: Vec<(u64, OptimizerCheckpoint, Vec<Experience>)> = Vec::new();
        let mut pooled: Vec<Experience> = Vec::new();
        for (&id, slot) in &mut self.homes {
            let Some(learner) = slot.online() else { continue };
            if learner.replay.len() < cfg.min_delta {
                homes_skipped += 1;
                continue;
            }
            let Some(json) = slot.checkpoint_json() else {
                homes_skipped += 1;
                continue;
            };
            let ocp = OptimizerCheckpoint::from_json(json).map_err(|err| {
                JarvisError::Config(format!(
                    "home {id} carries a corrupt optimizer checkpoint: {err}"
                ))
            })?;
            // invariant: slot.online() returned Some a few lines up
            let delta = slot.online_mut().expect("learner checked above").drain_replay();
            pooled.extend(delta.iter().cloned());
            work.push((id, ocp, delta));
        }

        let steps = cfg.replay_steps;
        let mut tuned: Vec<Option<Result<(u64, String), JarvisError>>> =
            work.iter().map(|_| None).collect();
        {
            let mut tasks: Vec<ScopedTask<'_>> = Vec::with_capacity(work.len());
            for (out, (id, ocp, delta)) in tuned.iter_mut().zip(&work) {
                tasks.push(Box::new(move || {
                    *out = Some(tune_one(*id, ocp, delta, steps));
                }));
            }
            pool.run_scoped(tasks);
        }

        let mut homes_tuned = 0usize;
        let mut experiences = 0usize;
        for (result, (_, _, delta)) in tuned.into_iter().zip(&work) {
            // invariant: run_scoped returns only after every task executed
            let (id, json) = result.expect("the pool runs every task")?;
            if let Some(slot) = self.homes.get_mut(&id) {
                slot.set_checkpoint(Some(json));
            }
            homes_tuned += 1;
            experiences += delta.len();
        }

        let mut candidate = None;
        if !pooled.is_empty() {
            let mut agent = DqnAgent::from_checkpoint(self.policy.checkpoint())?;
            for exp in &pooled {
                agent.remember(exp.clone());
            }
            for _ in 0..steps {
                agent.replay()?;
            }
            // invariant: fine_tune errored at entry if the store is missing
            let store = self.store.as_mut().expect("checked above");
            let id = store.register(agent.checkpoint());
            // A candidate whose bytes dedup to the active version learned
            // nothing — don't stage a self-shadow.
            if id != store.active() {
                if store.candidate() != Some(id) {
                    store.stage(id)?;
                }
                candidate = Some(id);
            }
        }
        Ok(FineTuneReport { homes_tuned, homes_skipped, experiences, candidate })
    }

    /// Promote the staged shadow candidate iff its accumulated score clears
    /// every [`ShadowGates`] gate, swapping it in as the active policy at
    /// the current stream position. Returns the swap record on promotion,
    /// `None` when the gates hold it back.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] when online learning is not enabled
    /// and [`JarvisError::Neural`] for a corrupt stored checkpoint.
    pub fn try_promote(&mut self) -> Result<Option<SwapRecord>, JarvisError> {
        let at_seq = self.next_seq;
        let Some(store) = self.store.as_mut() else {
            return Err(JarvisError::Config(
                "promotion needs online learning enabled (enable_online)".into(),
            ));
        };
        let Some(record) = store.try_promote(at_seq) else {
            return Ok(None);
        };
        // invariant: try_promote only returns ids the store holds
        let version = store.version(record.to).expect("promoted version is stored");
        self.policy = DqnAgent::from_checkpoint(version.checkpoint.clone())?;
        self.quantized = None;
        Ok(Some(record))
    }

    /// Sequential reference execution: same shard partitioning, no threads,
    /// no queue bounds — the bit-exact baseline for any shard count and any
    /// steal schedule.
    fn serve_deterministic(
        &mut self,
        events: Vec<Envelope>,
        shadow: Option<&DqnAgent>,
    ) -> Result<Vec<ShardOutput>, JarvisError> {
        let shards = self.config.shards;
        let mut streams: Vec<Vec<Envelope>> = (0..shards).map(|_| Vec::new()).collect();
        for env in events {
            let shard = self.shard_of(env.home);
            streams[shard].push(env);
        }
        let view = PolicyView::new(&self.policy, self.quantized.as_ref(), shadow);
        let mut outputs = Vec::with_capacity(shards);
        for stream in streams {
            // The full slot map is passed through: shard routing already
            // confined each stream to the homes that shard owns.
            outputs.push(shard::process_sequential(
                &mut self.homes,
                view,
                self.config.batch_window,
                self.config.telemetry,
                stream.into_iter(),
            )?);
        }
        Ok(outputs)
    }

    /// Threaded work-stealing execution: one scoped worker per shard behind
    /// a lock-free bounded ingest ring; the router applies the overload
    /// policy; closed inference batches are published on per-shard run
    /// queues that idle siblings steal from in a fixed victim order.
    fn serve_threaded(
        &mut self,
        events: Vec<Envelope>,
        shadow: Option<&DqnAgent>,
    ) -> Result<(Vec<ShardOutput>, Vec<Rejection>), JarvisError> {
        let shards = self.config.shards;
        let route: Vec<usize> = events.iter().map(|env| self.shard_of(env.home)).collect();
        let mut parts: Vec<BTreeMap<u64, HomeSlot>> = (0..shards).map(|_| BTreeMap::new()).collect();
        for (id, slot) in std::mem::take(&mut self.homes) {
            let shard = self.shard_of(id);
            parts[shard].insert(id, slot);
        }

        let view = PolicyView::new(&self.policy, self.quantized.as_ref(), shadow);
        let batch_window = self.config.batch_window;
        let adaptive = self.config.adaptive_batching;
        let stride = self.config.steal_stride;
        let throttle = Duration::from_nanos(self.config.worker_throttle_ns);
        let capacity = self.config.queue_capacity;
        let overload = self.config.overload;
        let telemetry = self.config.telemetry;

        let shared = WorkerShared::new(shards, capacity);
        let mut rejected: Vec<Rejection> = Vec::new();
        let mut overload_err: Option<JarvisError> = None;
        let mut results: Vec<Result<ShardOutput, JarvisError>> = Vec::with_capacity(shards);

        std::thread::scope(|s| {
            let shared = &shared;
            let mut handles = Vec::with_capacity(shards);
            for (idx, part) in parts.iter_mut().enumerate() {
                handles.push(s.spawn(move || {
                    shard::run_worker(
                        idx,
                        part,
                        view,
                        batch_window,
                        adaptive,
                        stride,
                        throttle,
                        telemetry,
                        shared,
                    )
                }));
            }
            'route: for (env, &shard_idx) in events.into_iter().zip(&route) {
                // The enqueue stamp is taken at router hand-off, so reported
                // latency covers queueing + window residency + inference —
                // and, under Block backpressure, the blocking wait itself.
                let mut job = Job { env, enqueued: telemetry.map(|now| now()) };
                match overload {
                    OverloadPolicy::Block => loop {
                        match shared.ingest[shard_idx].try_push(job) {
                            Ok(()) => break,
                            Err(PushError::Full(back)) => {
                                job = back;
                                // A shard that stopped consuming mid-route
                                // died: its error surfaces from the join.
                                if shared.done[shard_idx].load(Ordering::Acquire)
                                    || shared.abort.load(Ordering::Acquire)
                                {
                                    break 'route;
                                }
                                std::thread::yield_now();
                            }
                        }
                    },
                    OverloadPolicy::Shed => {
                        if let Err(PushError::Full(back)) = shared.ingest[shard_idx].try_push(job) {
                            rejected.push(Rejection {
                                seq: back.env.seq,
                                home: back.env.home,
                                shard: shard_idx,
                            });
                        }
                    }
                    OverloadPolicy::Error => {
                        if let Err(PushError::Full(_)) = shared.ingest[shard_idx].try_push(job) {
                            overload_err =
                                Some(JarvisError::Overload { shard: shard_idx, capacity });
                            break 'route;
                        }
                    }
                }
            }
            for ring in &shared.ingest {
                ring.close();
            }
            for handle in handles {
                results.push(handle.join().unwrap_or_else(|_| {
                    Err(JarvisError::Config("a worker shard panicked".into()))
                }));
            }
        });

        // Reassemble home ownership before surfacing any error, so the
        // runtime stays usable after an overload abort.
        for part in parts {
            self.homes.extend(part);
        }
        if let Some(err) = overload_err {
            return Err(err);
        }
        let mut outputs = Vec::with_capacity(shards);
        for result in results {
            outputs.push(result?);
        }
        Ok((outputs, rejected))
    }

    /// Snapshot the whole runtime: fleet policy plus every home.
    #[must_use]
    pub fn snapshot(&self) -> RuntimeSnapshot {
        RuntimeSnapshot {
            shards: self.config.shards,
            next_seq: self.next_seq,
            policy: self.policy.checkpoint(),
            homes: self.homes.values().map(HomeSlot::snapshot).collect(),
            online: self.online.clone(),
            store: self.store.clone(),
        }
    }

    /// Snapshot one shard: the fleet policy plus the homes it owns.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] when `shard` is out of range.
    pub fn shard_snapshot(&self, shard: usize) -> Result<ShardSnapshot, JarvisError> {
        if shard >= self.config.shards {
            return Err(JarvisError::Config(format!(
                "shard {shard} out of range for {} shards",
                self.config.shards
            )));
        }
        Ok(ShardSnapshot {
            shard,
            shards: self.config.shards,
            policy: self.policy.checkpoint(),
            homes: self
                .homes
                .values()
                .filter(|slot| self.shard_of(slot.id()) == shard)
                .map(HomeSlot::snapshot)
                .collect(),
        })
    }

    /// Restore one shard's homes from a snapshot. The homes must already be
    /// registered (the device catalogue is deployment configuration, not
    /// snapshot payload); their dynamic state — table, device state, clock,
    /// counters, attached checkpoint — is replaced byte-for-byte.
    ///
    /// The fleet policy itself is *not* replaced here (it is shared across
    /// shards); the snapshot's policy checkpoint is validated for
    /// compatibility instead. Use [`ServingRuntime::restore`] to restore
    /// policy and homes together.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] when the snapshot was taken under a
    /// different shard count, names an unregistered home, or carries a
    /// policy with mismatched dimensions.
    pub fn restore_shard(&mut self, snap: &ShardSnapshot) -> Result<(), JarvisError> {
        if snap.shards != self.config.shards {
            return Err(JarvisError::Config(format!(
                "snapshot taken under {} shards, runtime has {}",
                snap.shards, self.config.shards
            )));
        }
        self.check_policy_compat(&snap.policy)?;
        self.restore_homes(&snap.homes)
    }

    /// Restore the whole runtime from a [`RuntimeSnapshot`]: the fleet
    /// policy resumes from its bit-exact checkpoint and every home's
    /// dynamic state is replaced. Homes must already be registered.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] for unregistered homes and
    /// [`JarvisError::Neural`] when the policy checkpoint is corrupt.
    pub fn restore(&mut self, snap: &RuntimeSnapshot) -> Result<(), JarvisError> {
        self.check_policy_compat(&snap.policy)?;
        self.restore_homes(&snap.homes)?;
        self.policy = DqnAgent::from_checkpoint(snap.policy.clone())?;
        // The quantized snapshot was taken from the *old* weights; a
        // restored policy must be re-quantized (and re-gated) explicitly.
        self.quantized = None;
        self.next_seq = snap.next_seq;
        // Online learning state travels with the snapshot: restoring the
        // store alongside the policy is what makes rollback byte-identical.
        self.online = snap.online.clone();
        self.store = snap.store.clone();
        Ok(())
    }

    fn check_policy_compat(&self, cp: &DqnCheckpoint) -> Result<(), JarvisError> {
        let mine = self.policy.config();
        if cp.config.state_dim != mine.state_dim || cp.config.num_actions != mine.num_actions {
            return Err(JarvisError::Config(format!(
                "snapshot policy is {}x{}, runtime policy is {}x{}",
                cp.config.state_dim, cp.config.num_actions, mine.state_dim, mine.num_actions
            )));
        }
        Ok(())
    }

    fn restore_homes(&mut self, snaps: &[HomeSnapshot]) -> Result<(), JarvisError> {
        // Validate all ids up front so a failed restore leaves no home
        // half-updated.
        for snap in snaps {
            if !self.homes.contains_key(&snap.id) {
                return Err(JarvisError::Config(format!(
                    "snapshot names unregistered home {}",
                    snap.id
                )));
            }
        }
        for snap in snaps {
            if let Some(slot) = self.homes.get_mut(&snap.id) {
                slot.restore(snap)?;
            }
        }
        Ok(())
    }
}

/// Replay one home's drained delta into its optimizer checkpoint. Pure:
/// the result depends only on the inputs, so the worker pool can run these
/// on any thread in any order without affecting the bytes produced.
fn tune_one(
    id: u64,
    ocp: &OptimizerCheckpoint,
    delta: &[Experience],
    steps: u32,
) -> Result<(u64, String), JarvisError> {
    let mut agent = DqnAgent::from_checkpoint(ocp.agent.clone())?;
    for exp in delta {
        agent.remember(exp.clone());
    }
    for _ in 0..steps {
        agent.replay()?;
    }
    let mut updated = ocp.clone();
    updated.agent = agent.checkpoint();
    Ok((id, updated.to_json()))
}

/// One home's unsequenced ingest items plus accounting.
struct DayItems {
    home: u64,
    items: Vec<(u32, u32, EventKind)>,
    mapped: usize,
    queries: usize,
    unmapped: usize,
    faults: Option<FaultSummary>,
}
