//! The worker-shard event loop: monitor checks, sensor application, and the
//! batched decision path.

use crate::event::{Envelope, EventKind, Outcome};
use crate::slot::HomeSlot;
use jarvis::JarvisError;
use jarvis_rl::DqnAgent;
use std::collections::BTreeMap;
use std::time::Duration;

/// What one shard produced from its slice of the event stream.
#[derive(Debug, Default)]
pub(crate) struct ShardOutput {
    /// Outcomes in the shard's processing order (globally re-sorted by the
    /// runtime before reporting).
    pub outcomes: Vec<Outcome>,
    /// Nanoseconds from dequeuing each query to emitting its decision — the
    /// price of the batching window plus inference. Empty unless the caller
    /// injected a telemetry clock ([`crate::RuntimeConfig::telemetry`]);
    /// the deterministic path makes zero clock calls (lint rule R2).
    pub latencies_ns: Vec<u64>,
}

/// A query parked in the batching window, its observation and valid set
/// snapshotted at in-order processing time so later events cannot change
/// the answer.
struct Pending {
    seq: u64,
    home: u64,
    obs: Vec<f64>,
    valid: Vec<usize>,
    /// Telemetry-clock reading at dequeue time; `None` when no clock was
    /// injected.
    dequeued: Option<u64>,
}

/// Drive one shard over its event stream.
///
/// Events arrive in global-sequence order for every home this shard owns
/// (the router never reorders), so slot state evolves identically however
/// homes are distributed across shards. Queries are parked in a batching
/// window of up to `batch_window` and answered through one
/// [`DqnAgent::q_values_batch`] matrix pass; because the batched forward is
/// bit-identical per row to a single-row forward, the batch boundaries —
/// and therefore the shard count — cannot change any decision.
pub(crate) fn process_events(
    slots: &mut BTreeMap<u64, HomeSlot>,
    policy: &DqnAgent,
    batch_window: usize,
    throttle: Duration,
    clock: Option<fn() -> u64>,
    events: impl Iterator<Item = Envelope>,
) -> Result<ShardOutput, JarvisError> {
    let mut out = ShardOutput::default();
    let mut pending: Vec<Pending> = Vec::new();
    for env in events {
        if !throttle.is_zero() {
            std::thread::sleep(throttle);
        }
        let slot = slots.get_mut(&env.home).ok_or_else(|| {
            JarvisError::Config(format!("event {} targets unregistered home {}", env.seq, env.home))
        })?;
        slot.note_event(env.minute);
        match env.kind {
            EventKind::Action(mini) => {
                let verdict = slot.observe_action(mini)?;
                out.outcomes.push(Outcome::Verdict { seq: env.seq, home: env.home, verdict });
            }
            EventKind::Sensor(mini) => {
                slot.apply_sensor(mini)?;
                out.outcomes.push(Outcome::SensorApplied { seq: env.seq, home: env.home });
            }
            EventKind::Query { indoor_c, outdoor_c, price_per_kwh } => {
                pending.push(Pending {
                    seq: env.seq,
                    home: env.home,
                    obs: slot.encode(env.minute, indoor_c, outdoor_c, price_per_kwh),
                    valid: slot.valid_actions(),
                    dequeued: clock.map(|now| now()),
                });
                if pending.len() >= batch_window {
                    flush(slots, policy, clock, &mut pending, &mut out)?;
                }
            }
        }
    }
    flush(slots, policy, clock, &mut pending, &mut out)?;
    Ok(out)
}

/// Answer every parked query with one batched forward, walking each home's
/// Q ranking down to the best action its safe set allows (`Max(Q, c)`).
fn flush(
    slots: &BTreeMap<u64, HomeSlot>,
    policy: &DqnAgent,
    clock: Option<fn() -> u64>,
    pending: &mut Vec<Pending>,
    out: &mut ShardOutput,
) -> Result<(), JarvisError> {
    if pending.is_empty() {
        return Ok(());
    }
    let rows: Vec<&[f64]> = pending.iter().map(|p| p.obs.as_slice()).collect();
    let q_rows = policy.q_values_batch(&rows)?;
    let mut ranked: Vec<usize> = Vec::new();
    for (p, q) in pending.drain(..).zip(q_rows) {
        // Rank the whole head once, descending Q with ascending-index tie
        // breaks — element `c` is exactly `top_c(&q, &all, c)`, without
        // re-sorting per walked rank.
        ranked.clear();
        ranked.extend(0..q.len());
        ranked.sort_by(|&a, &b| {
            q[b].partial_cmp(&q[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        let mut decision = None;
        for (c, &a) in ranked.iter().enumerate() {
            if p.valid.contains(&a) {
                decision = Some((a, q[a], c));
                break;
            }
        }
        // The no-op is always in the valid set, so the walk always lands;
        // fall back to it defensively anyway.
        let (flat, q_value, rank) =
            decision.unwrap_or((0, q.first().copied().unwrap_or(0.0), 0));
        let action = slots.get(&p.home).and_then(|s| s.mini_for(flat));
        out.outcomes.push(Outcome::Decision {
            seq: p.seq,
            home: p.home,
            action,
            flat,
            q_value,
            rank,
        });
        if let (Some(now), Some(t0)) = (clock, p.dequeued) {
            out.latencies_ns.push(now().saturating_sub(t0));
        }
    }
    Ok(())
}
