//! The worker-shard event loop: monitor checks, sensor application, and the
//! work-stealing batched decision path.
//!
//! Two execution flavours share one event-application core:
//!
//! - [`process_sequential`] — the deterministic reference: one thread walks
//!   one shard's stream, closing a decision batch whenever the window fills
//!   and flushing the remainder at end of stream.
//! - [`run_worker`] — the threaded work-stealing loop: each worker drains
//!   its own lock-free ingest ring, parks queries in a batching window,
//!   publishes closed batches as [`InferenceTask`]s on its own run queue,
//!   and — when its own queues are dry — *steals* batches from sibling
//!   shards in a fixed victim order.
//!
//! Stealing cannot change any decision: a batch snapshots every query's
//! observation, valid-action set, and flat→mini action map at in-order
//! processing time, and the batched forward is bit-identical per row to a
//! single-row forward, so an [`InferenceTask`] is a pure function of the
//! policy — whichever worker runs it, whenever, produces the same bytes.

use crate::event::{DecisionSource, Envelope, EventKind, Outcome};
use crate::policy_store::ShadowRow;
use crate::slot::HomeSlot;
use jarvis::JarvisError;
use jarvis_iot_model::MiniAction;
use jarvis_rl::{DqnAgent, QuantizedPolicy};
use jarvis_stdkit::sync::{PushError, StealQueue};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bound on queued-but-unexecuted inference batches per shard. When the run
/// queue is full the owner executes the batch inline instead — lossless,
/// just momentarily unstealable.
const TASK_QUEUE_CAPACITY: usize = 32;

/// The policies one batch executes against: the active agent, its optional
/// quantized deployment, and an optional shadow candidate scored alongside
/// the active policy without ever answering a query (DESIGN.md §16).
#[derive(Clone, Copy)]
pub(crate) struct PolicyView<'a> {
    /// The active f64 policy agent.
    pub policy: &'a DqnAgent,
    /// The active policy's deployed int8 snapshot, if any.
    pub quantized: Option<&'a QuantizedPolicy>,
    /// The staged shadow candidate, if any.
    pub shadow: Option<&'a DqnAgent>,
}

impl<'a> PolicyView<'a> {
    pub(crate) fn new(
        policy: &'a DqnAgent,
        quantized: Option<&'a QuantizedPolicy>,
        shadow: Option<&'a DqnAgent>,
    ) -> Self {
        PolicyView { policy, quantized, shadow }
    }
}

/// What one shard's worker produced: outcomes for the events it applied
/// plus the decisions of every batch it executed (its own and stolen).
#[derive(Debug, Default)]
pub(crate) struct ShardOutput {
    /// Outcomes in this worker's processing order (globally re-sorted by
    /// the runtime before reporting).
    pub outcomes: Vec<Outcome>,
    /// Nanoseconds from each query's enqueue (router hand-off in threaded
    /// mode, first touch in deterministic mode) to its decision — true
    /// per-event latency including queueing, window residency, and
    /// inference. Empty unless the caller injected a telemetry clock
    /// ([`crate::RuntimeConfig::telemetry`]); the deterministic path makes
    /// zero clock calls otherwise (lint rule R2).
    pub latencies_ns: Vec<u64>,
    /// Per-decision shadow-evaluation rows, when a candidate is staged.
    /// Aggregated sorted by seq, so the accumulated score is independent of
    /// shard count, steal schedule, and batch grouping.
    pub shadow: Vec<ShadowRow>,
}

/// One routed event plus its telemetry enqueue stamp (`None` when no clock
/// is injected).
pub(crate) struct Job {
    pub env: Envelope,
    pub enqueued: Option<u64>,
}

/// A query parked in the batching window, its observation, valid set, and
/// action map snapshotted at in-order processing time so neither later
/// events nor the executing worker can change the answer.
pub(crate) struct Pending {
    pub(crate) seq: u64,
    home: u64,
    obs: Vec<f64>,
    valid: Vec<usize>,
    /// The home's flat-index → mini-action map (shared, immutable), so a
    /// thief can materialize the decision without touching the slot.
    actions: Arc<Vec<MiniAction>>,
    /// Telemetry-clock reading at enqueue time; `None` without a clock.
    enqueued: Option<u64>,
}

/// A closed batch of snapshotted queries: self-contained inference work
/// executable by any worker with bitwise-identical results.
pub(crate) struct InferenceTask {
    pub(crate) entries: Vec<Pending>,
}

/// Everything the worker threads share: per-shard ingest rings, per-shard
/// run queues of closed batches, per-shard done-publishing flags, and the
/// abort latch that fails the whole serve call fast.
pub(crate) struct WorkerShared {
    pub ingest: Vec<StealQueue<Job>>,
    pub tasks: Vec<StealQueue<InferenceTask>>,
    pub done: Vec<AtomicBool>,
    pub abort: AtomicBool,
}

impl WorkerShared {
    pub(crate) fn new(shards: usize, ingest_capacity: usize) -> Self {
        // The lock-free ring needs at least two slots (see
        // `StealQueue::new`); a configured capacity of 1 still gets honest
        // backpressure, just one event later.
        let ingest_capacity = ingest_capacity.max(2);
        WorkerShared {
            ingest: (0..shards).map(|_| StealQueue::new(ingest_capacity)).collect(),
            tasks: (0..shards).map(|_| StealQueue::new(TASK_QUEUE_CAPACITY)).collect(),
            done: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            abort: AtomicBool::new(false),
        }
    }
}

/// The fixed victim order for shard `idx` among `shards` shards: `idx +
/// stride`, `idx + 2·stride`, … (mod `shards`), then any shard the stride
/// skipped (non-coprime strides), in ascending order. Deriving the order
/// from the shard id keeps every run's steal *schedule* reproducible; the
/// steal *timing* does not matter because stolen batches are pure.
pub(crate) fn steal_order(idx: usize, shards: usize, stride: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(shards.saturating_sub(1));
    let mut seen = vec![false; shards];
    seen[idx] = true;
    for k in 1..shards {
        let victim = (idx + k * stride) % shards;
        if !seen[victim] {
            seen[victim] = true;
            order.push(victim);
        }
    }
    for (victim, covered) in seen.iter().enumerate() {
        if !covered {
            order.push(victim);
        }
    }
    order
}

/// Apply one event to its slot: actions are monitor-checked, sensors step
/// the state, queries snapshot into the batching window.
///
/// `learn` gates the slot's continual-learning hooks: normal serving
/// passes `true`; quarantined and degraded-mode windows pass `false` so
/// anomalous traffic never feeds the SPL delta or the replay delta.
pub(crate) fn apply_event(
    slots: &mut BTreeMap<u64, HomeSlot>,
    job: Job,
    clock: Option<fn() -> u64>,
    learn: bool,
    pending: &mut Vec<Pending>,
    out: &mut ShardOutput,
) -> Result<(), JarvisError> {
    let env = job.env;
    let slot = slots.get_mut(&env.home).ok_or_else(|| {
        JarvisError::Config(format!("event {} targets unregistered home {}", env.seq, env.home))
    })?;
    slot.note_event(env.minute, learn);
    match env.kind {
        EventKind::Action(mini) => {
            let verdict = slot.observe_action(mini, learn)?;
            out.outcomes.push(Outcome::Verdict { seq: env.seq, home: env.home, verdict });
        }
        EventKind::Sensor(mini) => {
            slot.apply_sensor(mini)?;
            out.outcomes.push(Outcome::SensorApplied { seq: env.seq, home: env.home });
        }
        EventKind::Query { indoor_c, outdoor_c, price_per_kwh } => {
            if learn {
                slot.note_ambient(indoor_c, outdoor_c, price_per_kwh);
            }
            pending.push(Pending {
                seq: env.seq,
                home: env.home,
                obs: slot.encode(env.minute, indoor_c, outdoor_c, price_per_kwh),
                valid: slot.valid_actions(),
                actions: slot.actions(),
                // Deterministic mode stamps at first touch (enqueue ==
                // dequeue there); threaded mode keeps the router's stamp.
                enqueued: job.enqueued.or_else(|| clock.map(|now| now())),
            });
        }
    }
    Ok(())
}

/// Execute one closed batch: a single batched forward, then one
/// descending-Q ranking walk per row down to the best action each home's
/// safe set allows (`Max(Q, c)`).
///
/// When a deployed [`QuantizedPolicy`] is supplied, the batched forward
/// runs through its int8 fixed-point network instead of the f64 agent —
/// the ranking walk is identical, only the Q source changes. Quantized Q
/// values are bit-deterministic across SIMD tiers, pool sizes, and batch
/// groupings (i32 accumulation), so the serving determinism contract is
/// unchanged.
pub(crate) fn run_batch(
    task: InferenceTask,
    view: PolicyView<'_>,
    clock: Option<fn() -> u64>,
    out: &mut ShardOutput,
) -> Result<(), JarvisError> {
    if task.entries.is_empty() {
        return Ok(());
    }
    let rows: Vec<&[f64]> = task.entries.iter().map(|p| p.obs.as_slice()).collect();
    let q_rows = match view.quantized {
        Some(qp) => qp.q_values_batch(&rows)?,
        None => view.policy.q_values_batch(&rows)?,
    };
    // The shadow candidate sees the exact observations the active policy
    // answered — scored, never served.
    let shadow_rows = match view.shadow {
        Some(sh) => Some(sh.q_values_batch(&rows)?),
        None => None,
    };
    let mut ranked: Vec<usize> = Vec::new();
    for (i, (p, q)) in task.entries.into_iter().zip(q_rows).enumerate() {
        // Rank the whole head once, descending Q with ascending-index tie
        // breaks — element `c` is exactly `top_c(&q, &all, c)`, without
        // re-sorting per walked rank.
        ranked.clear();
        ranked.extend(0..q.len());
        ranked.sort_by(|&a, &b| {
            q[b].partial_cmp(&q[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        let mut decision = None;
        for (c, &a) in ranked.iter().enumerate() {
            if p.valid.contains(&a) {
                decision = Some((a, q[a], c));
                break;
            }
        }
        // The no-op is always in the valid set, so the walk always lands;
        // fall back to it defensively anyway.
        let (flat, q_value, rank) =
            decision.unwrap_or((0, q.first().copied().unwrap_or(0.0), 0));
        if let Some(shadow_q) = &shadow_rows {
            out.shadow.push(score_shadow(&p, flat, &q, &shadow_q[i], &mut ranked));
        }
        let action = if flat == 0 { None } else { p.actions.get(flat - 1).copied() };
        out.outcomes.push(Outcome::Decision {
            seq: p.seq,
            home: p.home,
            action,
            flat,
            q_value,
            rank,
            source: DecisionSource::Policy,
        });
        if let (Some(now), Some(t0)) = (clock, p.enqueued) {
            out.latencies_ns.push(now().saturating_sub(t0));
        }
    }
    Ok(())
}

/// Score one shadow decision: the candidate's constrained choice under the
/// same `Max(Q, c)` walk, safety parity of the unconstrained argmaxes, and
/// Q-regret of the candidate's choice under the active policy's estimate.
fn score_shadow(
    p: &Pending,
    active_flat: usize,
    active_q: &[f64],
    shadow_q: &[f64],
    ranked: &mut Vec<usize>,
) -> ShadowRow {
    ranked.clear();
    ranked.extend(0..shadow_q.len());
    ranked.sort_by(|&a, &b| {
        shadow_q[b]
            .partial_cmp(&shadow_q[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let shadow_flat = ranked.iter().copied().find(|a| p.valid.contains(a)).unwrap_or(0);
    let raw_argmax = |q: &[f64]| {
        let mut best = 0usize;
        for a in 1..q.len() {
            if q[a] > q[best] {
                best = a;
            }
        }
        best
    };
    let parity_ok =
        p.valid.contains(&raw_argmax(active_q)) == p.valid.contains(&raw_argmax(shadow_q));
    let regret = (active_q.get(active_flat).copied().unwrap_or(0.0)
        - active_q.get(shadow_flat).copied().unwrap_or(0.0))
    .max(0.0);
    ShadowRow { seq: p.seq, agree: shadow_flat == active_flat, parity_ok, regret }
}

/// Close the current window: publish it on this shard's run queue so an
/// idle sibling can steal it, or — when the run queue is full — execute it
/// inline right now.
fn close_batch(
    run_queue: &StealQueue<InferenceTask>,
    pending: &mut Vec<Pending>,
    view: PolicyView<'_>,
    clock: Option<fn() -> u64>,
    out: &mut ShardOutput,
) -> Result<(), JarvisError> {
    if pending.is_empty() {
        return Ok(());
    }
    let task = InferenceTask { entries: std::mem::take(pending) };
    match run_queue.try_push(task) {
        Ok(()) => Ok(()),
        Err(PushError::Full(task)) => run_batch(task, view, clock, out),
    }
}

/// Drive one shard sequentially over its whole stream — the bit-exact
/// deterministic reference for any shard count and any steal schedule.
pub(crate) fn process_sequential(
    slots: &mut BTreeMap<u64, HomeSlot>,
    view: PolicyView<'_>,
    batch_window: usize,
    clock: Option<fn() -> u64>,
    events: impl Iterator<Item = Envelope>,
) -> Result<ShardOutput, JarvisError> {
    let mut out = ShardOutput::default();
    let mut pending: Vec<Pending> = Vec::new();
    for env in events {
        apply_event(slots, Job { env, enqueued: None }, clock, true, &mut pending, &mut out)?;
        if pending.len() >= batch_window {
            run_batch(
                InferenceTask { entries: std::mem::take(&mut pending) },
                view,
                clock,
                &mut out,
            )?;
        }
    }
    run_batch(InferenceTask { entries: pending }, view, clock, &mut out)?;
    Ok(out)
}

/// Marks this shard done-publishing on every exit path — including panics
/// and error returns — and trips the abort latch on the unclean ones, so
/// neither the router nor sibling workers can wait forever on a dead shard.
struct ExitGuard<'a> {
    done: &'a AtomicBool,
    abort: &'a AtomicBool,
    clean: bool,
}

impl Drop for ExitGuard<'_> {
    fn drop(&mut self) {
        if !self.clean {
            self.abort.store(true, Ordering::Release);
        }
        self.done.store(true, Ordering::Release);
    }
}

/// The threaded work-stealing worker loop for shard `idx`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_worker(
    idx: usize,
    slots: &mut BTreeMap<u64, HomeSlot>,
    view: PolicyView<'_>,
    batch_window: usize,
    adaptive: bool,
    stride: usize,
    throttle: Duration,
    clock: Option<fn() -> u64>,
    shared: &WorkerShared,
) -> Result<ShardOutput, JarvisError> {
    let mut guard = ExitGuard { done: &shared.done[idx], abort: &shared.abort, clean: false };
    let result =
        worker_loop(idx, slots, view, batch_window, adaptive, stride, throttle, clock, shared);
    guard.clean = result.is_ok();
    drop(guard);
    result
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    idx: usize,
    slots: &mut BTreeMap<u64, HomeSlot>,
    view: PolicyView<'_>,
    batch_window: usize,
    adaptive: bool,
    stride: usize,
    throttle: Duration,
    clock: Option<fn() -> u64>,
    shared: &WorkerShared,
) -> Result<ShardOutput, JarvisError> {
    let ingest = &shared.ingest[idx];
    let run_queue = &shared.tasks[idx];
    let victims = steal_order(idx, shared.tasks.len(), stride);
    let mut out = ShardOutput::default();
    let mut pending: Vec<Pending> = Vec::new();
    let mut done_publishing = false;

    loop {
        let mut progress = false;

        // 1. Drain the ingest ring: monitor/sensor work applies inline,
        //    queries snapshot into the batching window.
        while let Some(job) = ingest.pop() {
            progress = true;
            if !throttle.is_zero() {
                std::thread::sleep(throttle);
            }
            apply_event(slots, job, clock, true, &mut pending, &mut out)?;
            if pending.len() >= batch_window {
                close_batch(run_queue, &mut pending, view, clock, &mut out)?;
            }
        }

        // 2. Adaptive close: the ring ran dry with queries parked — answer
        //    them now instead of letting them age until the window fills.
        if adaptive && !pending.is_empty() {
            close_batch(run_queue, &mut pending, view, clock, &mut out)?;
            progress = true;
        }

        // 3. End of stream: flush the remainder, then announce that this
        //    shard will never publish another task.
        if !done_publishing && ingest.is_drained() {
            close_batch(run_queue, &mut pending, view, clock, &mut out)?;
            shared.done[idx].store(true, Ordering::Release);
            done_publishing = true;
        }

        // 4. Execute own batches first (freshest cache), then steal from
        //    the fixed victim schedule.
        if let Some(task) = run_queue.pop() {
            run_batch(task, view, clock, &mut out)?;
            continue;
        }
        for &victim in &victims {
            if let Some(task) = shared.tasks[victim].pop() {
                run_batch(task, view, clock, &mut out)?;
                progress = true;
                break;
            }
        }
        if progress {
            continue;
        }

        // 5. Nothing anywhere: abort fast if a sibling failed, terminate
        //    when every shard is done publishing and every run queue is
        //    empty, otherwise yield and look again.
        if shared.abort.load(Ordering::Acquire) {
            break;
        }
        if done_publishing
            && shared.done.iter().all(|d| d.load(Ordering::Acquire))
            && shared.tasks.iter().all(StealQueue::is_empty)
        {
            break;
        }
        std::thread::yield_now();
    }
    Ok(out)
}
