//! Per-home serving state: the slot a worker shard owns for one home.

use crate::online::{OnlineConfig, OnlineLearner};
use jarvis::{encode_observation, JarvisError, Verdict};
use jarvis_iot_model::{EnvAction, EnvState, MiniAction};
use jarvis_policy::{MatchMode, SafeTransitionTable};
use jarvis_rl::Experience;
use jarvis_sim::MINUTES_PER_DAY;
use jarvis_smart_home::SmartHome;
use jarvis_stdkit::json_struct;
use std::sync::Arc;

/// The serializable dynamic state of one [`HomeSlot`].
///
/// [`SmartHome`] itself (the device catalogue) is *not* serialized: a
/// snapshot restores onto a runtime whose homes are already registered from
/// the same deployment catalogue. The `checkpoint` field carries the home's
/// training state — an `OptimizerCheckpoint` JSON document — so a restored
/// shard can also resume per-home learning exactly where it stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeSnapshot {
    /// The home's runtime id.
    pub id: u64,
    /// The home's learned safe-transition table.
    pub table: SafeTransitionTable,
    /// The home's current device state.
    pub state: EnvState,
    /// Minute-of-day of the last processed event.
    pub minute: u32,
    /// Violations blocked so far.
    pub alarms: u64,
    /// Events processed so far.
    pub processed: u64,
    /// The home's `OptimizerCheckpoint` JSON, when training state rides
    /// along with the slot.
    pub checkpoint: Option<String>,
    /// The home's continual-learning state, when online learning is
    /// enabled (DESIGN.md §16). Riding in the snapshot is what makes WAL
    /// recovery and rollback byte-identical with learning on.
    pub online: Option<OnlineLearner>,
}

json_struct!(HomeSnapshot { id, table, state, minute, alarms, processed, checkpoint, online });

/// One home's complete serving state, owned by exactly one worker shard.
#[derive(Debug, Clone)]
pub struct HomeSlot {
    id: u64,
    home: SmartHome,
    table: SafeTransitionTable,
    mode: MatchMode,
    state: EnvState,
    minute: u32,
    alarms: u64,
    processed: u64,
    checkpoint: Option<String>,
    /// Continual-learning state; `None` until
    /// [`crate::ServingRuntime::enable_online`] installs a learner.
    online: Option<Box<OnlineLearner>>,
    state_sizes: Vec<usize>,
    /// The flat-index → mini-action map, shared behind an `Arc` so a closed
    /// inference batch can carry it to whichever worker steals the batch
    /// without cloning the catalogue or touching this slot again.
    agent_actions: Arc<Vec<MiniAction>>,
    /// Memoized [`HomeSlot::valid_actions`] for the current `state`;
    /// invalidated whenever the state moves. Derived data — never
    /// serialized, never compared.
    valid_cache: Option<Vec<usize>>,
}

impl HomeSlot {
    /// Build a slot for `home` starting from its midnight state.
    #[must_use]
    pub fn new(id: u64, home: SmartHome, table: SafeTransitionTable, mode: MatchMode) -> Self {
        let state = home.midnight_state();
        let state_sizes = home.fsm().state_sizes();
        let agent_actions = Arc::new(home.agent_mini_actions());
        HomeSlot {
            id,
            home,
            table,
            mode,
            state,
            minute: 0,
            alarms: 0,
            processed: 0,
            checkpoint: None,
            online: None,
            state_sizes,
            agent_actions,
            valid_cache: None,
        }
    }

    /// The home's runtime id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The home's device catalogue.
    #[must_use]
    pub fn home(&self) -> &SmartHome {
        &self.home
    }

    /// The home's current device state.
    #[must_use]
    pub fn state(&self) -> &EnvState {
        &self.state
    }

    /// Violations blocked so far.
    #[must_use]
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Events processed so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Minute-of-day of the last processed event.
    #[must_use]
    pub fn minute(&self) -> u32 {
        self.minute
    }

    /// Observation width the policy network must accept for this home.
    #[must_use]
    pub fn obs_dim(&self) -> usize {
        self.state_sizes.iter().sum::<usize>() + 5
    }

    /// Flat action-space size (agent mini-actions + the no-op).
    #[must_use]
    pub fn num_actions(&self) -> usize {
        self.agent_actions.len() + 1
    }

    /// The agent-executable mini-action behind a flat policy index
    /// (`None` = no-op / out of range).
    #[must_use]
    pub fn mini_for(&self, flat: usize) -> Option<MiniAction> {
        if flat == 0 {
            None
        } else {
            self.agent_actions.get(flat - 1).copied()
        }
    }

    /// The shared flat-index → mini-action map (entry `i` answers flat
    /// index `i + 1`; flat 0 is the no-op).
    #[must_use]
    pub(crate) fn actions(&self) -> Arc<Vec<MiniAction>> {
        Arc::clone(&self.agent_actions)
    }

    /// Attach (or clear) the home's `OptimizerCheckpoint` JSON.
    pub fn set_checkpoint(&mut self, checkpoint: Option<String>) {
        self.checkpoint = checkpoint;
    }

    /// The home's attached `OptimizerCheckpoint` JSON, if any.
    #[must_use]
    pub fn checkpoint_json(&self) -> Option<&str> {
        self.checkpoint.as_deref()
    }

    /// Install (or replace) the slot's continual-learning state.
    pub(crate) fn enable_online(&mut self, config: OnlineConfig) {
        self.online = Some(Box::new(OnlineLearner::new(config)));
    }

    /// The slot's continual-learning state, when enabled.
    #[must_use]
    pub fn online(&self) -> Option<&OnlineLearner> {
        self.online.as_deref()
    }

    /// Mutable continual-learning state (the fine-tuner drains replay
    /// deltas through this).
    pub(crate) fn online_mut(&mut self) -> Option<&mut OnlineLearner> {
        self.online.as_deref_mut()
    }

    /// `(folds, admitted)` lifetime counters of the online learner — the
    /// supervisor diffs these around event application to emit WAL fold
    /// records.
    #[must_use]
    pub(crate) fn online_stats(&self) -> Option<(u64, u64)> {
        self.online.as_ref().map(|o| (o.folds, o.admitted))
    }

    /// Advance the bookkeeping clock for one incoming event. With `learn`
    /// set and a learner installed, the event also advances the SPL fold
    /// cadence, folding the shadow delta into the safe table when due —
    /// quarantined and degraded-mode paths pass `learn = false`, so
    /// anomalous windows never move the cadence or the table.
    pub(crate) fn note_event(&mut self, minute: u32, learn: bool) {
        self.minute = self.minute.max(minute);
        self.processed += 1;
        if !learn {
            return;
        }
        let Some(online) = self.online.as_deref_mut() else { return };
        online.since_fold += 1;
        if online.since_fold < online.config.fold_every {
            return;
        }
        online.since_fold = 0;
        let outcome = online.delta.fold(
            self.home.fsm(),
            &mut self.table,
            online.config.support_threshold,
            online.config.hysteresis_folds,
        );
        online.folds += 1;
        online.admitted += outcome.admitted.len() as u64;
        if !outcome.admitted.is_empty() {
            // The safe set just grew: memoized valid actions are stale.
            self.valid_cache = None;
        }
    }

    /// Record a decision query's ambient telemetry so between-query replay
    /// experiences encode against the conditions the home actually sees.
    pub(crate) fn note_ambient(&mut self, indoor_c: f64, outdoor_c: f64, price_per_kwh: f64) {
        if let Some(online) = self.online.as_deref_mut() {
            online.ambient =
                crate::online::AmbientTelemetry { indoor_c, outdoor_c, price_per_kwh };
        }
    }

    /// The monitor path: check `mini` against the safe-transition table,
    /// step the state when it is safe, block and alarm when it is not.
    ///
    /// With `learn` set and a learner installed, a blocked action feeds the
    /// shadow SPL delta (a candidate for hysteresis admission) and a safe
    /// agent-action appends a replay-delta [`Experience`] for the
    /// fine-tuner.
    ///
    /// # Errors
    ///
    /// Returns a [`JarvisError::Model`] when `mini` does not belong to this
    /// home's catalogue.
    pub(crate) fn observe_action(
        &mut self,
        mini: MiniAction,
        learn: bool,
    ) -> Result<Verdict, JarvisError> {
        let action = EnvAction::single(mini);
        let learning = learn && self.online.is_some();
        if self.table.is_safe_action(&self.state, &action, self.mode) {
            // Snapshot the pre-step observation only when a replay
            // experience will actually be recorded.
            let flat = if learning {
                self.agent_actions.iter().position(|&m| m == mini).map(|i| i + 1)
            } else {
                None
            };
            let before = flat.map(|_| self.encode_ambient(self.minute));
            self.state = self.home.fsm().step(&self.state, &action)?;
            self.valid_cache = None;
            if let (Some(flat), Some(state)) = (flat, before) {
                let next = self.encode_ambient(self.minute);
                let next_valid = self.valid_actions();
                if let Some(online) = self.online.as_deref_mut() {
                    online.push_experience(Experience {
                        state,
                        action: flat,
                        reward: 1.0,
                        next,
                        next_valid,
                        done: false,
                    });
                }
            }
            Ok(Verdict::Safe)
        } else {
            self.alarms += 1;
            if learning {
                if let Some(online) = self.online.as_deref_mut() {
                    online.delta.observe(&self.state, &action);
                }
            }
            Ok(Verdict::Violation)
        }
    }

    /// Encode the current state against the learner's last-seen ambient
    /// telemetry (defaults before the first query).
    fn encode_ambient(&self, minute: u32) -> Vec<f64> {
        let ambient = self
            .online
            .as_deref()
            .map(|o| o.ambient.clone())
            .unwrap_or_default();
        self.encode(minute, ambient.indoor_c, ambient.outdoor_c, ambient.price_per_kwh)
    }

    /// Apply an exogenous sensor event to the home's state, unchecked.
    ///
    /// # Errors
    ///
    /// Returns a [`JarvisError::Model`] when `mini` does not belong to this
    /// home's catalogue.
    pub(crate) fn apply_sensor(&mut self, mini: MiniAction) -> Result<(), JarvisError> {
        self.state = self.home.fsm().step(&self.state, &EnvAction::single(mini))?;
        self.valid_cache = None;
        Ok(())
    }

    /// Encode the policy observation for a query at `minute` with the given
    /// ambient telemetry — byte-for-byte the encoding `HomeRlEnv` trains
    /// against.
    #[must_use]
    pub(crate) fn encode(
        &self,
        minute: u32,
        indoor_c: f64,
        outdoor_c: f64,
        price_per_kwh: f64,
    ) -> Vec<f64> {
        encode_observation(
            &self.state,
            &self.state_sizes,
            minute,
            MINUTES_PER_DAY,
            indoor_c,
            outdoor_c,
            price_per_kwh,
        )
    }

    /// Flat indices of the actions the safe-transition table allows right
    /// now (the no-op is always allowed). Memoized per state: streams are
    /// query-heavy relative to state changes, so most calls are a clone.
    #[must_use]
    pub(crate) fn valid_actions(&mut self) -> Vec<usize> {
        if let Some(cached) = &self.valid_cache {
            return cached.clone();
        }
        let mut out = vec![0usize];
        for (i, &mini) in self.agent_actions.iter().enumerate() {
            if self.table.is_safe_action(&self.state, &EnvAction::single(mini), self.mode) {
                out.push(i + 1);
            }
        }
        self.valid_cache = Some(out.clone());
        out
    }

    /// Snapshot the slot's dynamic state.
    #[must_use]
    pub fn snapshot(&self) -> HomeSnapshot {
        HomeSnapshot {
            id: self.id,
            table: self.table.clone(),
            state: self.state.clone(),
            minute: self.minute,
            alarms: self.alarms,
            processed: self.processed,
            checkpoint: self.checkpoint.clone(),
            online: self.online.as_deref().cloned(),
        }
    }

    /// Restore the slot's dynamic state from a snapshot of the same home.
    ///
    /// # Errors
    ///
    /// Returns [`JarvisError::Config`] when the snapshot names a different
    /// home and [`JarvisError::Model`] when its state does not validate
    /// against this home's FSM.
    pub(crate) fn restore(&mut self, snap: &HomeSnapshot) -> Result<(), JarvisError> {
        if snap.id != self.id {
            return Err(JarvisError::Config(format!(
                "snapshot is for home {}, slot holds home {}",
                snap.id, self.id
            )));
        }
        self.home.fsm().validate_state(&snap.state)?;
        self.table = snap.table.clone();
        self.state = snap.state.clone();
        self.minute = snap.minute;
        self.alarms = snap.alarms;
        self.processed = snap.processed;
        self.checkpoint = snap.checkpoint.clone();
        self.online = snap.online.clone().map(Box::new);
        self.valid_cache = None;
        Ok(())
    }
}
