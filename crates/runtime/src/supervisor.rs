//! The supervision layer that makes the serving runtime self-healing.
//!
//! Every shard's event loop runs inside a `catch_unwind` panic boundary.
//! When processing an envelope dies — a worker panic, or a stall that
//! overruns the virtual deadline — the supervisor recovers it
//! deterministically: restore the shard's last [`ShardWal`] checkpoint,
//! replay the logged envelope suffix (bitwise-identical outcomes, because
//! serving draws no randomness), and retry the failing envelope after a
//! seeded exponential backoff charged in *virtual ticks* — the supervised
//! path performs zero wall-clock calls unless a telemetry clock is
//! injected (lint rule R2).
//!
//! Failure containment is layered (DESIGN.md §15):
//!
//! 1. **Transient faults** (fewer consecutive failures than
//!    [`SupervisorConfig::quarantine_after`]) are invisible: the recovered
//!    run's outcomes, snapshot bytes, and accounting are bitwise identical
//!    to an uninterrupted run.
//! 2. **Poison pills** — a query whose processing keeps dying — are
//!    quarantined after `quarantine_after` consecutive failures: the query
//!    is answered by the SPL safe-table fallback (the always-valid no-op,
//!    [`DecisionSource::SafeTableFallback`]) with a [`QuarantineRecord`],
//!    and the shard moves on.
//! 3. **Budget exhaustion** — more restarts than
//!    [`SupervisorConfig::restart_budget`] — degrades the shard: its
//!    neural decision path is taken offline for the rest of the call, all
//!    remaining queries are answered by the safe-table fallback, and the
//!    monitor path keeps enforcing. Enforcement never lapses; only
//!    suggestions degrade.
//!
//! Injected chaos ([`ChaosSchedule`]) models failures *of the neural
//! decision path*; once a shard is degraded that path is offline, so chaos
//! stops firing for the shard — this is what guarantees liveness after
//! budget exhaustion. Injected panics unwind via
//! [`std::panic::resume_unwind`] with a typed payload, so they never
//! invoke the global panic hook (no stderr spam under test), while *real*
//! panics from bugs still report normally — and are recovered through the
//! exact same path.

use crate::event::{DecisionSource, Envelope, EventKind, Outcome};
use crate::policy_store::SwapPoint;
use crate::runtime::ServeReport;
use crate::shard::{self, InferenceTask, Job, Pending, PolicyView, ShardOutput};
use crate::slot::HomeSlot;
use crate::wal::{ShardWal, WalRecord};
use jarvis::JarvisError;
use jarvis_sim::{ChaosKind, ChaosSchedule};
use jarvis_stdkit::rng::{ChaCha8Rng, Rng, SeedableRng};
use jarvis_stdkit::{json_enum, json_struct};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The policy timeline one supervised serve call runs against: `views[0]`
/// serves until `swaps[0].at_seq`, `views[k]` from `swaps[k-1].at_seq` to
/// `swaps[k].at_seq`, and so on (`views.len() == swaps.len() + 1`). The
/// epoch of an envelope is a pure function of its seq, so a recovery replay
/// re-serves every envelope under the exact policy that first served it.
pub(crate) struct Roster<'a> {
    /// Per-epoch policy views, in timeline order.
    pub views: Vec<PolicyView<'a>>,
    /// The swap schedule, strictly ascending by `at_seq`.
    pub swaps: &'a [SwapPoint],
}

impl<'a> Roster<'a> {
    /// The epoch serving `seq`: swaps take effect *at* their seq.
    fn epoch_of(&self, seq: u64) -> usize {
        self.swaps.partition_point(|s| s.at_seq <= seq)
    }

    fn view(&self, epoch: usize) -> PolicyView<'a> {
        self.views[epoch.min(self.views.len() - 1)]
    }
}

/// Supervision policy for [`crate::ServingRuntime::serve_supervised`].
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Maximum shard restarts per serve call; one more failure degrades the
    /// shard to safe-table-only serving.
    pub restart_budget: u32,
    /// Base of the seeded exponential backoff, in virtual ticks: restart
    /// `n` charges `base · 2^(n-1)` plus uniform jitter below `base`.
    pub backoff_base_ticks: u64,
    /// Seed of the per-shard backoff jitter streams.
    pub backoff_seed: u64,
    /// Virtual-tick budget one envelope may charge before the watchdog
    /// treats the worker as hung and recovers it like a panic.
    pub deadline_ticks: u64,
    /// Consecutive failures on the same query before it is quarantined as a
    /// poison pill and answered by the safe-table fallback.
    pub quarantine_after: u32,
    /// Envelopes between WAL checkpoints (per shard). Smaller = shorter
    /// replays, more snapshot work.
    pub checkpoint_every: u64,
    /// Serve degraded from the start: the neural path is treated as offline
    /// everywhere and every query gets the safe-table fallback. For
    /// disaster-recovery drills and the degraded-throughput benchmark.
    pub policy_offline: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            restart_budget: 8,
            backoff_base_ticks: 16,
            backoff_seed: 0xB0FF,
            deadline_ticks: 1_000,
            quarantine_after: 3,
            checkpoint_every: 64,
            policy_offline: false,
        }
    }
}

impl SupervisorConfig {
    pub(crate) fn validate(&self) -> Result<(), JarvisError> {
        if self.backoff_base_ticks == 0 {
            return Err(JarvisError::Config("backoff base must be at least 1 tick".into()));
        }
        if self.deadline_ticks == 0 {
            return Err(JarvisError::Config("deadline must be at least 1 tick".into()));
        }
        if self.quarantine_after == 0 {
            return Err(JarvisError::Config("quarantine threshold must be at least 1".into()));
        }
        if self.checkpoint_every == 0 {
            return Err(JarvisError::Config("checkpoint cadence must be at least 1".into()));
        }
        Ok(())
    }
}

/// Why a shard was recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureCause {
    /// Processing the envelope panicked (injected or real).
    Panic,
    /// Processing the envelope charged more virtual ticks than
    /// [`SupervisorConfig::deadline_ticks`] — a hung worker.
    DeadlineOverrun,
}

json_enum!(FailureCause { Panic, DeadlineOverrun });

/// One shard restart: failure, backoff, restore, replay, retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartRecord {
    /// The recovered shard.
    pub shard: usize,
    /// Sequence number of the envelope whose processing failed.
    pub seq: u64,
    /// What killed the worker.
    pub cause: FailureCause,
    /// Consecutive failures of this envelope so far (this one included).
    pub failures: u32,
    /// Virtual ticks of seeded exponential backoff charged before retry.
    pub backoff_ticks: u64,
    /// WAL entries replayed to rebuild the shard's state.
    pub replayed: usize,
}

json_struct!(RestartRecord { shard, seq, cause, failures, backoff_ticks, replayed });

/// One poison-pill quarantine: a query answered by the safe-table fallback
/// after repeated failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// The shard that quarantined the query.
    pub shard: usize,
    /// The quarantined query's sequence number.
    pub seq: u64,
    /// The home the query belonged to.
    pub home: u64,
    /// Consecutive failures that triggered the quarantine.
    pub failures: u32,
}

json_struct!(QuarantineRecord { shard, seq, home, failures });

/// Everything the supervisor did during one serve call. All fields except
/// `recovery_ns` are deterministic accounting — bitwise identical across
/// deterministic/threaded execution and across runs; `recovery_ns` is
/// informational wall-clock telemetry, populated only when
/// [`crate::RuntimeConfig::telemetry`] injects a clock.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Every restart, in shard order then occurrence order.
    pub restarts: Vec<RestartRecord>,
    /// Every poison-pill quarantine.
    pub quarantined: Vec<QuarantineRecord>,
    /// Shards that exhausted their restart budget and degraded to
    /// safe-table-only serving.
    pub degraded_shards: Vec<usize>,
    /// Decisions answered by the safe-table fallback
    /// ([`DecisionSource::SafeTableFallback`]).
    pub fallback_decisions: u64,
    /// WAL checkpoints taken across all shards.
    pub checkpoints: u64,
    /// Stall ticks charged but tolerated (within the deadline).
    pub tolerated_stall_ticks: u64,
    /// Total virtual ticks charged: one per applied envelope, plus stall
    /// charges, plus backoff.
    pub virtual_ticks: u64,
    /// Crash → first post-recovery decision, in telemetry-clock
    /// nanoseconds; empty without an injected clock.
    pub recovery_ns: Vec<u64>,
}

json_struct!(RecoveryReport {
    restarts,
    quarantined,
    degraded_shards,
    fallback_decisions,
    checkpoints,
    tolerated_stall_ticks,
    virtual_ticks,
    recovery_ns,
});

impl RecoveryReport {
    /// Fold one shard's accounting into the runtime-wide report (called in
    /// shard order, so merged records stay deterministic).
    pub(crate) fn absorb(&mut self, other: RecoveryReport) {
        self.restarts.extend(other.restarts);
        self.quarantined.extend(other.quarantined);
        self.degraded_shards.extend(other.degraded_shards);
        self.fallback_decisions += other.fallback_decisions;
        self.checkpoints += other.checkpoints;
        self.tolerated_stall_ticks += other.tolerated_stall_ticks;
        self.virtual_ticks += other.virtual_ticks;
        self.recovery_ns.extend(other.recovery_ns);
    }
}

/// A [`ServeReport`] plus the supervisor's recovery accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedReport {
    /// The ordinary serve results (outcomes sorted by seq; `rejected` is
    /// always empty — supervised serving has no bounded ingest rings).
    pub report: ServeReport,
    /// What the supervisor did.
    pub recovery: RecoveryReport,
    /// Each shard's final write-ahead log, in shard order — the last
    /// checkpoint, the envelope suffix since, and the full
    /// continual-learning record trail ([`WalRecord`]).
    pub wals: Vec<ShardWal>,
}

/// Typed payload of an injected chaos panic. Unwinding with
/// [`resume_unwind`] skips the global panic hook, so chaos-heavy test runs
/// stay quiet while real panics still report.
struct ChaosPanicPayload {
    /// Carried for debuggability of escaped payloads; the supervisor itself
    /// recovers injected and real panics identically and never reads it.
    #[allow(dead_code)]
    seq: u64,
}

/// What one supervised processing attempt produced.
enum Attempt {
    /// The envelope applied cleanly.
    Applied,
    /// The watchdog killed a stall that overran the deadline.
    Overrun,
    /// The worker panicked (payload dropped; injected and real panics are
    /// recovered identically).
    Panicked,
}

/// Per-shard supervision state and accounting.
pub(crate) struct ShardSupervisor<'a> {
    shard: usize,
    sup: &'a SupervisorConfig,
    chaos: Option<&'a ChaosSchedule>,
    /// Times chaos has fired per armed seq; a fire is live while its count
    /// is below the rule's `attempts`. Models the external failure process,
    /// so it is *never* rolled back by recovery.
    fired: BTreeMap<u64, u32>,
    /// Consecutive failures per seq (resets never — seqs are unique).
    failures: BTreeMap<u64, u32>,
    quarantined: BTreeSet<u64>,
    degraded: bool,
    restarts_used: u32,
    backoff_rng: ChaCha8Rng,
    /// Telemetry stamp of the crash whose recovery retry is in flight;
    /// closed (crash → first post-recovery decision) once the retry lands.
    pending_recovery_stamp: Option<u64>,
    /// Per-home `(folds, admitted)` already committed to the WAL record
    /// trail. Recovery replays re-run folds in slot state but never move a
    /// counter past its committed value, so records are exactly-once.
    recorded_folds: BTreeMap<u64, (u64, u64)>,
    /// Swap points already committed to the WAL record trail.
    recorded_swaps: usize,
    recovery: RecoveryReport,
}

impl<'a> ShardSupervisor<'a> {
    pub(crate) fn new(
        shard: usize,
        sup: &'a SupervisorConfig,
        chaos: Option<&'a ChaosSchedule>,
    ) -> Self {
        // SplitMix-style fold keeps per-shard jitter streams independent.
        let mut z = sup.backoff_seed ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        ShardSupervisor {
            shard,
            sup,
            chaos,
            fired: BTreeMap::new(),
            failures: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            degraded: sup.policy_offline,
            restarts_used: 0,
            backoff_rng: ChaCha8Rng::seed_from_u64(z),
            pending_recovery_stamp: None,
            recorded_folds: BTreeMap::new(),
            recorded_swaps: 0,
            recovery: RecoveryReport::default(),
        }
    }

    /// The chaos fire armed for `seq` right now, if any: scheduled, still
    /// below its attempt count, and the shard's neural path is still up.
    fn armed(&self, seq: u64) -> Option<ChaosKind> {
        if self.degraded {
            return None;
        }
        let fire = self.chaos?.get(&seq)?;
        let attempts = match fire.kind {
            ChaosKind::Panic { attempts } | ChaosKind::Stall { attempts, .. } => attempts,
        };
        (self.fired.get(&seq).copied().unwrap_or(0) < attempts).then_some(fire.kind)
    }

    /// Emit the degraded-mode answer for a query: the always-valid no-op
    /// from the SPL safe table, with full bookkeeping on the slot.
    fn fallback_decision(
        slots: &mut BTreeMap<u64, HomeSlot>,
        env: &Envelope,
        out: &mut ShardOutput,
    ) -> Result<(), JarvisError> {
        let slot = slots.get_mut(&env.home).ok_or_else(|| {
            JarvisError::Config(format!(
                "event {} targets unregistered home {}",
                env.seq, env.home
            ))
        })?;
        // Fallback answers come from anomalous windows (quarantine,
        // degraded mode); they must never feed the continual learner.
        slot.note_event(env.minute, false);
        out.outcomes.push(Outcome::Decision {
            seq: env.seq,
            home: env.home,
            action: None,
            flat: 0,
            q_value: 0.0,
            rank: 0,
            source: DecisionSource::SafeTableFallback,
        });
        Ok(())
    }

    /// Restore the WAL checkpoint and replay the logged suffix, truncating
    /// the output back to the checkpoint marks first. Replayed envelopes are
    /// re-served under the exact policy epoch that first served them
    /// ([`Roster::epoch_of`]). Returns the number of envelopes replayed.
    #[allow(clippy::too_many_arguments)]
    fn restore_and_replay(
        &mut self,
        slots: &mut BTreeMap<u64, HomeSlot>,
        roster: &Roster<'_>,
        batch_window: usize,
        clock: Option<fn() -> u64>,
        wal: &ShardWal,
        marks: (usize, usize, usize),
        pending: &mut Vec<Pending>,
        pending_epoch: &mut Option<usize>,
        out: &mut ShardOutput,
    ) -> Result<usize, JarvisError> {
        out.outcomes.truncate(marks.0);
        out.latencies_ns.truncate(marks.1);
        out.shadow.truncate(marks.2);
        pending.clear();
        *pending_epoch = None;
        for snap in &wal.snapshot {
            let slot = slots.get_mut(&snap.id).ok_or_else(|| {
                JarvisError::Config(format!("WAL names unregistered home {}", snap.id))
            })?;
            slot.restore(snap)?;
        }
        let suffix = wal.replay_suffix();
        for env in suffix {
            if self.quarantined.contains(&env.seq) {
                Self::fallback_decision(slots, env, out)?;
                continue;
            }
            let epoch = roster.epoch_of(env.seq);
            if !pending.is_empty() && *pending_epoch != Some(epoch) {
                shard::run_batch(
                    InferenceTask { entries: std::mem::take(pending) },
                    roster.view(pending_epoch.unwrap_or(epoch)),
                    clock,
                    out,
                )?;
            }
            *pending_epoch = Some(epoch);
            let learn = !self.degraded;
            shard::apply_event(
                slots,
                Job { env: env.clone(), enqueued: None },
                clock,
                learn,
                pending,
                out,
            )?;
            if pending.len() >= batch_window {
                shard::run_batch(
                    InferenceTask { entries: std::mem::take(pending) },
                    roster.view(epoch),
                    clock,
                    out,
                )?;
            }
        }
        Ok(suffix.len())
    }

    /// One guarded attempt at processing `env`: arm any scheduled chaos,
    /// apply the event inside a panic boundary, and classify the result.
    fn attempt(
        &mut self,
        slots: &mut BTreeMap<u64, HomeSlot>,
        env: &Envelope,
        clock: Option<fn() -> u64>,
        pending: &mut Vec<Pending>,
        out: &mut ShardOutput,
    ) -> Result<Attempt, JarvisError> {
        let armed = self.armed(env.seq);
        if let Some(ChaosKind::Stall { ticks, .. }) = armed {
            *self.fired.entry(env.seq).or_insert(0) += 1;
            self.recovery.virtual_ticks += ticks;
            if ticks > self.sup.deadline_ticks {
                // The watchdog kills the hung worker before the envelope
                // touches any state; recovery replays and retries it.
                return Ok(Attempt::Overrun);
            }
            self.recovery.tolerated_stall_ticks += ticks;
        }
        let learn = !self.degraded;
        let fired = &mut self.fired;
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let applied = shard::apply_event(
                slots,
                Job { env: env.clone(), enqueued: None },
                clock,
                learn,
                pending,
                out,
            );
            if applied.is_ok() {
                if let Some(ChaosKind::Panic { .. }) = armed {
                    // Fire *after* the event mutated the slot: recovery must
                    // genuinely discard dirty state, not skip clean state.
                    *fired.entry(env.seq).or_insert(0) += 1;
                    resume_unwind(Box::new(ChaosPanicPayload { seq: env.seq }));
                }
            }
            applied
        }));
        match caught {
            Ok(Ok(())) => {
                self.recovery.virtual_ticks += 1;
                Ok(Attempt::Applied)
            }
            Ok(Err(err)) => Err(err),
            Err(_payload) => Ok(Attempt::Panicked),
        }
    }

    /// Commit any fold the slot performed while handling the last envelope
    /// to the WAL record trail. Counters only ever move forward past their
    /// committed marks on first application — recovery replays rebuild slot
    /// state up to (never beyond) the committed counters — so each fold is
    /// recorded exactly once, at the envelope that first landed it.
    fn commit_fold_records(
        &mut self,
        slots: &BTreeMap<u64, HomeSlot>,
        home: u64,
        wal: &mut ShardWal,
    ) {
        let Some(slot) = slots.get(&home) else { return };
        let Some((folds, admitted)) = slot.online_stats() else { return };
        let committed = self.recorded_folds.entry(home).or_insert((0, 0));
        if folds > committed.0 {
            wal.append_record(WalRecord::Fold {
                home,
                fold: folds,
                admitted: admitted - committed.1,
            });
            *committed = (folds, admitted);
        }
    }

    /// Drive one shard's whole stream under supervision.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run(
        mut self,
        slots: &mut BTreeMap<u64, HomeSlot>,
        roster: &Roster<'_>,
        batch_window: usize,
        clock: Option<fn() -> u64>,
        stream: Vec<Envelope>,
    ) -> Result<(ShardOutput, RecoveryReport, ShardWal), JarvisError> {
        let mut out = ShardOutput::default();
        let mut pending: Vec<Pending> = Vec::new();
        let mut pending_epoch: Option<usize> = None;
        let snapshot = |slots: &BTreeMap<u64, HomeSlot>| {
            slots.values().map(HomeSlot::snapshot).collect::<Vec<_>>()
        };
        let mut wal = ShardWal::new(self.shard, snapshot(slots));
        let mut marks = (0usize, 0usize, 0usize);
        let mut since_checkpoint = 0u64;
        // Folds that predate this serve call (resumed snapshots) are not
        // this WAL's to report.
        for (id, slot) in slots.iter() {
            if let Some(stats) = slot.online_stats() {
                self.recorded_folds.insert(*id, stats);
            }
        }

        for env in stream {
            // Write-ahead: the envelope is durable before any attempt.
            wal.append(env.clone());

            // Commit swap points this envelope's epoch has crossed, then
            // flush the batching window if the epoch moved — a batch never
            // spans a swap, so every query is answered by the policy that
            // was active at its seq.
            let epoch = roster.epoch_of(env.seq);
            while self.recorded_swaps < epoch.min(roster.swaps.len()) {
                let sp = roster.swaps[self.recorded_swaps];
                wal.append_record(WalRecord::Swap { at_seq: sp.at_seq, version: sp.version });
                self.recorded_swaps += 1;
            }
            if !pending.is_empty() && pending_epoch != Some(epoch) {
                shard::run_batch(
                    InferenceTask { entries: std::mem::take(&mut pending) },
                    roster.view(pending_epoch.unwrap_or(epoch)),
                    clock,
                    &mut out,
                )?;
            }
            pending_epoch = Some(epoch);

            if self.quarantined.contains(&env.seq)
                || (self.degraded && matches!(env.kind, EventKind::Query { .. }))
            {
                Self::fallback_decision(slots, &env, &mut out)?;
                since_checkpoint += 1;
            } else {
                loop {
                    match self.attempt(slots, &env, clock, &mut pending, &mut out)? {
                        Attempt::Applied => {
                            since_checkpoint += 1;
                            break;
                        }
                        kind @ (Attempt::Overrun | Attempt::Panicked) => {
                            let cause = match kind {
                                Attempt::Overrun => FailureCause::DeadlineOverrun,
                                _ => FailureCause::Panic,
                            };
                            let crashed_at = clock.map(|now| now());
                            let failures = {
                                let f = self.failures.entry(env.seq).or_insert(0);
                                *f += 1;
                                *f
                            };
                            let is_query = matches!(env.kind, EventKind::Query { .. });
                            if is_query && failures >= self.sup.quarantine_after {
                                // Poison pill: stop retrying, serve the
                                // safe-table answer, move on.
                                self.restore_and_replay(
                                    slots, roster, batch_window, clock, &wal, marks,
                                    &mut pending, &mut pending_epoch, &mut out,
                                )?;
                                self.quarantined.insert(env.seq);
                                self.recovery.quarantined.push(QuarantineRecord {
                                    shard: self.shard,
                                    seq: env.seq,
                                    home: env.home,
                                    failures,
                                });
                                Self::fallback_decision(slots, &env, &mut out)?;
                                since_checkpoint += 1;
                                if let (Some(now), Some(t0)) = (clock, crashed_at) {
                                    self.recovery.recovery_ns.push(now().saturating_sub(t0));
                                }
                                break;
                            }
                            if self.restarts_used >= self.sup.restart_budget {
                                // Budget exhausted: the neural path goes
                                // offline for the rest of the call.
                                self.restore_and_replay(
                                    slots, roster, batch_window, clock, &wal, marks,
                                    &mut pending, &mut pending_epoch, &mut out,
                                )?;
                                self.degraded = true;
                                self.recovery.degraded_shards.push(self.shard);
                                if is_query {
                                    Self::fallback_decision(slots, &env, &mut out)?;
                                } else {
                                    // Monitor-path work continues directly;
                                    // chaos no longer fires (`armed` checks
                                    // the degraded flag). A *real* panic
                                    // here has no budget left to recover
                                    // with — fail loudly, never drop.
                                    match self
                                        .attempt(slots, &env, clock, &mut pending, &mut out)?
                                    {
                                        Attempt::Applied => {}
                                        Attempt::Overrun | Attempt::Panicked => {
                                            return Err(JarvisError::Config(format!(
                                                "shard {} failed at seq {} after its \
                                                 restart budget was exhausted",
                                                self.shard, env.seq
                                            )));
                                        }
                                    }
                                }
                                since_checkpoint += 1;
                                if let (Some(now), Some(t0)) = (clock, crashed_at) {
                                    self.recovery.recovery_ns.push(now().saturating_sub(t0));
                                }
                                break;
                            }
                            // Ordinary restart: seeded exponential backoff
                            // in virtual ticks, restore, replay, retry.
                            self.restarts_used += 1;
                            let shift = u32::min(self.restarts_used - 1, 32);
                            let backoff_ticks = self
                                .sup
                                .backoff_base_ticks
                                .saturating_mul(1u64 << shift)
                                .saturating_add(
                                    self.backoff_rng.gen_range(0..self.sup.backoff_base_ticks),
                                );
                            self.recovery.virtual_ticks += backoff_ticks;
                            let replayed = self.restore_and_replay(
                                slots, roster, batch_window, clock, &wal, marks,
                                &mut pending, &mut pending_epoch, &mut out,
                            )?;
                            self.recovery.restarts.push(RestartRecord {
                                shard: self.shard,
                                seq: env.seq,
                                cause,
                                failures,
                                backoff_ticks,
                                replayed,
                            });
                            // Answer the aged queries as soon as the retry
                            // lands (next loop iteration), and stamp the
                            // crash → first-decision recovery time.
                            if let Some(t0) = crashed_at {
                                // Retry happens on the next loop pass; the
                                // stamp closes there via `recovery_pending`.
                                self.pending_recovery_stamp = Some(t0);
                            }
                        }
                    }
                }
                // A recovery retry just landed: flush the window so the aged
                // queries (including the retried one) decide *now*, and
                // close the crash → first-decision stamp.
                if let Some(t0) = self.pending_recovery_stamp.take() {
                    if !pending.is_empty() {
                        shard::run_batch(
                            InferenceTask { entries: std::mem::take(&mut pending) },
                            roster.view(pending_epoch.unwrap_or(epoch)),
                            clock,
                            &mut out,
                        )?;
                    }
                    if let Some(now) = clock {
                        self.recovery.recovery_ns.push(now().saturating_sub(t0));
                    }
                }
            }

            // Commit any fold this envelope landed — after the slot
            // mutation survived every failure path, never before.
            self.commit_fold_records(slots, env.home, &mut wal);

            if since_checkpoint >= self.sup.checkpoint_every {
                // Flush the window first so the checkpoint is a batch
                // boundary and the WAL suffix stays self-contained.
                if !pending.is_empty() {
                    shard::run_batch(
                        InferenceTask { entries: std::mem::take(&mut pending) },
                        roster.view(pending_epoch.unwrap_or(epoch)),
                        clock,
                        &mut out,
                    )?;
                }
                wal.checkpoint(snapshot(slots));
                marks = (out.outcomes.len(), out.latencies_ns.len(), out.shadow.len());
                self.recovery.checkpoints += 1;
                since_checkpoint = 0;
            }
        }

        // End of stream: answer whatever is still parked.
        let final_epoch = pending_epoch.unwrap_or(0);
        shard::run_batch(
            InferenceTask { entries: pending },
            roster.view(final_epoch),
            clock,
            &mut out,
        )?;
        self.recovery.fallback_decisions = out
            .outcomes
            .iter()
            .filter(|o| {
                matches!(o, Outcome::Decision { source: DecisionSource::SafeTableFallback, .. })
            })
            .count() as u64;
        Ok((out, self.recovery, wal))
    }
}
