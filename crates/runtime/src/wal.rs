//! The per-shard write-ahead log behind deterministic crash recovery.
//!
//! A [`ShardWal`] pairs the shard's last state checkpoint (the
//! [`HomeSnapshot`]s of every slot the shard owns) with the envelopes
//! logged since. The supervisor appends each envelope *before* processing
//! it — classic write-ahead discipline — so after a caught panic the log
//! always contains the complete suffix of work since the checkpoint,
//! including the envelope that failed. Recovery is then purely mechanical:
//! restore the checkpoint, replay every logged envelope but the last
//! (regenerating bitwise-identical outcomes, because serving draws no
//! randomness), and retry the last one.
//!
//! The log is an in-memory structure serialized through stdkit's strict
//! JSON codec ([`jarvis_stdkit::json`]), so a WAL — checkpoint, suffix and
//! all — round-trips byte-for-byte. Checkpoints are only taken at batch
//! boundaries (the supervisor flushes the pending decision window first),
//! which keeps the replay self-contained: every query a replay re-parks
//! has its source envelope in the log. Forcing a batch closed at a
//! checkpoint cannot change any decision — batch grouping only clusters
//! pure per-row forwards (DESIGN.md §13).

use crate::event::Envelope;
use crate::slot::HomeSnapshot;
use jarvis_stdkit::{json_enum, json_struct};

/// A durable continual-learning record (DESIGN.md §16). Unlike envelope
/// entries, records are *not* cleared at checkpoints: they are the audit
/// trail that lets recovery — and offline verification — reconstruct which
/// SPL folds landed and which policy version was active at every seq,
/// independent of where the last checkpoint fell.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A slot folded its SPL delta into `P_safe`.
    Fold {
        /// The home whose delta folded.
        home: u64,
        /// The slot's lifetime fold ordinal (1-based, == `folds` after).
        fold: u64,
        /// Pairs admitted into the safe table by this fold.
        admitted: u64,
    },
    /// The active policy version changed.
    Swap {
        /// The stream seq at which the swap took effect: decisions with
        /// `seq >= at_seq` were served by `version`.
        at_seq: u64,
        /// The now-active policy version id.
        version: u64,
    },
}

json_enum!(WalRecord {
    Fold { home, fold, admitted },
    Swap { at_seq, version },
});

/// One shard's write-ahead log: last checkpoint + envelope suffix.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardWal {
    /// The shard this log belongs to.
    pub shard: usize,
    /// The shard's slots at the last checkpoint, ordered by home id.
    pub snapshot: Vec<HomeSnapshot>,
    /// Envelopes logged since the checkpoint, in processing (seq) order.
    /// The last entry is the envelope currently being processed.
    pub entries: Vec<Envelope>,
    /// Continual-learning records for the whole run, in commit order.
    /// Checkpoints do not clear them.
    pub records: Vec<WalRecord>,
}

json_struct!(ShardWal { shard, snapshot, entries, records });

impl ShardWal {
    /// Open a log for `shard` at an initial checkpoint.
    #[must_use]
    pub fn new(shard: usize, snapshot: Vec<HomeSnapshot>) -> Self {
        ShardWal { shard, snapshot, entries: Vec::new(), records: Vec::new() }
    }

    /// Log an envelope ahead of processing it.
    pub fn append(&mut self, env: Envelope) {
        self.entries.push(env);
    }

    /// Commit a continual-learning record. Appended *after* the learning
    /// state change it describes lands in slot state, so a crash between
    /// the two replays the change rather than double-reporting it.
    pub fn append_record(&mut self, record: WalRecord) {
        self.records.push(record);
    }

    /// Replace the checkpoint with a fresh snapshot and clear the suffix —
    /// everything before `snapshot` is now durable state. Learning records
    /// survive: they describe the whole run, not the suffix.
    pub fn checkpoint(&mut self, snapshot: Vec<HomeSnapshot>) {
        self.snapshot = snapshot;
        self.entries.clear();
    }

    /// The envelopes to re-apply during recovery: every logged entry except
    /// the failing last one (which the supervisor retries separately).
    /// Empty when the failure hit the first envelope after a checkpoint.
    #[must_use]
    pub fn replay_suffix(&self) -> &[Envelope] {
        match self.entries.split_last() {
            Some((_failing, prefix)) => prefix,
            None => &[],
        }
    }

    /// Number of envelopes logged since the checkpoint.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the suffix is empty (a checkpoint just happened).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::slot::HomeSlot;
    use jarvis_policy::{MatchMode, SafeTransitionTable};
    use jarvis_smart_home::SmartHome;
    use jarvis_stdkit::json::{FromJson, ToJson};

    fn snapshot() -> Vec<HomeSnapshot> {
        let home = SmartHome::evaluation_home();
        let slot = HomeSlot::new(3, home, SafeTransitionTable::new(), MatchMode::Exact);
        vec![slot.snapshot()]
    }

    fn env(seq: u64) -> Envelope {
        Envelope {
            seq,
            home: 3,
            minute: 10 + seq as u32,
            kind: EventKind::Query { indoor_c: 21.0, outdoor_c: 5.0, price_per_kwh: 0.12 },
        }
    }

    #[test]
    fn write_ahead_then_checkpoint_clears_suffix() {
        let mut wal = ShardWal::new(0, snapshot());
        assert!(wal.is_empty());
        for seq in 0..5 {
            wal.append(env(seq));
        }
        assert_eq!(wal.len(), 5);
        assert_eq!(wal.replay_suffix().len(), 4);
        assert_eq!(wal.entries.last().unwrap().seq, 4);
        wal.checkpoint(snapshot());
        assert!(wal.is_empty());
        assert_eq!(wal.replay_suffix(), &[]);
    }

    #[test]
    fn wal_round_trips_byte_for_byte() {
        let mut wal = ShardWal::new(2, snapshot());
        wal.append(env(7));
        wal.append(Envelope {
            seq: 8,
            home: 3,
            minute: 30,
            kind: EventKind::Action(jarvis_iot_model::MiniAction {
                device: jarvis_iot_model::DeviceId(0),
                action: jarvis_iot_model::ActionIdx(0),
            }),
        });
        wal.append_record(WalRecord::Fold { home: 3, fold: 1, admitted: 2 });
        wal.append_record(WalRecord::Swap { at_seq: 9, version: 1 });
        let json = wal.to_json();
        let back = ShardWal::from_json(&json).unwrap();
        assert_eq!(back, wal);
        assert_eq!(back.to_json(), json, "serialization must be byte-stable");
    }

    #[test]
    fn learning_records_survive_checkpoints() {
        let mut wal = ShardWal::new(0, snapshot());
        wal.append(env(0));
        wal.append_record(WalRecord::Fold { home: 3, fold: 1, admitted: 0 });
        wal.checkpoint(snapshot());
        assert!(wal.is_empty(), "checkpoint clears the envelope suffix");
        assert_eq!(
            wal.records,
            vec![WalRecord::Fold { home: 3, fold: 1, admitted: 0 }],
            "checkpoint must not clear the learning audit trail"
        );
        wal.append_record(WalRecord::Swap { at_seq: 5, version: 2 });
        wal.checkpoint(snapshot());
        assert_eq!(wal.records.len(), 2);
    }

    #[test]
    fn wal_record_round_trips_byte_for_byte() {
        for record in [
            WalRecord::Fold { home: 11, fold: 4, admitted: 1 },
            WalRecord::Swap { at_seq: 1024, version: 3 },
        ] {
            let json = record.to_json();
            let back = WalRecord::from_json(&json).unwrap();
            assert_eq!(back, record);
            assert_eq!(back.to_json(), json, "serialization must be byte-stable");
        }
    }
}
