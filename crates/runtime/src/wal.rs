//! The per-shard write-ahead log behind deterministic crash recovery.
//!
//! A [`ShardWal`] pairs the shard's last state checkpoint (the
//! [`HomeSnapshot`]s of every slot the shard owns) with the envelopes
//! logged since. The supervisor appends each envelope *before* processing
//! it — classic write-ahead discipline — so after a caught panic the log
//! always contains the complete suffix of work since the checkpoint,
//! including the envelope that failed. Recovery is then purely mechanical:
//! restore the checkpoint, replay every logged envelope but the last
//! (regenerating bitwise-identical outcomes, because serving draws no
//! randomness), and retry the last one.
//!
//! The log is an in-memory structure serialized through stdkit's strict
//! JSON codec ([`jarvis_stdkit::json`]), so a WAL — checkpoint, suffix and
//! all — round-trips byte-for-byte. Checkpoints are only taken at batch
//! boundaries (the supervisor flushes the pending decision window first),
//! which keeps the replay self-contained: every query a replay re-parks
//! has its source envelope in the log. Forcing a batch closed at a
//! checkpoint cannot change any decision — batch grouping only clusters
//! pure per-row forwards (DESIGN.md §13).

use crate::event::Envelope;
use crate::slot::HomeSnapshot;
use jarvis_stdkit::json_struct;

/// One shard's write-ahead log: last checkpoint + envelope suffix.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardWal {
    /// The shard this log belongs to.
    pub shard: usize,
    /// The shard's slots at the last checkpoint, ordered by home id.
    pub snapshot: Vec<HomeSnapshot>,
    /// Envelopes logged since the checkpoint, in processing (seq) order.
    /// The last entry is the envelope currently being processed.
    pub entries: Vec<Envelope>,
}

json_struct!(ShardWal { shard, snapshot, entries });

impl ShardWal {
    /// Open a log for `shard` at an initial checkpoint.
    #[must_use]
    pub fn new(shard: usize, snapshot: Vec<HomeSnapshot>) -> Self {
        ShardWal { shard, snapshot, entries: Vec::new() }
    }

    /// Log an envelope ahead of processing it.
    pub fn append(&mut self, env: Envelope) {
        self.entries.push(env);
    }

    /// Replace the checkpoint with a fresh snapshot and clear the suffix —
    /// everything before `snapshot` is now durable state.
    pub fn checkpoint(&mut self, snapshot: Vec<HomeSnapshot>) {
        self.snapshot = snapshot;
        self.entries.clear();
    }

    /// The envelopes to re-apply during recovery: every logged entry except
    /// the failing last one (which the supervisor retries separately).
    /// Empty when the failure hit the first envelope after a checkpoint.
    #[must_use]
    pub fn replay_suffix(&self) -> &[Envelope] {
        match self.entries.split_last() {
            Some((_failing, prefix)) => prefix,
            None => &[],
        }
    }

    /// Number of envelopes logged since the checkpoint.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the suffix is empty (a checkpoint just happened).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::slot::HomeSlot;
    use jarvis_policy::{MatchMode, SafeTransitionTable};
    use jarvis_smart_home::SmartHome;
    use jarvis_stdkit::json::{FromJson, ToJson};

    fn snapshot() -> Vec<HomeSnapshot> {
        let home = SmartHome::evaluation_home();
        let slot = HomeSlot::new(3, home, SafeTransitionTable::new(), MatchMode::Exact);
        vec![slot.snapshot()]
    }

    fn env(seq: u64) -> Envelope {
        Envelope {
            seq,
            home: 3,
            minute: 10 + seq as u32,
            kind: EventKind::Query { indoor_c: 21.0, outdoor_c: 5.0, price_per_kwh: 0.12 },
        }
    }

    #[test]
    fn write_ahead_then_checkpoint_clears_suffix() {
        let mut wal = ShardWal::new(0, snapshot());
        assert!(wal.is_empty());
        for seq in 0..5 {
            wal.append(env(seq));
        }
        assert_eq!(wal.len(), 5);
        assert_eq!(wal.replay_suffix().len(), 4);
        assert_eq!(wal.entries.last().unwrap().seq, 4);
        wal.checkpoint(snapshot());
        assert!(wal.is_empty());
        assert_eq!(wal.replay_suffix(), &[]);
    }

    #[test]
    fn wal_round_trips_byte_for_byte() {
        let mut wal = ShardWal::new(2, snapshot());
        wal.append(env(7));
        wal.append(Envelope {
            seq: 8,
            home: 3,
            minute: 30,
            kind: EventKind::Action(jarvis_iot_model::MiniAction {
                device: jarvis_iot_model::DeviceId(0),
                action: jarvis_iot_model::ActionIdx(0),
            }),
        });
        let json = wal.to_json();
        let back = ShardWal::from_json(&json).unwrap();
        assert_eq!(back, wal);
        assert_eq!(back.to_json(), json, "serialization must be byte-stable");
    }
}
