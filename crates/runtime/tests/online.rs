//! Continual-learning invariants (DESIGN.md §16): online serving is
//! bitwise identical across shard counts and execution modes, SPL fold
//! hysteresis admits persistent routine shifts but never a single bad day,
//! mid-stream policy swaps are reproducible from `(stream, plan)` alone,
//! shadow evaluation and promotion gates are deterministic both ways,
//! background fine-tuning is invariant across worker-pool sizes, and a
//! snapshot restore rolls the whole learning state back byte-for-byte.
//!
//! Sizes scale down under Miri (`cfg(miri)`) so the battery stays inside
//! the interpreter's time budget; the properties checked are identical.

use jarvis::{Jarvis, JarvisConfig, OptimizerCheckpoint, OptimizerConfig, TrainingStats, Verdict};
use jarvis_policy::SafeTransitionTable;
use jarvis_rl::{DqnAgent, DqnConfig};
use jarvis_runtime::{
    Envelope, EventKind, FineTuneConfig, OnlineConfig, Outcome, RuntimeConfig, ServingRuntime,
    ShadowGates, ShadowRow, SwapPoint,
};
use jarvis_sim::{FleetGenerator, HomeDataset};
use jarvis_smart_home::SmartHome;
use jarvis_stdkit::json::ToJson;
use jarvis_stdkit::pool::WorkerPool;

/// A home catalogue, a table learned from a short learning phase, and a
/// policy agent sized for that home.
struct Fixture {
    home: SmartHome,
    table: SafeTransitionTable,
    policy: DqnAgent,
}

fn fixture() -> Fixture {
    let home = SmartHome::evaluation_home();
    let config = JarvisConfig { optimizer: OptimizerConfig::fast(), ..JarvisConfig::default() };
    let mut jarvis = Jarvis::new(home.clone(), config);
    let learn_days = if cfg!(miri) { 0..1 } else { 0..2 };
    jarvis.learning_phase(&HomeDataset::home_a(3), learn_days).expect("learning phase");
    jarvis.learn_policies().expect("SPL");
    let table = jarvis.outcome().expect("outcome").table.clone();

    let state_dim = home.fsm().state_sizes().iter().sum::<usize>() + 5;
    let num_actions = home.agent_mini_actions().len() + 1;
    let policy = DqnAgent::new(policy_cfg(state_dim, num_actions, 7)).expect("policy net");
    Fixture { home, table, policy }
}

fn policy_cfg(state_dim: usize, num_actions: usize, seed: u64) -> DqnConfig {
    let mut cfg = DqnConfig::new(state_dim, num_actions);
    cfg.hidden = vec![16];
    cfg.seed = seed;
    cfg
}

/// A second policy with different weights, sized like the fixture's.
fn alt_policy(f: &Fixture) -> DqnAgent {
    let cfg = f.policy.config();
    DqnAgent::new(policy_cfg(cfg.state_dim, cfg.num_actions, 99)).expect("alt policy net")
}

fn det_config(shards: usize) -> RuntimeConfig {
    let mut config = RuntimeConfig::new(shards);
    config.deterministic = true;
    config.batch_window = 8;
    config
}

/// A fold cadence short enough that a fleet day folds many times.
fn online_cfg() -> OnlineConfig {
    OnlineConfig {
        fold_every: if cfg!(miri) { 16 } else { 24 },
        support_threshold: 3,
        hysteresis_folds: 2,
        replay_delta_cap: 64,
    }
}

fn fleet_size() -> u32 {
    if cfg!(miri) {
        2
    } else {
        6
    }
}

fn query_every() -> u32 {
    if cfg!(miri) {
        240
    } else {
        45
    }
}

fn build_runtime(f: &Fixture, config: RuntimeConfig, homes: u32) -> ServingRuntime {
    let mut rt = ServingRuntime::new(config, f.policy.clone()).expect("runtime");
    for id in 0..homes {
        rt.register_home(u64::from(id), f.home.clone(), f.table.clone()).expect("register");
    }
    rt
}

fn online_runtime(f: &Fixture, config: RuntimeConfig, homes: u32) -> ServingRuntime {
    let mut rt = build_runtime(f, config, homes);
    rt.enable_online(online_cfg(), ShadowGates::default()).expect("enable online");
    rt
}

/// Bitwise outcome comparison: `PartialEq` plus the Debug rendering, which
/// prints `f64`s with shortest-round-trip precision and so distinguishes
/// any bit difference.
fn assert_outcomes_bit_identical(a: &[Outcome], b: &[Outcome], what: &str) {
    assert_eq!(a, b, "{what}: outcome lists differ");
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what}: f64 bits differ");
}

/// Snapshot bytes with the shard count pinned to 1: the partitioning is
/// deployment topology, not fleet state, and must not leak into the
/// cross-shard determinism comparison.
fn fleet_state(rt: &ServingRuntime) -> String {
    let mut snap = rt.snapshot();
    snap.shards = 1;
    snap.to_json()
}

fn total_folds(rt: &ServingRuntime) -> u64 {
    (0..rt.num_homes() as u64)
        .filter_map(|id| rt.slot(id).and_then(|s| s.online()).map(|o| o.folds))
        .sum()
}

// ---------------------------------------------------------------------------
// Layer 1+3: serving determinism with learning on
// ---------------------------------------------------------------------------

#[test]
fn online_serving_is_bitwise_invariant_across_shards_and_modes() {
    let f = fixture();
    let fleet = FleetGenerator::new(31, fleet_size());

    let mut oracle = online_runtime(&f, det_config(1), fleet.num_homes());
    let ingest = oracle.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
    let envelopes = ingest.envelopes;
    let want = oracle.serve(envelopes.clone()).expect("oracle serve").outcomes;
    let want_snap = fleet_state(&oracle);
    assert!(total_folds(&oracle) > 0, "the stream must be long enough to fold");

    for shards in [2usize, 4, 8] {
        for deterministic in [true, false] {
            let mut config = det_config(shards);
            config.deterministic = deterministic;
            let mut rt = online_runtime(&f, config, fleet.num_homes());
            let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
            assert_eq!(envelopes, ingest.envelopes, "ingest is shard-count independent");
            let report = rt.serve(ingest.envelopes).expect("serve");
            assert!(report.rejected.is_empty(), "Block serving never sheds");
            let what = format!("online, {shards} shards, deterministic={deterministic}");
            assert_outcomes_bit_identical(&want, &report.outcomes, &what);
            assert_eq!(want_snap, fleet_state(&rt), "{what}: snapshot bytes differ");
        }
    }
}

// ---------------------------------------------------------------------------
// Layer 1: fold hysteresis
// ---------------------------------------------------------------------------

/// A violating action: never learned in the table, so the monitor flags it
/// and the shadow delta starts counting it.
fn violation(f: &Fixture) -> jarvis_iot_model::MiniAction {
    f.home.mini_action("door_sensor", "power_off")
}

/// One fold window (`fold_every` envelopes) of pure violating actions
/// against home 0, continuing at `seq`/`minute`.
fn violation_window(f: &Fixture, cfg: &OnlineConfig, seq: &mut u64, minute: &mut u32) -> Vec<Envelope> {
    let mini = violation(f);
    (0..cfg.fold_every)
        .map(|_| {
            let env = Envelope { seq: *seq, home: 0, minute: *minute, kind: EventKind::Action(mini) };
            *seq += 1;
            *minute += 1;
            env
        })
        .collect()
}

/// One fold window of idle decision queries: they advance the fold cadence
/// without observing any candidate pair, so a stale streak expires.
fn idle_window(cfg: &OnlineConfig, seq: &mut u64, minute: &mut u32) -> Vec<Envelope> {
    (0..cfg.fold_every)
        .map(|_| {
            let env = Envelope {
                seq: *seq,
                home: 0,
                minute: *minute,
                kind: EventKind::Query { indoor_c: 21.0, outdoor_c: 10.0, price_per_kwh: 0.15 },
            };
            *seq += 1;
            *minute += 1;
            env
        })
        .collect()
}

fn verdicts(outcomes: &[Outcome]) -> Vec<(u64, Verdict)> {
    outcomes
        .iter()
        .filter_map(|o| match o {
            Outcome::Verdict { seq, verdict, .. } => Some((*seq, *verdict)),
            _ => None,
        })
        .collect()
}

#[test]
fn hysteresis_admits_a_persistent_shift_after_two_supported_folds() {
    let f = fixture();
    let cfg = online_cfg();
    let mut rt = online_runtime(&f, det_config(1), 1);
    let (mut seq, mut minute) = (0u64, 0u32);
    let mut stream = Vec::new();
    for _ in 0..3 {
        stream.extend(violation_window(&f, &cfg, &mut seq, &mut minute));
    }
    let report = rt.serve(stream).expect("serve");
    let verdicts = verdicts(&report.outcomes);

    // Window 1 folds at envelope `fold_every` with fold_every - 1
    // observations (>= support_threshold): streak 1. Window 2 folds one
    // window later: streak 2 == hysteresis_folds, pair admitted — the very
    // envelope that triggered that fold is checked against the grown table.
    let first_safe = verdicts.iter().position(|&(_, v)| v == Verdict::Safe);
    assert_eq!(
        first_safe,
        Some(2 * cfg.fold_every as usize - 1),
        "admission must land exactly at the second fold, not before"
    );
    assert_eq!(verdicts[0].1, Verdict::Violation, "the shift starts as a violation");
    let learner = rt.slot(0).unwrap().online().expect("learner");
    assert_eq!(learner.folds, 3);
    assert!(learner.admitted >= 1, "the persistent pair must be admitted");
}

#[test]
fn a_single_bad_day_is_never_admitted() {
    let f = fixture();
    let cfg = online_cfg();
    let mut rt = online_runtime(&f, det_config(1), 1);
    let (mut seq, mut minute) = (0u64, 0u32);
    // One anomalous window, two quiet ones, another anomalous one, one
    // quiet: support never spans two consecutive folds.
    let mut stream = violation_window(&f, &cfg, &mut seq, &mut minute);
    stream.extend(idle_window(&cfg, &mut seq, &mut minute));
    stream.extend(idle_window(&cfg, &mut seq, &mut minute));
    stream.extend(violation_window(&f, &cfg, &mut seq, &mut minute));
    stream.extend(idle_window(&cfg, &mut seq, &mut minute));
    let report = rt.serve(stream).expect("serve");

    assert!(
        verdicts(&report.outcomes).iter().all(|&(_, v)| v == Verdict::Violation),
        "an isolated anomalous window must stay a violation forever"
    );
    let learner = rt.slot(0).unwrap().online().expect("learner");
    assert_eq!(learner.folds, 5, "every window folded");
    assert_eq!(learner.admitted, 0, "hysteresis must reject the single bad day");
}

// ---------------------------------------------------------------------------
// Layer 3: scheduled mid-stream swaps
// ---------------------------------------------------------------------------

#[test]
fn mid_stream_swap_is_bitwise_reproducible_across_shards_and_modes() {
    let f = fixture();
    let fleet = FleetGenerator::new(43, fleet_size());
    let alt = alt_policy(&f);

    // Reference run: 1 shard, deterministic, swap half way through the day.
    let mut oracle = online_runtime(&f, det_config(1), fleet.num_homes());
    let version = oracle.policy_store_mut().expect("store").register(alt.checkpoint());
    let ingest = oracle.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
    let envelopes = ingest.envelopes;
    let at_seq = envelopes[envelopes.len() / 2].seq;
    let swaps = [SwapPoint { at_seq, version }];
    let want = oracle.serve_online(envelopes.clone(), &swaps).expect("oracle serve_online");
    let want_snap = fleet_state(&oracle);

    let store = oracle.policy_store().expect("store");
    assert_eq!(store.active(), version, "the swap target must end up active");
    assert_eq!(store.swaps().len(), 1);
    assert_eq!(store.swaps()[0].at_seq, at_seq);
    assert_eq!(store.swaps()[0].to, version);

    // The swap must actually change decisions after at_seq...
    let mut frozen = online_runtime(&f, det_config(1), fleet.num_homes());
    let ingest = frozen.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
    let base = frozen.serve(ingest.envelopes).expect("serve").outcomes;
    let split = |outs: &[Outcome]| -> (Vec<Outcome>, Vec<Outcome>) {
        outs.iter().cloned().partition(|o| o.seq() < at_seq)
    };
    let (want_pre, want_post) = split(&want.outcomes);
    let (base_pre, base_post) = split(&base);
    assert_outcomes_bit_identical(&want_pre, &base_pre, "pre-swap outcomes");
    assert_ne!(want_post, base_post, "the swapped-in policy must answer differently");

    // ...and be bitwise reproducible from (stream, plan) alone, whatever
    // the shard count or execution mode.
    for shards in [1usize, 2, 4, 8] {
        for deterministic in [true, false] {
            let mut config = det_config(shards);
            config.deterministic = deterministic;
            let mut rt = online_runtime(&f, config, fleet.num_homes());
            let v = rt.policy_store_mut().expect("store").register(alt.checkpoint());
            assert_eq!(v, version, "content addressing is runtime-independent");
            let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
            assert_eq!(envelopes, ingest.envelopes, "ingest is shard-count independent");
            let got = rt.serve_online(ingest.envelopes, &swaps).expect("serve_online");
            let what = format!("swap, {shards} shards, deterministic={deterministic}");
            assert_outcomes_bit_identical(&want.outcomes, &got.outcomes, &what);
            assert_eq!(want_snap, fleet_state(&rt), "{what}: snapshot bytes differ");
        }
    }
}

#[test]
fn swap_plans_are_validated() {
    let f = fixture();
    let fleet = FleetGenerator::new(5, 2);

    // No online learning: swaps are refused outright.
    let mut rt = build_runtime(&f, det_config(1), fleet.num_homes());
    assert!(rt.serve_online(Vec::new(), &[SwapPoint { at_seq: 0, version: 0 }]).is_err());

    let mut rt = online_runtime(&f, det_config(1), fleet.num_homes());
    let version = rt.policy_store_mut().expect("store").register(alt_policy(&f).checkpoint());
    // Unknown version.
    assert!(rt.serve_online(Vec::new(), &[SwapPoint { at_seq: 0, version: 77 }]).is_err());
    // Unordered plan.
    let unordered =
        [SwapPoint { at_seq: 9, version }, SwapPoint { at_seq: 9, version }];
    assert!(rt.serve_online(Vec::new(), &unordered).is_err());
    // A valid plan over an empty stream still commits the swap.
    rt.serve_online(Vec::new(), &[SwapPoint { at_seq: 0, version }]).expect("empty stream");
    assert_eq!(rt.policy_store().expect("store").active(), version);
}

// ---------------------------------------------------------------------------
// Layer 3: shadow evaluation and promotion gates
// ---------------------------------------------------------------------------

#[test]
fn shadow_scores_are_identical_across_shards_and_modes() {
    let f = fixture();
    let fleet = FleetGenerator::new(53, fleet_size());
    let alt = alt_policy(&f);

    let score_of = |shards: usize, deterministic: bool| {
        let mut config = det_config(shards);
        config.deterministic = deterministic;
        let mut rt = online_runtime(&f, config, fleet.num_homes());
        let store = rt.policy_store_mut().expect("store");
        let version = store.register(alt.checkpoint());
        store.stage(version).expect("stage");
        let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
        rt.serve(ingest.envelopes).expect("serve");
        rt.policy_store().expect("store").score().to_json()
    };

    let want = score_of(1, true);
    let decisions = want.contains("\"decisions\":0");
    assert!(!decisions, "the staged candidate must actually be shadow-scored: {want}");
    for (shards, deterministic) in [(1, true), (4, true), (4, false), (8, false)] {
        assert_eq!(
            want,
            score_of(shards, deterministic),
            "shadow score diverged at {shards} shards, deterministic={deterministic}"
        );
    }
}

/// `count` clean shadow rows (full agreement, no parity violations, zero
/// regret) starting at seq 0.
fn clean_rows(count: u64) -> Vec<ShadowRow> {
    (0..count).map(|seq| ShadowRow { seq, agree: true, parity_ok: true, regret: 0.0 }).collect()
}

#[test]
fn promotion_gates_hold_and_release_deterministically() {
    let f = fixture();
    let gates = ShadowGates::default();

    let staged = |f: &Fixture| -> (ServingRuntime, u64) {
        let mut rt = online_runtime(f, det_config(1), 1);
        let store = rt.policy_store_mut().expect("store");
        let version = store.register(alt_policy(f).checkpoint());
        store.stage(version).expect("stage");
        (rt, version)
    };

    // Not enough decisions: held back.
    let (mut rt, _) = staged(&f);
    rt.policy_store_mut().unwrap().absorb(&clean_rows(gates.min_decisions - 1));
    assert!(rt.try_promote().expect("try_promote").is_none());
    assert_eq!(rt.policy_store().unwrap().active(), 0);

    // One parity violation: held back no matter how clean the rest is.
    let (mut rt, _) = staged(&f);
    let mut rows = clean_rows(gates.min_decisions * 2);
    rows[3].parity_ok = false;
    rt.policy_store_mut().unwrap().absorb(&rows);
    assert!(rt.try_promote().expect("try_promote").is_none());

    // Agreement below the floor: held back.
    let (mut rt, _) = staged(&f);
    let mut rows = clean_rows(gates.min_decisions * 2);
    for row in rows.iter_mut().take(gates.min_decisions as usize) {
        row.agree = false;
    }
    rt.policy_store_mut().unwrap().absorb(&rows);
    assert!(rt.try_promote().expect("try_promote").is_none());

    // A clean record that clears every gate: promoted, installed, recorded.
    let (mut rt, version) = staged(&f);
    rt.policy_store_mut().unwrap().absorb(&clean_rows(gates.min_decisions));
    let record = rt.try_promote().expect("try_promote").expect("promotion");
    assert_eq!(record.from, 0);
    assert_eq!(record.to, version);
    let store = rt.policy_store().unwrap();
    assert_eq!(store.active(), version);
    assert_eq!(store.candidate(), None, "promotion consumes the staged candidate");
    assert_eq!(
        rt.policy().checkpoint().to_json(),
        store.version(version).unwrap().checkpoint.to_json(),
        "the promoted weights must be the stored bytes, exactly"
    );
    // Promoting again is a no-op until a new candidate is staged.
    assert!(rt.try_promote().expect("try_promote").is_none());
}

// ---------------------------------------------------------------------------
// Layer 2: background fine-tuning through the worker pool
// ---------------------------------------------------------------------------

/// A PR-3 style optimizer checkpoint wrapping the fixture policy, as a
/// home would carry after a training run.
fn optimizer_checkpoint(f: &Fixture) -> String {
    OptimizerCheckpoint {
        config: OptimizerConfig::fast(),
        agent: f.policy.checkpoint(),
        episodes_done: 1,
        stats: TrainingStats::default(),
    }
    .to_json()
}

/// Serve one fleet day with checkpoints attached, fine-tune through a pool
/// of `workers`, and return every observable artifact of the pass.
fn fine_tune_run(
    f: &Fixture,
    fleet: &FleetGenerator,
    workers: usize,
) -> (jarvis_runtime::FineTuneReport, Vec<String>, String, String) {
    let mut rt = online_runtime(f, det_config(1), fleet.num_homes());
    for id in 0..u64::from(fleet.num_homes()) {
        rt.attach_checkpoint(id, optimizer_checkpoint(f)).expect("attach");
    }
    let ingest = rt.ingest_fleet_day(fleet, 1, None, Some(query_every())).expect("ingest");
    rt.serve(ingest.envelopes).expect("serve");
    let replayed: usize = (0..u64::from(fleet.num_homes()))
        .filter_map(|id| rt.slot(id).and_then(|s| s.online()).map(|o| o.replay.len()))
        .sum();
    assert!(replayed > 0, "the served day must bank replay experiences");

    let pool = WorkerPool::with_workers(workers);
    let cfg = FineTuneConfig { replay_steps: 2, min_delta: 1 };
    let report = rt.fine_tune(&pool, &cfg).expect("fine_tune");
    let checkpoints = (0..u64::from(fleet.num_homes()))
        .map(|id| rt.slot(id).unwrap().checkpoint_json().expect("checkpoint").to_owned())
        .collect();
    let store_json = rt.policy_store().expect("store").to_json();
    (report, checkpoints, store_json, rt.snapshot().to_json())
}

#[test]
fn fine_tuning_is_invariant_across_pool_sizes() {
    let f = fixture();
    let fleet = FleetGenerator::new(61, fleet_size());
    let (want_report, want_cps, want_store, want_snap) = fine_tune_run(&f, &fleet, 1);
    assert!(want_report.homes_tuned > 0, "some home must be tuned");
    assert!(want_report.experiences > 0);
    let candidate = want_report.candidate.expect("pooled deltas must stage a candidate");
    assert!(candidate > 0, "the candidate is a fresh version, not the bootstrap");

    for workers in [2usize, 4] {
        let (report, cps, store, snap) = fine_tune_run(&f, &fleet, workers);
        assert_eq!(want_report, report, "{workers} workers: report diverged");
        assert_eq!(want_cps, cps, "{workers} workers: tuned checkpoints diverged");
        assert_eq!(want_store, store, "{workers} workers: store bytes diverged");
        assert_eq!(want_snap, snap, "{workers} workers: snapshot bytes diverged");
    }
}

#[test]
fn fine_tuning_drains_replay_and_respects_min_delta() {
    let f = fixture();
    let fleet = FleetGenerator::new(61, fleet_size());
    let mut rt = online_runtime(&f, det_config(1), fleet.num_homes());
    for id in 0..u64::from(fleet.num_homes()) {
        rt.attach_checkpoint(id, optimizer_checkpoint(&f)).expect("attach");
    }
    let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
    rt.serve(ingest.envelopes).expect("serve");

    // An impossible delta floor: nothing is tuned, nothing is drained.
    let pool = WorkerPool::with_workers(2);
    let high = FineTuneConfig { replay_steps: 1, min_delta: usize::MAX };
    let report = rt.fine_tune(&pool, &high).expect("fine_tune");
    assert_eq!(report.homes_tuned, 0);
    assert_eq!(report.candidate, None);
    assert_eq!(report.homes_skipped, fleet.num_homes() as usize);

    // A reachable floor drains every tuned slot's delta.
    let cfg = FineTuneConfig { replay_steps: 1, min_delta: 1 };
    let report = rt.fine_tune(&pool, &cfg).expect("fine_tune");
    assert!(report.homes_tuned > 0);
    for id in 0..u64::from(fleet.num_homes()) {
        assert!(
            rt.slot(id).unwrap().online().expect("learner").replay.is_empty(),
            "home {id}: the fine-tuner must drain the replay delta"
        );
    }
    // The staged candidate shadows subsequent serving.
    assert_eq!(rt.policy_store().unwrap().candidate(), report.candidate);
}

#[test]
fn fine_tuning_without_online_learning_is_refused() {
    let f = fixture();
    let mut rt = build_runtime(&f, det_config(1), 1);
    let pool = WorkerPool::with_workers(1);
    assert!(rt.fine_tune(&pool, &FineTuneConfig::default()).is_err());
    assert!(rt.try_promote().is_err());
}

// ---------------------------------------------------------------------------
// Rollback: snapshot restore undoes learning and swaps byte-for-byte
// ---------------------------------------------------------------------------

#[test]
fn rollback_restores_pre_swap_state_byte_for_byte() {
    let f = fixture();
    let fleet = FleetGenerator::new(71, fleet_size());
    let mut rt = online_runtime(&f, det_config(2), fleet.num_homes());
    let version = rt.policy_store_mut().expect("store").register(alt_policy(&f).checkpoint());

    // Serve a day, snapshot, then swap and serve another day on top.
    let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
    rt.serve(ingest.envelopes).expect("serve");
    let checkpoint = rt.snapshot();
    let checkpoint_json = checkpoint.to_json();

    let ingest = rt.ingest_fleet_day(&fleet, 2, None, Some(query_every())).expect("ingest");
    let at_seq = ingest.envelopes[0].seq;
    rt.serve_online(ingest.envelopes, &[SwapPoint { at_seq, version }]).expect("serve_online");
    assert_eq!(rt.policy_store().unwrap().active(), version);
    assert_ne!(rt.snapshot().to_json(), checkpoint_json, "day 2 must move state");

    // Roll back: every byte of runtime state returns to the checkpoint.
    rt.restore(&checkpoint).expect("restore");
    assert_eq!(rt.snapshot().to_json(), checkpoint_json, "rollback must be byte-identical");
    assert_eq!(rt.policy_store().unwrap().active(), 0, "the swap is undone");
    assert_eq!(
        rt.policy().checkpoint().to_json(),
        f.policy.checkpoint().to_json(),
        "the pre-swap weights are back"
    );

    // And the rolled-back runtime serves day 2 exactly like a fresh replica
    // restored from the same snapshot.
    let mut replica = online_runtime(&f, det_config(2), fleet.num_homes());
    replica.restore(&checkpoint).expect("restore replica");
    let ingest_a = rt.ingest_fleet_day(&fleet, 2, None, Some(query_every())).expect("ingest");
    let ingest_b = replica.ingest_fleet_day(&fleet, 2, None, Some(query_every())).expect("ingest");
    assert_eq!(ingest_a.envelopes, ingest_b.envelopes);
    let a = rt.serve(ingest_a.envelopes).expect("serve").outcomes;
    let b = replica.serve(ingest_b.envelopes).expect("serve").outcomes;
    assert_outcomes_bit_identical(&a, &b, "rollback replay");
}
