//! Serving-runtime invariants: shard-count invariance, explicit
//! backpressure accounting, and byte-identical shard snapshot/restore.

use jarvis::{Jarvis, JarvisConfig, JarvisError, OptimizerConfig};
use jarvis_policy::SafeTransitionTable;
use jarvis_rl::{DqnAgent, DqnConfig};
use jarvis_runtime::{
    Envelope, Outcome, OverloadPolicy, RuntimeConfig, RuntimeSnapshot, ServingRuntime,
    ShardSnapshot,
};
use jarvis_sim::{FaultPlan, FleetGenerator, HomeDataset};
use jarvis_smart_home::SmartHome;
use jarvis_stdkit::json::{FromJson, ToJson};

/// A home catalogue, a table learned from a short learning phase, and a
/// policy agent sized for that home.
struct Fixture {
    home: SmartHome,
    table: SafeTransitionTable,
    policy: DqnAgent,
}

fn fixture() -> Fixture {
    let home = SmartHome::evaluation_home();
    let config = JarvisConfig { optimizer: OptimizerConfig::fast(), ..JarvisConfig::default() };
    let mut jarvis = Jarvis::new(home.clone(), config);
    jarvis.learning_phase(&HomeDataset::home_a(3), 0..2).expect("learning phase");
    jarvis.learn_policies().expect("SPL");
    let table = jarvis.outcome().expect("outcome").table.clone();

    let state_dim = home.fsm().state_sizes().iter().sum::<usize>() + 5;
    let num_actions = home.agent_mini_actions().len() + 1;
    let mut cfg = DqnConfig::new(state_dim, num_actions);
    cfg.hidden = vec![16];
    cfg.seed = 7;
    let policy = DqnAgent::new(cfg).expect("policy net");
    Fixture { home, table, policy }
}

fn build_runtime(f: &Fixture, config: RuntimeConfig, homes: u32) -> ServingRuntime {
    let mut rt = ServingRuntime::new(config, f.policy.clone()).expect("runtime");
    for id in 0..homes {
        rt.register_home(u64::from(id), f.home.clone(), f.table.clone()).expect("register");
    }
    rt
}

/// Bitwise comparison of outcome lists: `PartialEq` plus the Debug
/// rendering, which prints `f64`s with shortest-round-trip precision and so
/// distinguishes any bit difference (signed zero included).
fn assert_outcomes_bit_identical(a: &[Outcome], b: &[Outcome], what: &str) {
    assert_eq!(a, b, "{what}: outcome lists differ");
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what}: f64 bits differ");
}

#[test]
fn deterministic_mode_is_bit_identical_across_shard_counts() {
    let f = fixture();
    let fleet = FleetGenerator::new(17, 8);
    let mut baseline: Option<(Vec<Envelope>, Vec<Outcome>)> = None;
    for shards in [1usize, 2, 8] {
        let mut config = RuntimeConfig::new(shards);
        config.deterministic = true;
        config.batch_window = 8;
        let mut rt = build_runtime(&f, config, fleet.num_homes());
        let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(60)).expect("ingest");
        let report = rt.serve(ingest.envelopes.clone()).expect("serve");
        assert_eq!(report.outcomes.len(), ingest.envelopes.len());
        assert!(report.rejected.is_empty(), "deterministic mode never sheds");
        match &baseline {
            None => baseline = Some((ingest.envelopes, report.outcomes)),
            Some((env0, out0)) => {
                assert_eq!(env0, &ingest.envelopes, "ingest must not depend on shard count");
                assert_outcomes_bit_identical(out0, &report.outcomes, &format!("{shards} shards"));
            }
        }
    }
}

#[test]
fn threaded_block_serving_matches_deterministic_reference() {
    let f = fixture();
    let fleet = FleetGenerator::new(23, 4);

    let mut det_cfg = RuntimeConfig::new(4);
    det_cfg.deterministic = true;
    let mut det = build_runtime(&f, det_cfg, fleet.num_homes());
    let ingest = det.ingest_fleet_day(&fleet, 2, None, Some(45)).expect("ingest");
    let want = det.serve(ingest.envelopes.clone()).expect("deterministic serve");

    let mut thr_cfg = RuntimeConfig::new(4);
    thr_cfg.queue_capacity = 3; // force real backpressure blocking
    let mut thr = build_runtime(&f, thr_cfg, fleet.num_homes());
    let ingest2 = thr.ingest_fleet_day(&fleet, 2, None, Some(45)).expect("ingest");
    assert_eq!(ingest.envelopes, ingest2.envelopes);
    let got = thr.serve(ingest2.envelopes).expect("threaded serve");

    assert!(got.rejected.is_empty(), "Block policy never sheds");
    assert_outcomes_bit_identical(&want.outcomes, &got.outcomes, "threaded vs deterministic");
}

#[test]
fn batch_window_does_not_change_decisions() {
    let f = fixture();
    let fleet = FleetGenerator::new(31, 3);
    let mut baseline: Option<Vec<Outcome>> = None;
    for batch_window in [1usize, 64] {
        let mut config = RuntimeConfig::new(1);
        config.deterministic = true;
        config.batch_window = batch_window;
        let mut rt = build_runtime(&f, config, fleet.num_homes());
        let ingest = rt.ingest_fleet_day(&fleet, 3, None, Some(20)).expect("ingest");
        let report = rt.serve(ingest.envelopes).expect("serve");
        match &baseline {
            None => baseline = Some(report.outcomes),
            Some(want) => assert_outcomes_bit_identical(
                want,
                &report.outcomes,
                "batch window must only affect throughput",
            ),
        }
    }
}

#[test]
fn shedding_reports_every_rejected_event_exactly_once() {
    let f = fixture();
    let mut config = RuntimeConfig::new(1);
    config.queue_capacity = 2;
    config.overload = OverloadPolicy::Shed;
    config.worker_throttle_ns = 2_000_000; // 2ms/event: the router outruns the worker
    let mut rt = build_runtime(&f, config, 1);
    let ingest = rt
        .ingest_day(0, &HomeDataset::home_a(3), 1, None, Some(30))
        .expect("ingest");
    let submitted: Vec<u64> = ingest.envelopes.iter().map(|e| e.seq).collect();
    assert!(submitted.len() > 20, "need a real burst, got {}", submitted.len());
    let report = rt.serve(ingest.envelopes).expect("serve");

    assert!(!report.rejected.is_empty(), "a capacity-2 queue under a 2ms worker must shed");
    assert_eq!(
        report.total_accounted(),
        submitted.len(),
        "every event is either answered or explicitly rejected"
    );
    let mut accounted: Vec<u64> = report
        .outcomes
        .iter()
        .map(Outcome::seq)
        .chain(report.rejected.iter().map(|r| r.seq))
        .collect();
    accounted.sort_unstable();
    assert_eq!(accounted, submitted, "no event lost, none duplicated");
}

#[test]
fn overload_error_policy_fails_loudly() {
    let f = fixture();
    let mut config = RuntimeConfig::new(1);
    config.queue_capacity = 1;
    config.overload = OverloadPolicy::Error;
    config.worker_throttle_ns = 5_000_000;
    let mut rt = build_runtime(&f, config, 1);
    let ingest = rt
        .ingest_day(0, &HomeDataset::home_a(3), 1, None, Some(30))
        .expect("ingest");
    match rt.serve(ingest.envelopes) {
        Err(JarvisError::Overload { shard, capacity }) => {
            assert_eq!(shard, 0);
            assert_eq!(capacity, 1);
        }
        other => panic!("expected Overload, got {other:?}"),
    }
    // The runtime stays usable after the abort.
    assert_eq!(rt.num_homes(), 1);
}

#[test]
fn shard_snapshot_restore_resumes_byte_identically() {
    let f = fixture();
    let fleet = FleetGenerator::new(41, 4);
    let mut config = RuntimeConfig::new(2);
    config.deterministic = true;

    // Day 0 moves the homes into a mid-stream state.
    let mut original = build_runtime(&f, config.clone(), fleet.num_homes());
    original
        .attach_checkpoint(1, "{\"fake\":\"optimizer checkpoint\"}".to_owned())
        .expect("attach");
    let day0 = original.ingest_fleet_day(&fleet, 0, None, Some(90)).expect("ingest day 0");
    original.serve(day0.envelopes).expect("serve day 0");

    // Whole-runtime snapshot JSON round trips losslessly.
    let snap = original.snapshot();
    let snap_json = snap.to_json();
    assert_eq!(RuntimeSnapshot::from_json(&snap_json).expect("parse"), snap);

    // Per-shard snapshots partition the fleet and survive JSON round trips.
    let mut shard_homes: Vec<u64> = Vec::new();
    let mut shard_snaps: Vec<ShardSnapshot> = Vec::new();
    for shard in 0..2 {
        let ss = original.shard_snapshot(shard).expect("shard snapshot");
        assert_eq!(ss.shard, shard);
        let parsed = ShardSnapshot::from_json(&ss.to_json()).expect("parse shard snapshot");
        assert_eq!(parsed, ss);
        shard_homes.extend(ss.homes.iter().map(|h| h.id));
        shard_snaps.push(parsed);
    }
    shard_homes.sort_unstable();
    assert_eq!(shard_homes, vec![0, 1, 2, 3], "shards partition the fleet");

    // Restoring every shard onto a fresh runtime reproduces the dynamic
    // state byte-for-byte (including the attached optimizer checkpoint).
    let mut restored = build_runtime(&f, config.clone(), fleet.num_homes());
    for ss in &shard_snaps {
        restored.restore_shard(ss).expect("restore shard");
    }
    assert_eq!(
        restored.snapshot().homes.to_json(),
        snap.homes.to_json(),
        "restored shard state must be byte-identical"
    );
    assert_eq!(
        restored.slot(1).and_then(|s| s.checkpoint_json()),
        Some("{\"fake\":\"optimizer checkpoint\"}")
    );

    // Resuming from the full snapshot serves day 1 byte-identically to the
    // runtime that never stopped.
    let mut resumed = build_runtime(&f, config, fleet.num_homes());
    resumed.restore(&snap).expect("restore runtime");
    let day1_a = original.ingest_fleet_day(&fleet, 1, None, Some(90)).expect("ingest");
    let day1_b = resumed.ingest_fleet_day(&fleet, 1, None, Some(90)).expect("ingest");
    assert_eq!(day1_a.envelopes, day1_b.envelopes, "sequencing must resume in step");
    let out_a = original.serve(day1_a.envelopes).expect("serve");
    let out_b = resumed.serve(day1_b.envelopes).expect("serve");
    assert_outcomes_bit_identical(&out_a.outcomes, &out_b.outcomes, "resume after restore");
}

#[test]
fn fault_injection_at_ingest_degrades_gracefully() {
    let f = fixture();
    let mut config = RuntimeConfig::new(1);
    config.deterministic = true;
    let data = HomeDataset::home_a(3);

    let mut clean_rt = build_runtime(&f, config.clone(), 1);
    let clean = clean_rt.ingest_day(0, &data, 2, None, Some(60)).expect("clean ingest");

    let injector = Jarvis::fault_injector(FaultPlan::uniform_drop(9, 0.5)).expect("plan");
    let mut faulty_rt = build_runtime(&f, config, 1);
    let faulty = faulty_rt
        .ingest_day(0, &data, 2, Some(&injector), Some(60))
        .expect("faulty ingest");

    let summary = faulty.faults.expect("fault summary recorded");
    assert!(summary.dropped > 0, "a 50% drop plan must drop something");
    assert!(
        faulty.envelopes.len() < clean.envelopes.len(),
        "dropped events shrink the stream"
    );
    assert_eq!(faulty.queries, clean.queries, "queries are injected after faulting");
    // The degraded stream still serves end to end.
    let report = faulty_rt.serve(faulty.envelopes).expect("serve degraded stream");
    assert!(report.decisions() > 0);
}

#[test]
fn configuration_and_registration_are_validated() {
    let f = fixture();
    assert!(matches!(
        ServingRuntime::new(RuntimeConfig::new(0), f.policy.clone()),
        Err(JarvisError::Config(_))
    ));
    let mut bad_queue = RuntimeConfig::new(1);
    bad_queue.queue_capacity = 0;
    assert!(ServingRuntime::new(bad_queue, f.policy.clone()).is_err());

    let mut rt = build_runtime(&f, RuntimeConfig::new(2), 1);
    assert!(matches!(
        rt.register_home(0, f.home.clone(), f.table.clone()),
        Err(JarvisError::Config(_))
    ));
    // A policy with the wrong head width is rejected at registration.
    let tiny = DqnAgent::new(DqnConfig::new(3, 2)).expect("tiny net");
    let mut mismatched = ServingRuntime::new(RuntimeConfig::new(1), tiny).expect("runtime");
    assert!(matches!(
        mismatched.register_home(0, f.home.clone(), f.table.clone()),
        Err(JarvisError::Config(_))
    ));
    // Events for unregistered homes fail loudly instead of vanishing.
    let mut det = RuntimeConfig::new(2);
    det.deterministic = true;
    let mut rt2 = build_runtime(&f, det, 1);
    let ingest = rt2.ingest_day(0, &HomeDataset::home_a(3), 0, None, None).expect("ingest");
    let mut stray = ingest.envelopes;
    if let Some(env) = stray.first_mut() {
        env.home = 99;
    }
    assert!(matches!(rt2.serve(stray), Err(JarvisError::Config(_))));
}
