//! Work-stealing invariants: whatever the shard count, steal schedule,
//! batching mode, or placement, the served outcome stream is bitwise
//! identical to the single-shard oracle — stealing moves work, never
//! answers.

use jarvis::{Jarvis, JarvisConfig, OptimizerConfig};
use jarvis_policy::SafeTransitionTable;
use jarvis_rl::{DqnAgent, DqnConfig};
use jarvis_runtime::{
    Envelope, EventKind, Outcome, Placement, RuntimeConfig, ServingRuntime,
};
use jarvis_sim::{FleetGenerator, HomeDataset};
use jarvis_smart_home::SmartHome;

/// A home catalogue, a learned table, and a policy agent sized for it.
struct Fixture {
    home: SmartHome,
    table: SafeTransitionTable,
    policy: DqnAgent,
}

fn fixture() -> Fixture {
    let home = SmartHome::evaluation_home();
    let config = JarvisConfig { optimizer: OptimizerConfig::fast(), ..JarvisConfig::default() };
    let mut jarvis = Jarvis::new(home.clone(), config);
    jarvis.learning_phase(&HomeDataset::home_a(3), 0..2).expect("learning phase");
    jarvis.learn_policies().expect("SPL");
    let table = jarvis.outcome().expect("outcome").table.clone();

    let state_dim = home.fsm().state_sizes().iter().sum::<usize>() + 5;
    let num_actions = home.agent_mini_actions().len() + 1;
    let mut cfg = DqnConfig::new(state_dim, num_actions);
    cfg.hidden = vec![16];
    cfg.seed = 11;
    let policy = DqnAgent::new(cfg).expect("policy net");
    Fixture { home, table, policy }
}

fn build_runtime(f: &Fixture, config: RuntimeConfig, homes: u32) -> ServingRuntime {
    let mut rt = ServingRuntime::new(config, f.policy.clone()).expect("runtime");
    for id in 0..homes {
        rt.register_home(u64::from(id), f.home.clone(), f.table.clone()).expect("register");
    }
    rt
}

/// Bitwise outcome comparison: `PartialEq` plus the Debug rendering, which
/// prints `f64`s with shortest-round-trip precision and so distinguishes
/// any bit difference.
fn assert_outcomes_bit_identical(a: &[Outcome], b: &[Outcome], what: &str) {
    assert_eq!(a, b, "{what}: outcome lists differ");
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what}: f64 bits differ");
}

/// The single-shard deterministic serve of a fleet day — the oracle every
/// other configuration must match byte for byte.
fn oracle(f: &Fixture, fleet: &FleetGenerator, day: u32) -> (Vec<Envelope>, Vec<Outcome>) {
    let mut config = RuntimeConfig::new(1);
    config.deterministic = true;
    let mut rt = build_runtime(f, config, fleet.num_homes());
    let ingest = rt.ingest_fleet_day(fleet, day, None, Some(30)).expect("ingest");
    let report = rt.serve(ingest.envelopes.clone()).expect("oracle serve");
    (ingest.envelopes, report.outcomes)
}

#[test]
fn outputs_are_invariant_across_shard_counts_det_and_threaded() {
    let f = fixture();
    let fleet = FleetGenerator::new(61, 8);
    let (envelopes, want) = oracle(&f, &fleet, 1);
    for shards in [2usize, 4, 8] {
        for deterministic in [true, false] {
            let mut config = RuntimeConfig::new(shards);
            config.deterministic = deterministic;
            config.batch_window = 8;
            let mut rt = build_runtime(&f, config, fleet.num_homes());
            let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(30)).expect("ingest");
            assert_eq!(envelopes, ingest.envelopes, "ingest is shard-count independent");
            let report = rt.serve(ingest.envelopes).expect("serve");
            assert!(report.rejected.is_empty(), "Block serving never sheds");
            assert_outcomes_bit_identical(
                &want,
                &report.outcomes,
                &format!("{shards} shards, deterministic={deterministic}"),
            );
        }
    }
}

#[test]
fn steal_schedule_permutations_do_not_change_outputs() {
    let f = fixture();
    let fleet = FleetGenerator::new(67, 8);
    let (_, want) = oracle(&f, &fleet, 2);
    // Strides 1, 3 permute the victim order; 2 and 4 don't even cover the
    // ring (non-coprime with 8) and exercise the fill-in path.
    for stride in [1usize, 2, 3, 4, 7] {
        let mut config = RuntimeConfig::new(8);
        config.steal_stride = stride;
        config.batch_window = 4;
        let mut rt = build_runtime(&f, config, fleet.num_homes());
        let ingest = rt.ingest_fleet_day(&fleet, 2, None, Some(30)).expect("ingest");
        let report = rt.serve(ingest.envelopes).expect("serve");
        assert_outcomes_bit_identical(&want, &report.outcomes, &format!("stride {stride}"));
    }
}

#[test]
fn adaptive_and_fixed_batch_windows_agree() {
    let f = fixture();
    let fleet = FleetGenerator::new(71, 4);
    let (_, want) = oracle(&f, &fleet, 0);
    for adaptive in [false, true] {
        for batch_window in [1usize, 16, 256] {
            let mut config = RuntimeConfig::new(4);
            config.adaptive_batching = adaptive;
            config.batch_window = batch_window;
            let mut rt = build_runtime(&f, config, fleet.num_homes());
            let ingest = rt.ingest_fleet_day(&fleet, 0, None, Some(30)).expect("ingest");
            let report = rt.serve(ingest.envelopes).expect("serve");
            assert_outcomes_bit_identical(
                &want,
                &report.outcomes,
                &format!("adaptive={adaptive} window={batch_window}"),
            );
        }
    }
}

/// One hot home receives the overwhelming majority of the stream while
/// seven idle homes barely tick: the threaded work-stealing run must still
/// answer byte-identically to the single-shard oracle, and load-aware
/// placement must isolate the hot home on its own shard.
#[test]
fn skewed_hot_home_with_stealing_matches_single_shard_oracle() {
    let f = fixture();
    let fleet = FleetGenerator::new(73, 8);

    // Synthesize the skewed stream directly: hand-built query envelopes
    // keep the skew exact and the sequencing deterministic.
    let make_stream = || -> Vec<Envelope> {
        let mut envs = Vec::new();
        let mut seq = 0u64;
        for minute in 0..240u32 {
            // Home 0 is queried every minute; the others once an hour.
            let homes: Vec<u64> = if minute % 60 == 0 { (0..8).collect() } else { vec![0] };
            for home in homes {
                envs.push(Envelope {
                    seq,
                    home,
                    minute,
                    kind: EventKind::Query {
                        indoor_c: 21.0 + f64::from(minute % 7),
                        outdoor_c: 12.5,
                        price_per_kwh: 0.21,
                    },
                });
                seq += 1;
            }
        }
        envs
    };

    let mut oracle_cfg = RuntimeConfig::new(1);
    oracle_cfg.deterministic = true;
    let mut oracle_rt = build_runtime(&f, oracle_cfg, fleet.num_homes());
    let want = oracle_rt.serve(make_stream()).expect("oracle serve").outcomes;

    let mut config = RuntimeConfig::new(4);
    config.batch_window = 8;
    let mut rt = build_runtime(&f, config, fleet.num_homes());
    let report = rt.serve(make_stream()).expect("threaded skewed serve");
    assert_outcomes_bit_identical(&want, &report.outcomes, "skewed hot home");

    // Load-aware placement puts the hot home alone on its shard: its event
    // count dwarfs the rest, so LPT assigns it first and nothing else joins
    // until every other shard carries more weight.
    let hot_shard = rt.shard_of(0);
    for id in 1..8u64 {
        assert_ne!(
            rt.shard_of(id),
            hot_shard,
            "idle home {id} must not share the hot home's shard"
        );
    }
}

#[test]
fn modulo_placement_remains_available_and_equivalent() {
    let f = fixture();
    let fleet = FleetGenerator::new(79, 4);
    let (_, want) = oracle(&f, &fleet, 1);
    let mut config = RuntimeConfig::new(2);
    config.placement = Placement::Modulo;
    let mut rt = build_runtime(&f, config, fleet.num_homes());
    let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(30)).expect("ingest");
    let report = rt.serve(ingest.envelopes).expect("serve");
    assert_outcomes_bit_identical(&want, &report.outcomes, "modulo placement");
    for id in 0..4u64 {
        assert_eq!(rt.shard_of(id), (id % 2) as usize, "modulo pins id % shards");
    }
}

#[test]
fn steal_stride_zero_is_rejected() {
    let f = fixture();
    let mut config = RuntimeConfig::new(2);
    config.steal_stride = 0;
    assert!(ServingRuntime::new(config, f.policy.clone()).is_err());
}

/// Deploy the quantized policy on a runtime (gate at `min_agreement`) and
/// return the measured agreement.
fn deploy_quantized(rt: &mut ServingRuntime, min_agreement: f64) -> f64 {
    let calib = rt.calibration_observations();
    let rows: Vec<&[f64]> = calib.iter().map(Vec::as_slice).collect();
    rt.quantize_policy(&rows, min_agreement).expect("quantize + gate")
}

#[test]
fn quantized_serving_is_invariant_across_shards_and_modes() {
    let f = fixture();
    let fleet = FleetGenerator::new(83, 6);

    // Quantized single-shard deterministic serve is the quantized oracle.
    let mut config = RuntimeConfig::new(1);
    config.deterministic = true;
    let mut rt = build_runtime(&f, config, fleet.num_homes());
    let agreement = deploy_quantized(&mut rt, 0.0);
    assert!((0.0..=1.0).contains(&agreement));
    let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(30)).expect("ingest");
    let envelopes = ingest.envelopes;
    let want = rt.serve(envelopes.clone()).expect("quantized oracle").outcomes;
    assert!(want.iter().any(|o| matches!(o, Outcome::Decision { .. })));

    // Every shard count × execution mode reproduces it bit for bit: the
    // int8 forward is i32-associative, so batch grouping, stealing, and
    // pool scheduling cannot move a single bit.
    for shards in [2usize, 4] {
        for deterministic in [true, false] {
            let mut config = RuntimeConfig::new(shards);
            config.deterministic = deterministic;
            config.batch_window = 8;
            let mut rt = build_runtime(&f, config, fleet.num_homes());
            deploy_quantized(&mut rt, 0.0);
            let mut ingest_rt = rt.ingest_fleet_day(&fleet, 1, None, Some(30)).expect("ingest");
            assert_eq!(envelopes, ingest_rt.envelopes);
            let report = rt.serve(std::mem::take(&mut ingest_rt.envelopes)).expect("serve");
            assert_outcomes_bit_identical(
                &want,
                &report.outcomes,
                &format!("quantized {shards} shards det={deterministic}"),
            );
        }
    }
}

#[test]
fn quantized_gate_rejects_and_keeps_f64_serving() {
    let f = fixture();
    let fleet = FleetGenerator::new(83, 2);
    let mut config = RuntimeConfig::new(1);
    config.deterministic = true;
    let mut rt = build_runtime(&f, config, fleet.num_homes());

    // An impossible gate (> 1.0) must fail and leave the f64 path deployed.
    let calib = rt.calibration_observations();
    let rows: Vec<&[f64]> = calib.iter().map(Vec::as_slice).collect();
    assert!(rt.quantize_policy(&rows, 1.5).is_err(), "gate above 1.0 cannot pass");
    assert!(rt.quantized_policy().is_none(), "failed gate must not deploy");
    assert!(rt.quantize_policy(&[], 0.0).is_err(), "empty calibration corpus");

    // f64 outcomes after the failed gate match a never-quantized runtime.
    let (_, want) = oracle(&f, &fleet, 1);
    let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(30)).expect("ingest");
    let report = rt.serve(ingest.envelopes).expect("serve");
    assert_outcomes_bit_identical(&want, &report.outcomes, "f64 after failed gate");

    // A passing gate deploys; clearing undeploys and f64 serving returns.
    let agreement = deploy_quantized(&mut rt, 0.0);
    assert!(rt.quantized_policy().is_some());
    assert!(
        rt.quantized_policy().map(jarvis_rl::QuantizedPolicy::agreement)
            == Some(agreement)
    );
    rt.clear_quantized_policy();
    assert!(rt.quantized_policy().is_none());
}
