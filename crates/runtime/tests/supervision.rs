//! Self-healing invariants: supervised serving equals plain serving when
//! nothing fails, crash recovery is bitwise invisible for transient chaos,
//! the deadline watchdog catches stalls, poison pills quarantine into the
//! safe-table fallback, exhausted budgets degrade without dropping
//! enforcement, and all recovery accounting is deterministic.
//!
//! Sizes scale down under Miri (`cfg(miri)`) so the battery stays inside
//! the interpreter's time budget; the properties checked are identical.

use jarvis::{Jarvis, JarvisConfig, OptimizerConfig};
use jarvis_policy::SafeTransitionTable;
use jarvis_rl::{DqnAgent, DqnConfig};
use jarvis_runtime::{
    DecisionSource, FailureCause, Outcome, RuntimeConfig, ServingRuntime, SupervisorConfig,
};
use jarvis_sim::{
    ChaosInjector, ChaosKind, ChaosPlan, ChaosRule, ChaosSchedule, FleetGenerator, HomeDataset,
};
use jarvis_smart_home::SmartHome;
use jarvis_stdkit::json::ToJson;

/// A home catalogue, a table learned from a short learning phase, and a
/// policy agent sized for that home.
struct Fixture {
    home: SmartHome,
    table: SafeTransitionTable,
    policy: DqnAgent,
}

fn fixture() -> Fixture {
    let home = SmartHome::evaluation_home();
    let config = JarvisConfig { optimizer: OptimizerConfig::fast(), ..JarvisConfig::default() };
    let mut jarvis = Jarvis::new(home.clone(), config);
    let learn_days = if cfg!(miri) { 0..1 } else { 0..2 };
    jarvis.learning_phase(&HomeDataset::home_a(3), learn_days).expect("learning phase");
    jarvis.learn_policies().expect("SPL");
    let table = jarvis.outcome().expect("outcome").table.clone();

    let state_dim = home.fsm().state_sizes().iter().sum::<usize>() + 5;
    let num_actions = home.agent_mini_actions().len() + 1;
    let mut cfg = DqnConfig::new(state_dim, num_actions);
    cfg.hidden = vec![16];
    cfg.seed = 7;
    let policy = DqnAgent::new(cfg).expect("policy net");
    Fixture { home, table, policy }
}

fn build_runtime(f: &Fixture, config: RuntimeConfig, homes: u32) -> ServingRuntime {
    let mut rt = ServingRuntime::new(config, f.policy.clone()).expect("runtime");
    for id in 0..homes {
        rt.register_home(u64::from(id), f.home.clone(), f.table.clone()).expect("register");
    }
    rt
}

fn det_config(shards: usize) -> RuntimeConfig {
    let mut config = RuntimeConfig::new(shards);
    config.deterministic = true;
    config.batch_window = 8;
    config
}

fn fleet_size() -> u32 {
    if cfg!(miri) {
        2
    } else {
        6
    }
}

fn query_every() -> u32 {
    if cfg!(miri) {
        240
    } else {
        45
    }
}

/// Bitwise comparison of outcome lists: `PartialEq` plus the Debug
/// rendering, which prints `f64`s with shortest-round-trip precision and so
/// distinguishes any bit difference (signed zero included).
fn assert_outcomes_bit_identical(a: &[Outcome], b: &[Outcome], what: &str) {
    assert_eq!(a, b, "{what}: outcome lists differ");
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what}: f64 bits differ");
}

/// The uninterrupted oracle: plain deterministic serve plus final snapshot
/// bytes, from a fresh runtime.
fn oracle(f: &Fixture, shards: usize, fleet: &FleetGenerator) -> (Vec<Outcome>, String) {
    let mut rt = build_runtime(f, det_config(shards), fleet.num_homes());
    let ingest = rt.ingest_fleet_day(fleet, 1, None, Some(query_every())).expect("ingest");
    let report = rt.serve(ingest.envelopes).expect("serve");
    (report.outcomes, rt.snapshot().to_json())
}

fn supervised(
    f: &Fixture,
    shards: usize,
    fleet: &FleetGenerator,
    sup: &SupervisorConfig,
    chaos: Option<&ChaosSchedule>,
    deterministic: bool,
) -> (jarvis_runtime::SupervisedReport, String) {
    let mut config = det_config(shards);
    config.deterministic = deterministic;
    let mut rt = build_runtime(f, config, fleet.num_homes());
    let ingest = rt.ingest_fleet_day(fleet, 1, None, Some(query_every())).expect("ingest");
    let report = rt.serve_supervised(ingest.envelopes, sup, chaos).expect("serve_supervised");
    let snap = rt.snapshot().to_json();
    (report, snap)
}

#[test]
fn supervised_without_chaos_equals_plain_serve() {
    let f = fixture();
    let fleet = FleetGenerator::new(17, fleet_size());
    let sup = SupervisorConfig::default();
    for shards in [1usize, 3] {
        let (want, want_snap) = oracle(&f, shards, &fleet);
        let (got, got_snap) = supervised(&f, shards, &fleet, &sup, None, true);
        assert_outcomes_bit_identical(&want, &got.report.outcomes, "no-chaos supervised");
        assert_eq!(want_snap, got_snap, "snapshot bytes must match");
        assert!(got.recovery.restarts.is_empty());
        assert!(got.recovery.quarantined.is_empty());
        assert!(got.recovery.degraded_shards.is_empty());
        assert_eq!(got.recovery.fallback_decisions, 0);
        assert!(got.recovery.checkpoints > 0, "checkpoints should be taken");
    }
}

#[test]
fn transient_panic_recovery_is_bitwise_invisible() {
    let f = fixture();
    let fleet = FleetGenerator::new(17, fleet_size());
    // attempts=2 < quarantine_after=3: every armed envelope fails twice and
    // then succeeds — pure transient faults.
    let plan = ChaosPlan::periodic_panic(5, if cfg!(miri) { 4 } else { 13 }, 2);
    let mut sup = SupervisorConfig::default();
    sup.restart_budget = u32::MAX;
    sup.checkpoint_every = 16;
    for shards in [1usize, 2] {
        let (want, want_snap) = oracle(&f, shards, &fleet);
        let chaos = build_schedule(&f, shards, &fleet, &plan);
        assert!(!chaos.is_empty(), "plan must arm something");
        let (got, got_snap) = supervised(&f, shards, &fleet, &sup, Some(&chaos), true);
        assert_outcomes_bit_identical(&want, &got.report.outcomes, "recovered run");
        assert_eq!(want_snap, got_snap, "snapshot bytes must survive recovery");
        assert!(!got.recovery.restarts.is_empty(), "panics must have been recovered");
        assert!(got.recovery.restarts.iter().all(|r| r.cause == FailureCause::Panic));
        assert!(got.recovery.quarantined.is_empty());
        assert_eq!(got.recovery.fallback_decisions, 0);
    }
}

/// Evaluate a plan against the exact seqs a fresh ingest would produce.
fn build_schedule(
    f: &Fixture,
    shards: usize,
    fleet: &FleetGenerator,
    plan: &ChaosPlan,
) -> ChaosSchedule {
    let mut rt = build_runtime(f, det_config(shards), fleet.num_homes());
    let ingest = rt.ingest_fleet_day(fleet, 1, None, Some(query_every())).expect("ingest");
    ChaosInjector::new(plan.clone())
        .expect("plan")
        .schedule(ingest.envelopes.iter().map(|e| e.seq).collect::<Vec<_>>())
}

#[test]
fn threaded_supervised_matches_deterministic_supervised() {
    let f = fixture();
    let fleet = FleetGenerator::new(23, fleet_size());
    let plan = ChaosPlan::periodic_panic(9, 11, 1);
    let mut sup = SupervisorConfig::default();
    sup.checkpoint_every = 16;
    let chaos = build_schedule(&f, 2, &fleet, &plan);
    let (det, det_snap) = supervised(&f, 2, &fleet, &sup, Some(&chaos), true);
    let (thr, thr_snap) = supervised(&f, 2, &fleet, &sup, Some(&chaos), false);
    assert_outcomes_bit_identical(
        &det.report.outcomes,
        &thr.report.outcomes,
        "threaded vs deterministic supervised",
    );
    assert_eq!(det_snap, thr_snap);
    assert_eq!(det.recovery, thr.recovery, "recovery accounting must be mode-invariant");
}

#[test]
fn stall_overrun_trips_the_watchdog_and_recovers() {
    let f = fixture();
    let fleet = FleetGenerator::new(29, fleet_size());
    let mut sup = SupervisorConfig::default();
    sup.restart_budget = u32::MAX;
    sup.deadline_ticks = 100;
    sup.checkpoint_every = 16;
    // One stall above the deadline (killed + recovered), one below
    // (tolerated), armed on different strides.
    let plan = ChaosPlan {
        seed: 3,
        rules: vec![
            ChaosRule::every_kth(ChaosKind::Stall { ticks: 500, attempts: 1 }, 17),
            ChaosRule::every_kth(ChaosKind::Stall { ticks: 40, attempts: 1 }, 23),
        ],
    };
    let (want, want_snap) = oracle(&f, 2, &fleet);
    let chaos = build_schedule(&f, 2, &fleet, &plan);
    let (got, got_snap) = supervised(&f, 2, &fleet, &sup, Some(&chaos), true);
    assert_outcomes_bit_identical(&want, &got.report.outcomes, "stall-recovered run");
    assert_eq!(want_snap, got_snap);
    assert!(!got.recovery.restarts.is_empty());
    assert!(got
        .recovery
        .restarts
        .iter()
        .all(|r| r.cause == FailureCause::DeadlineOverrun));
    assert!(got.recovery.tolerated_stall_ticks > 0, "sub-deadline stalls are tolerated");
}

#[test]
fn poison_pill_is_quarantined_into_safe_table_fallback() {
    let f = fixture();
    let fleet = FleetGenerator::new(17, fleet_size());
    let mut rt = build_runtime(&f, det_config(1), fleet.num_homes());
    let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
    // Find a query envelope and poison exactly it with more attempts than
    // the quarantine threshold.
    let victim = ingest
        .envelopes
        .iter()
        .find(|e| matches!(e.kind, jarvis_runtime::EventKind::Query { .. }))
        .expect("a query")
        .clone();
    let plan = ChaosPlan {
        seed: 0,
        rules: vec![ChaosRule::at_seq(ChaosKind::Panic { attempts: 100 }, victim.seq)],
    };
    let chaos = ChaosInjector::new(plan)
        .expect("plan")
        .schedule(ingest.envelopes.iter().map(|e| e.seq).collect::<Vec<_>>());
    let mut sup = SupervisorConfig::default();
    sup.quarantine_after = 3;
    let report = rt.serve_supervised(ingest.envelopes.clone(), &sup, Some(&chaos)).expect("serve");

    assert_eq!(report.recovery.quarantined.len(), 1);
    let q = &report.recovery.quarantined[0];
    assert_eq!(q.seq, victim.seq);
    assert_eq!(q.home, victim.home);
    assert_eq!(q.failures, 3);
    // Two ordinary restarts preceded the quarantine.
    assert_eq!(report.recovery.restarts.len(), 2);
    assert_eq!(report.recovery.fallback_decisions, 1);
    // The poisoned query was answered by the fallback; every other outcome
    // matches the oracle bitwise.
    let (want, _) = oracle(&f, 1, &fleet);
    assert_eq!(want.len(), report.report.outcomes.len(), "nothing dropped");
    for (w, g) in want.iter().zip(&report.report.outcomes) {
        if w.seq() == victim.seq {
            match g {
                Outcome::Decision { action, flat, q_value, rank, source, .. } => {
                    assert_eq!(*source, DecisionSource::SafeTableFallback);
                    assert_eq!(*action, None);
                    assert_eq!(*flat, 0);
                    assert_eq!(*q_value, 0.0);
                    assert_eq!(*rank, 0);
                }
                other => panic!("expected a fallback decision, got {other:?}"),
            }
        } else {
            assert_eq!(w, g, "non-quarantined outcomes must match the oracle");
        }
    }
    // Accounting is itself deterministic: rerunning reproduces it bitwise.
    let mut rt2 = build_runtime(&f, det_config(1), fleet.num_homes());
    let ingest2 = rt2.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
    let report2 = rt2.serve_supervised(ingest2.envelopes, &sup, Some(&chaos)).expect("serve");
    assert_eq!(report.recovery, report2.recovery);
    assert_eq!(report.recovery.to_json(), report2.recovery.to_json());
}

#[test]
fn exhausted_restart_budget_degrades_without_dropping_enforcement() {
    let f = fixture();
    let fleet = FleetGenerator::new(17, fleet_size());
    // Panic on every query with huge attempt counts: the budget drains,
    // then the shard must serve the rest of the day degraded.
    let plan = ChaosPlan {
        seed: 1,
        rules: vec![ChaosRule::every_kth(ChaosKind::Panic { attempts: 1_000 }, 1)],
    };
    let mut sup = SupervisorConfig::default();
    sup.restart_budget = 2;
    sup.quarantine_after = u32::MAX; // force the budget path, not quarantine
    let mut rt = build_runtime(&f, det_config(1), fleet.num_homes());
    let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
    let queries = ingest
        .envelopes
        .iter()
        .filter(|e| matches!(e.kind, jarvis_runtime::EventKind::Query { .. }))
        .count();
    let chaos = ChaosInjector::new(plan)
        .expect("plan")
        .schedule(ingest.envelopes.iter().map(|e| e.seq).collect::<Vec<_>>());
    let total = ingest.envelopes.len();
    let report = rt.serve_supervised(ingest.envelopes, &sup, Some(&chaos)).expect("serve");

    assert_eq!(report.recovery.degraded_shards, vec![0]);
    assert_eq!(report.recovery.restarts.len(), 2, "budget bounds the restarts");
    assert_eq!(report.report.outcomes.len(), total, "every event answered");
    // Enforcement never lapsed: all verdicts/sensor outcomes match the
    // oracle (the monitor path is policy-free); every query after the
    // degradation point got the safe-table fallback.
    let (want, _) = oracle(&f, 1, &fleet);
    let fallbacks = report
        .report
        .outcomes
        .iter()
        .filter(|o| {
            matches!(o, Outcome::Decision { source: DecisionSource::SafeTableFallback, .. })
        })
        .count();
    assert_eq!(fallbacks as u64, report.recovery.fallback_decisions);
    assert_eq!(fallbacks, queries, "all queries served by fallback after degradation");
    for (w, g) in want.iter().zip(&report.report.outcomes) {
        if !matches!(w, Outcome::Decision { .. }) {
            assert_eq!(w, g, "monitor-path outcomes must be unaffected");
        }
    }
}

#[test]
fn degraded_from_start_serves_every_query_by_fallback() {
    let f = fixture();
    let fleet = FleetGenerator::new(17, fleet_size());
    let mut sup = SupervisorConfig::default();
    sup.policy_offline = true;
    let mut rt = build_runtime(&f, det_config(2), fleet.num_homes());
    let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
    let queries = ingest
        .envelopes
        .iter()
        .filter(|e| matches!(e.kind, jarvis_runtime::EventKind::Query { .. }))
        .count();
    let report = rt.serve_supervised(ingest.envelopes, &sup, None).expect("serve");
    assert_eq!(report.recovery.fallback_decisions as usize, queries);
    assert!(report
        .report
        .outcomes
        .iter()
        .filter_map(|o| match o {
            Outcome::Decision { source, .. } => Some(*source),
            _ => None,
        })
        .all(|s| s == DecisionSource::SafeTableFallback));
}

#[test]
fn recovery_accounting_round_trips_through_json() {
    let f = fixture();
    let fleet = FleetGenerator::new(17, fleet_size());
    let plan = ChaosPlan::periodic_panic(5, if cfg!(miri) { 4 } else { 13 }, 2);
    let mut sup = SupervisorConfig::default();
    sup.checkpoint_every = 16;
    let chaos = build_schedule(&f, 1, &fleet, &plan);
    let (got, _) = supervised(&f, 1, &fleet, &sup, Some(&chaos), true);
    let json = got.recovery.to_json();
    let back = jarvis_runtime::RecoveryReport::from_json_str(&json);
    assert_eq!(back, got.recovery);
}

/// Helper so the test reads naturally; `FromJson` is on the type already.
trait FromJsonStr: Sized {
    fn from_json_str(s: &str) -> Self;
}

impl FromJsonStr for jarvis_runtime::RecoveryReport {
    fn from_json_str(s: &str) -> Self {
        use jarvis_stdkit::json::FromJson;
        Self::from_json(s).expect("recovery report json")
    }
}

// ---------------------------------------------------------------------------
// Continual learning under supervision (DESIGN.md §16): the WAL audit
// trail and crash recovery through a mid-stream policy swap
// ---------------------------------------------------------------------------

use jarvis_runtime::{OnlineConfig, ShadowGates, SwapPoint, WalRecord};
use std::collections::BTreeMap;

/// A supervised runtime with online learning on (short fold cadence) and a
/// second policy version registered as a swap target.
fn online_runtime(f: &Fixture, shards: usize, homes: u32) -> (ServingRuntime, u64) {
    let mut rt = build_runtime(f, det_config(shards), homes);
    let online = OnlineConfig {
        fold_every: if cfg!(miri) { 16 } else { 24 },
        ..OnlineConfig::default()
    };
    rt.enable_online(online, ShadowGates::default()).expect("enable online");
    let cfg = f.policy.config();
    let mut alt = DqnConfig::new(cfg.state_dim, cfg.num_actions);
    alt.hidden = vec![16];
    alt.seed = 99;
    let alt = DqnAgent::new(alt).expect("alt policy");
    let version = rt.policy_store_mut().expect("store").register(alt.checkpoint());
    (rt, version)
}

#[test]
fn supervised_wal_records_the_learning_audit_trail() {
    let f = fixture();
    let fleet = FleetGenerator::new(37, fleet_size());
    let shards = 2;
    let (mut rt, version) = online_runtime(&f, shards, fleet.num_homes());
    let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
    let at_seq = ingest.envelopes[ingest.envelopes.len() / 2].seq;
    let swaps = [SwapPoint { at_seq, version }];
    let mut sup = SupervisorConfig::default();
    sup.checkpoint_every = 16;
    let report = rt.serve_online_supervised(ingest.envelopes, &sup, None, &swaps).expect("serve");
    assert!(report.recovery.checkpoints > 0, "checkpoints must be taken");
    assert_eq!(report.wals.len(), shards);

    // Fold records: per home, consecutive ordinals summing to exactly the
    // slot's lifetime counters — and they survived every checkpoint.
    let mut trail: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut swap_records = 0usize;
    for wal in &report.wals {
        for record in &wal.records {
            match record {
                WalRecord::Fold { home, fold, admitted } => {
                    let entry = trail.entry(*home).or_insert((0, 0));
                    assert_eq!(*fold, entry.0 + 1, "home {home}: fold ordinals must be consecutive");
                    entry.0 = *fold;
                    entry.1 += admitted;
                }
                WalRecord::Swap { at_seq: a, version: v } => {
                    assert_eq!((*a, *v), (at_seq, version), "unexpected swap record");
                    swap_records += 1;
                }
            }
        }
    }
    assert_eq!(swap_records, shards, "every shard crossing the swap logs it once");
    assert!(!trail.is_empty(), "the stream must be long enough to fold");
    for id in 0..u64::from(fleet.num_homes()) {
        let learner = rt.slot(id).expect("slot").online().expect("learner");
        let (folds, admitted) = trail.get(&id).copied().unwrap_or((0, 0));
        assert_eq!(folds, learner.folds, "home {id}: fold trail diverged from the slot");
        assert_eq!(admitted, learner.admitted, "home {id}: admitted trail diverged");
    }

    // The full WALs — checkpoint, suffix, and record trail — round-trip
    // byte-for-byte through the strict JSON codec.
    for wal in &report.wals {
        let json = wal.to_json();
        use jarvis_stdkit::json::FromJson;
        let back = jarvis_runtime::ShardWal::from_json(&json).expect("wal json");
        assert_eq!(&back, wal);
        assert_eq!(back.to_json(), json, "WAL serialization must be byte-stable");
    }
}

#[test]
fn recovery_through_a_swap_is_bitwise_and_lands_on_the_active_version() {
    let f = fixture();
    let fleet = FleetGenerator::new(41, fleet_size());
    let mut sup = SupervisorConfig::default();
    sup.restart_budget = u32::MAX;
    sup.checkpoint_every = 16;
    for shards in [1usize, 2] {
        // The uninterrupted oracle, and a plain serve_online cross-check:
        // supervision and segment-splitting must agree bitwise.
        let (mut oracle_rt, version) = online_runtime(&f, shards, fleet.num_homes());
        let ingest = oracle_rt.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
        let envelopes = ingest.envelopes;
        let at_seq = envelopes[envelopes.len() / 2].seq;
        let swaps = [SwapPoint { at_seq, version }];
        let want =
            oracle_rt.serve_online_supervised(envelopes.clone(), &sup, None, &swaps).expect("oracle");
        let want_snap = oracle_rt.snapshot().to_json();

        let (mut plain_rt, _) = online_runtime(&f, shards, fleet.num_homes());
        let ingest = plain_rt.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
        let plain = plain_rt.serve_online(ingest.envelopes, &swaps).expect("serve_online");
        assert_outcomes_bit_identical(
            &want.report.outcomes,
            &plain.outcomes,
            "supervised swap vs segment-split serve_online",
        );
        assert_eq!(want_snap, plain_rt.snapshot().to_json());

        // Panics peppered across the whole stream — some fire before the
        // swap, some after — must recover bitwise onto the same timeline.
        let plan = ChaosPlan::periodic_panic(13, if cfg!(miri) { 5 } else { 11 }, 1);
        let chaos: ChaosSchedule = ChaosInjector::new(plan)
            .expect("plan")
            .schedule(envelopes.iter().map(|e| e.seq).collect::<Vec<_>>());
        let (mut rt, _) = online_runtime(&f, shards, fleet.num_homes());
        let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(query_every())).expect("ingest");
        let got = rt
            .serve_online_supervised(ingest.envelopes, &sup, Some(&chaos), &swaps)
            .expect("chaos serve");
        assert_outcomes_bit_identical(
            &want.report.outcomes,
            &got.report.outcomes,
            &format!("{shards} shards: recovery through swap"),
        );
        assert_eq!(want_snap, rt.snapshot().to_json(), "{shards} shards: snapshot bytes diverged");
        assert!(!got.recovery.restarts.is_empty(), "panics must actually fire");
        assert!(
            got.recovery.restarts.iter().any(|r| r.seq < at_seq)
                && got.recovery.restarts.iter().any(|r| r.seq >= at_seq),
            "the chaos plan must span the swap point"
        );

        // The recovered runtime lands on the oracle's active version, with
        // the swap recorded and the stored bytes installed.
        let store = rt.policy_store().expect("store");
        assert_eq!(store.active(), version);
        assert_eq!(store.swaps().len(), 1);
        assert_eq!(store.swaps()[0].at_seq, at_seq);
        assert_eq!(
            rt.policy().checkpoint().to_json(),
            store.version(version).expect("version").checkpoint.to_json(),
            "active weights must be the stored bytes, exactly"
        );
    }
}
