//! SIMADL-style benign anomalies: harmless deviations from routine that the
//! SPL's ANN filter must *not* learn as unsafe.
//!
//! The paper uses 55,156 user-labelled benign anomaly samples from the
//! SIMADL project \[12\] — "leaving fridge/oven door open, TV/oven on for
//! short periods etc." (Section V-A-3) — to train the filter, and 18,120
//! engineered benign-anomalous episodes to measure false positives
//! (Section VI-C). This generator reproduces those anomaly classes with
//! plausible start times and durations.

use crate::rng_util;
use crate::MINUTES_PER_DAY;
use jarvis_stdkit::rng::SliceRandom;
use jarvis_stdkit::rng::Rng;
use jarvis_stdkit::{json_enum, json_struct};

/// The benign-anomaly classes reconstructed from Section V-A-3 and the
/// SIMADL activity list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AnomalyClass {
    /// Fridge door left open for a short period.
    FridgeDoorLeftOpen,
    /// Oven left on briefly after cooking.
    OvenLeftOn,
    /// TV left running in an empty room.
    TvLeftOn,
    /// Lights left on after leaving a room.
    LightsLeftOn,
    /// Door left unlocked briefly while at home.
    DoorLeftUnlocked,
    /// Heater left running slightly past comfort.
    HeaterLeftOn,
    /// Washer door open / cycle interrupted briefly.
    WasherInterrupted,
    /// Water heater re-triggered at an unusual hour.
    WaterHeaterOddHour,
}

json_enum!(AnomalyClass { FridgeDoorLeftOpen, OvenLeftOn, TvLeftOn, LightsLeftOn, DoorLeftUnlocked, HeaterLeftOn, WasherInterrupted, WaterHeaterOddHour });

impl AnomalyClass {
    /// Every class, for uniform sampling and exhaustive tests.
    #[must_use]
    pub fn all() -> &'static [AnomalyClass] {
        &[
            AnomalyClass::FridgeDoorLeftOpen,
            AnomalyClass::OvenLeftOn,
            AnomalyClass::TvLeftOn,
            AnomalyClass::LightsLeftOn,
            AnomalyClass::DoorLeftUnlocked,
            AnomalyClass::HeaterLeftOn,
            AnomalyClass::WasherInterrupted,
            AnomalyClass::WaterHeaterOddHour,
        ]
    }

    /// The device the anomaly manifests on (names match the smart-home
    /// catalogue).
    #[must_use]
    pub fn device(&self) -> &'static str {
        match self {
            AnomalyClass::FridgeDoorLeftOpen => "fridge",
            AnomalyClass::OvenLeftOn => "oven",
            AnomalyClass::TvLeftOn => "tv",
            AnomalyClass::LightsLeftOn => "light",
            AnomalyClass::DoorLeftUnlocked => "lock",
            AnomalyClass::HeaterLeftOn => "thermostat",
            AnomalyClass::WasherInterrupted => "washer",
            AnomalyClass::WaterHeaterOddHour => "water_heater",
        }
    }

    /// Typical duration range in minutes `(min, max)`; benign anomalies are
    /// short by definition (a fridge open for six hours is *not* benign).
    #[must_use]
    pub fn duration_range(&self) -> (u32, u32) {
        match self {
            AnomalyClass::FridgeDoorLeftOpen => (2, 15),
            AnomalyClass::OvenLeftOn => (5, 30),
            AnomalyClass::TvLeftOn => (15, 120),
            AnomalyClass::LightsLeftOn => (10, 180),
            AnomalyClass::DoorLeftUnlocked => (2, 20),
            AnomalyClass::HeaterLeftOn => (10, 60),
            AnomalyClass::WasherInterrupted => (5, 45),
            AnomalyClass::WaterHeaterOddHour => (20, 40),
        }
    }

    /// Plausible start-minute range `(earliest, latest)` within a day.
    ///
    /// SIMADL participants labelled *deviations from their own routine* as
    /// anomalies, so the windows sit where the activity is unusual: small
    /// hours for forgotten appliances, late evening for the oven/TV, working
    /// hours for heating an empty house. (The fridge-door class is anomalous
    /// at any time — routine logs carry no fridge-door events at all.)
    #[must_use]
    pub fn start_range(&self) -> (u32, u32) {
        match self {
            AnomalyClass::FridgeDoorLeftOpen => (6 * 60, 22 * 60),
            AnomalyClass::OvenLeftOn => (22 * 60, 23 * 60 + 50),
            AnomalyClass::TvLeftOn => (22 * 60 + 30, 23 * 60 + 50),
            AnomalyClass::LightsLeftOn => (0, 5 * 60),
            AnomalyClass::DoorLeftUnlocked => (0, 5 * 60),
            AnomalyClass::HeaterLeftOn => (9 * 60, 16 * 60),
            AnomalyClass::WasherInterrupted => (0, 5 * 60),
            AnomalyClass::WaterHeaterOddHour => (0, 5 * 60),
        }
    }
}

/// One concrete benign anomaly to inject into an episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AnomalyInstance {
    /// Anomaly class.
    pub class: AnomalyClass,
    /// Day it occurs on.
    pub day: u32,
    /// Start minute of day.
    pub start_minute: u32,
    /// Duration in minutes.
    pub duration_min: u32,
}

json_struct!(AnomalyInstance { class, day, start_minute, duration_min });

impl AnomalyInstance {
    /// The device the anomaly manifests on.
    #[must_use]
    pub fn device(&self) -> &'static str {
        self.class.device()
    }

    /// End minute (exclusive), clamped to the day.
    #[must_use]
    pub fn end_minute(&self) -> u32 {
        (self.start_minute + self.duration_min).min(MINUTES_PER_DAY)
    }
}

/// Seeded generator of labelled benign anomalies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnomalyGenerator {
    seed: u64,
}

json_struct!(AnomalyGenerator { seed });

impl AnomalyGenerator {
    /// Generator under `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        AnomalyGenerator { seed }
    }

    /// Generate `count` anomalies spread over `days` days, uniformly over
    /// the classes with class-appropriate times and durations.
    #[must_use]
    pub fn generate(&self, count: usize, days: u32) -> Vec<AnomalyInstance> {
        let mut rng = rng_util::derive(self.seed, 0xA40A);
        let classes = AnomalyClass::all();
        (0..count)
            .map(|_| {
                let class = *classes.choose(&mut rng).expect("non-empty");
                let (s0, s1) = class.start_range();
                let (d0, d1) = class.duration_range();
                AnomalyInstance {
                    class,
                    day: if days == 0 { 0 } else { rng.gen_range(0..days) },
                    start_minute: rng.gen_range(s0..=s1),
                    duration_min: rng.gen_range(d0..=d1),
                }
            })
            .collect()
    }

    /// The paper's training-set size: 55,156 samples over one month.
    #[must_use]
    pub fn paper_training_set(&self) -> Vec<AnomalyInstance> {
        self.generate(55_156, 30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = AnomalyGenerator::new(3);
        assert_eq!(g.generate(100, 30), AnomalyGenerator::new(3).generate(100, 30));
        assert_ne!(g.generate(100, 30), AnomalyGenerator::new(4).generate(100, 30));
    }

    #[test]
    fn instances_respect_class_ranges() {
        for a in AnomalyGenerator::new(7).generate(2_000, 30) {
            let (s0, s1) = a.class.start_range();
            let (d0, d1) = a.class.duration_range();
            assert!((s0..=s1).contains(&a.start_minute), "{a:?}");
            assert!((d0..=d1).contains(&a.duration_min), "{a:?}");
            assert!(a.day < 30);
            assert!(a.end_minute() <= MINUTES_PER_DAY);
        }
    }

    #[test]
    fn all_classes_appear_in_large_samples() {
        let sample = AnomalyGenerator::new(1).generate(5_000, 30);
        for &class in AnomalyClass::all() {
            assert!(
                sample.iter().any(|a| a.class == class),
                "class {class:?} never generated"
            );
        }
    }

    #[test]
    fn device_mapping_is_total_and_nonempty() {
        for &class in AnomalyClass::all() {
            assert!(!class.device().is_empty());
        }
    }

    #[test]
    fn durations_are_short() {
        // Benign anomalies by definition resolve within a few hours.
        for &class in AnomalyClass::all() {
            let (_, max) = class.duration_range();
            assert!(max <= 240, "{class:?} too long to be benign");
        }
    }

    #[test]
    fn paper_training_set_size() {
        assert_eq!(AnomalyGenerator::new(0).paper_training_set().len(), 55_156);
    }

    #[test]
    fn zero_days_defaults_to_day_zero() {
        for a in AnomalyGenerator::new(0).generate(50, 0) {
            assert_eq!(a.day, 0);
        }
    }
}
