//! Deterministic, seeded chaos injection against the serving runtime itself.
//!
//! [`super::faults`] corrupts the *data* a runtime ingests; this module
//! breaks the *runtime*: worker panics and inference stalls at chosen
//! envelope sequence numbers, so every crash-recovery path is reproducible
//! bit-for-bit in tests. A [`ChaosPlan`] is the serializable regime — a
//! seed plus composable [`ChaosRule`]s, each scoped to a seq range — and a
//! [`ChaosInjector`] evaluates the plan against a sequenced stream into a
//! [`ChaosSchedule`]: the exact map of seq → [`ChaosFire`] a supervisor
//! consults while serving.
//!
//! The schedule is computed *up front*, single-threaded, in seq order, so
//! injection is a pure function of `(plan.seed, rule index, stream)` —
//! sibling of [`FaultPlan`](super::FaultPlan)'s guarantees:
//!
//! 1. **Determinism.** Each rule draws from its own ChaCha stream derived
//!    from `(seed, rule index)`; worker scheduling can never perturb which
//!    envelopes fail.
//! 2. **Nested outcomes across rates.** Every rule draws exactly one value
//!    per in-scope seq regardless of outcome, so the seqs that fire at
//!    `rate` 0.01 are a subset of those firing at 0.05 under the same seed.
//!
//! A plan with no rules (or all rates at `0.0`) yields an empty schedule:
//! serving under it is the uninterrupted run.

use crate::rng_util;
use jarvis_stdkit::rng::Rng;
use jarvis_stdkit::{json_enum, json_struct};
use std::collections::BTreeMap;

/// One runtime-failure model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosKind {
    /// The worker panics while processing the armed envelope. The panic
    /// repeats on each retry until the envelope has failed `attempts`
    /// times, then processing succeeds — `attempts` below the supervisor's
    /// quarantine threshold models a transient fault (recovery must be
    /// bitwise invisible); at or above it, a poison pill.
    Panic {
        /// Consecutive failures before the envelope processes cleanly (≥ 1).
        attempts: u32,
    },
    /// Processing the armed envelope charges `ticks` of virtual time to the
    /// supervisor's deadline watchdog. Charges above the deadline are
    /// treated as a hung worker — killed and recovered exactly like a
    /// panic; charges within it are tolerated latency. Repeats until the
    /// envelope has stalled `attempts` times.
    Stall {
        /// Virtual ticks charged per stall (≥ 1).
        ticks: u64,
        /// Consecutive stalls before the envelope processes cleanly (≥ 1).
        attempts: u32,
    },
}

json_enum!(ChaosKind {
    Panic { attempts },
    Stall { ticks, attempts },
});

impl ChaosKind {
    fn attempts(&self) -> u32 {
        match *self {
            ChaosKind::Panic { attempts } | ChaosKind::Stall { attempts, .. } => attempts,
        }
    }
}

/// A [`ChaosKind`] scoped to a seq range, a periodic stride, and a rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRule {
    /// The failure model to arm.
    pub kind: ChaosKind,
    /// First sequence number the rule covers (inclusive).
    pub from_seq: u64,
    /// Last sequence number the rule covers (exclusive); `u64::MAX` = open.
    pub to_seq: u64,
    /// Arm every k-th in-scope envelope (the k-th, 2k-th, …; ≥ 1).
    pub every: u64,
    /// Probabilistic thinning on top of `every`, in `[0, 1]`; `1.0` fires
    /// every stride hit deterministically.
    pub rate: f64,
}

json_struct!(ChaosRule { kind, from_seq, to_seq, every, rate });

impl ChaosRule {
    /// Arm every `every`-th envelope of the whole stream, rate 1.
    #[must_use]
    pub fn every_kth(kind: ChaosKind, every: u64) -> Self {
        ChaosRule { kind, from_seq: 0, to_seq: u64::MAX, every, rate: 1.0 }
    }

    /// Arm exactly one envelope: the first in-scope seq at or after `seq`.
    #[must_use]
    pub fn at_seq(kind: ChaosKind, seq: u64) -> Self {
        ChaosRule { kind, from_seq: seq, to_seq: u64::MAX, every: 1, rate: 1.0 }
            .between(seq, seq.saturating_add(1))
    }

    /// Restrict the rule to `[from, to)` sequence numbers.
    #[must_use]
    pub fn between(mut self, from_seq: u64, to_seq: u64) -> Self {
        self.from_seq = from_seq;
        self.to_seq = to_seq;
        self
    }

    /// Thin the stride hits to fire with probability `rate` each.
    #[must_use]
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    fn in_scope(&self, seq: u64) -> bool {
        seq >= self.from_seq && seq < self.to_seq
    }
}

/// A seeded, serializable runtime-failure regime: the one chaos knob.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Base seed; every rule derives its own stream from it.
    pub seed: u64,
    /// Rules evaluated in order; the first rule to fire on a seq owns it.
    pub rules: Vec<ChaosRule>,
}

json_struct!(ChaosPlan { seed, rules });

impl ChaosPlan {
    /// The empty plan: serving under it is the uninterrupted run.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        ChaosPlan { seed, rules: Vec::new() }
    }

    /// A single whole-stream panic rule at stride `every` — the canonical
    /// crash-matrix knob.
    #[must_use]
    pub fn periodic_panic(seed: u64, every: u64, attempts: u32) -> Self {
        ChaosPlan {
            seed,
            rules: vec![ChaosRule::every_kth(ChaosKind::Panic { attempts }, every)],
        }
    }

    /// Validate strides, rates, and magnitudes.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid rule: a
    /// zero stride or attempt count, a zero stall charge, a rate outside
    /// `[0, 1]` (or non-finite), or an empty seq range.
    pub fn validate(&self) -> Result<(), String> {
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.every == 0 {
                return Err(format!("rule {i}: stride of 0"));
            }
            if rule.kind.attempts() == 0 {
                return Err(format!("rule {i}: 0 attempts never fires"));
            }
            if let ChaosKind::Stall { ticks: 0, .. } = rule.kind {
                return Err(format!("rule {i}: stall of 0 ticks"));
            }
            if !rule.rate.is_finite() || !(0.0..=1.0).contains(&rule.rate) {
                return Err(format!("rule {i}: rate {} outside [0, 1]", rule.rate));
            }
            if rule.from_seq >= rule.to_seq {
                return Err(format!(
                    "rule {i}: empty seq range {}..{}",
                    rule.from_seq, rule.to_seq
                ));
            }
        }
        Ok(())
    }
}

/// One armed envelope in a [`ChaosSchedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosFire {
    /// What happens when the envelope is processed.
    pub kind: ChaosKind,
    /// Index of the [`ChaosRule`] that armed it (accounting).
    pub rule: usize,
}

json_struct!(ChaosFire { kind, rule });

/// The evaluated plan: which sequence numbers fail, and how. Consumers
/// (the runtime supervisor) treat this as read-only — all randomness was
/// spent at evaluation time, so threaded serving stays deterministic.
pub type ChaosSchedule = BTreeMap<u64, ChaosFire>;

/// Evaluates a validated [`ChaosPlan`] against sequenced streams.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosInjector {
    plan: ChaosPlan,
}

impl ChaosInjector {
    /// Wrap a plan, validating it first.
    ///
    /// # Errors
    ///
    /// Returns the [`ChaosPlan::validate`] message for an invalid plan.
    pub fn new(plan: ChaosPlan) -> Result<Self, String> {
        plan.validate()?;
        Ok(ChaosInjector { plan })
    }

    /// The wrapped plan.
    #[must_use]
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Evaluate the plan against a stream's sequence numbers (pass them in
    /// stream order). The first rule to fire on a seq owns it; later rules
    /// still draw for that seq, so their fire sets are unperturbed.
    #[must_use]
    pub fn schedule(&self, seqs: impl IntoIterator<Item = u64> + Clone) -> ChaosSchedule {
        let mut out = ChaosSchedule::new();
        for (idx, rule) in self.plan.rules.iter().enumerate() {
            // One independent stream per (seed, rule): rules never perturb
            // each other's draws, and plans never correlate across seeds.
            let mut rng = rng_util::derive(self.plan.seed ^ 0xC4A0_5000, idx as u64);
            let mut hits = 0u64;
            for seq in seqs.clone() {
                if !rule.in_scope(seq) {
                    continue;
                }
                // Always one draw per in-scope seq so fire sets nest
                // across rates under the same seed.
                let u = rng.gen::<f64>();
                hits += 1;
                if hits % rule.every == 0 && u < rule.rate {
                    out.entry(seq).or_insert(ChaosFire { kind: rule.kind, rule: idx });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jarvis_stdkit::json::{FromJson, ToJson};

    #[test]
    fn empty_plan_schedules_nothing() {
        let inj = ChaosInjector::new(ChaosPlan::none(9)).unwrap();
        assert!(inj.schedule(0..1000).is_empty());
    }

    #[test]
    fn periodic_panic_arms_every_kth() {
        let inj = ChaosInjector::new(ChaosPlan::periodic_panic(1, 5, 2)).unwrap();
        let sched = inj.schedule(0..20);
        let seqs: Vec<u64> = sched.keys().copied().collect();
        assert_eq!(seqs, vec![4, 9, 14, 19]);
        for fire in sched.values() {
            assert_eq!(fire.kind, ChaosKind::Panic { attempts: 2 });
            assert_eq!(fire.rule, 0);
        }
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let plan = ChaosPlan {
            seed: 7,
            rules: vec![ChaosRule::every_kth(ChaosKind::Panic { attempts: 1 }, 3)
                .with_rate(0.5)],
        };
        let a = ChaosInjector::new(plan.clone()).unwrap().schedule(0..500);
        let b = ChaosInjector::new(plan.clone()).unwrap().schedule(0..500);
        assert_eq!(a, b);
        let other = ChaosInjector::new(ChaosPlan { seed: 8, ..plan }).unwrap().schedule(0..500);
        assert_ne!(a, other);
    }

    #[test]
    fn fire_sets_nest_across_rates() {
        let at = |rate| {
            let plan = ChaosPlan {
                seed: 3,
                rules: vec![ChaosRule::every_kth(ChaosKind::Panic { attempts: 1 }, 1)
                    .with_rate(rate)],
            };
            ChaosInjector::new(plan).unwrap().schedule(0..2000)
        };
        let low = at(0.02);
        let high = at(0.10);
        assert!(low.len() < high.len());
        for seq in low.keys() {
            assert!(high.contains_key(seq), "non-nested fire at seq {seq}");
        }
    }

    #[test]
    fn first_rule_owns_contested_seqs_without_perturbing_later_draws() {
        let stall = ChaosRule::every_kth(ChaosKind::Stall { ticks: 9, attempts: 1 }, 4);
        let panic = ChaosRule::every_kth(ChaosKind::Panic { attempts: 1 }, 2);
        let both = ChaosInjector::new(ChaosPlan {
            seed: 5,
            rules: vec![stall.clone(), panic.clone()],
        })
        .unwrap()
        .schedule(0..40);
        // Seq 3 (4th) hits both rules; the stall rule is listed first.
        assert_eq!(both[&3].kind, ChaosKind::Stall { ticks: 9, attempts: 1 });
        assert_eq!(both[&1].kind, ChaosKind::Panic { attempts: 1 });
        // The panic rule's own fire set is unchanged by the stall rule.
        let alone = ChaosInjector::new(ChaosPlan { seed: 5, rules: vec![panic] })
            .unwrap()
            .schedule(0..40);
        for (seq, fire) in &alone {
            assert!(both.contains_key(seq), "panic fire at {seq} lost under composition");
            let _ = fire;
        }
    }

    #[test]
    fn seq_scoping_respected() {
        let plan = ChaosPlan {
            seed: 2,
            rules: vec![ChaosRule::every_kth(ChaosKind::Panic { attempts: 1 }, 1)
                .between(10, 20)],
        };
        let sched = ChaosInjector::new(plan).unwrap().schedule(0..100);
        assert_eq!(sched.len(), 10);
        assert!(sched.keys().all(|&s| (10..20).contains(&s)));
    }

    #[test]
    fn at_seq_arms_exactly_one() {
        let plan = ChaosPlan {
            seed: 0,
            rules: vec![ChaosRule::at_seq(ChaosKind::Panic { attempts: 3 }, 17)],
        };
        let sched = ChaosInjector::new(plan).unwrap().schedule(0..100);
        assert_eq!(sched.len(), 1);
        assert_eq!(sched[&17].kind, ChaosKind::Panic { attempts: 3 });
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = ChaosPlan {
            seed: 77,
            rules: vec![
                ChaosRule::every_kth(ChaosKind::Panic { attempts: 2 }, 7),
                ChaosRule::every_kth(ChaosKind::Stall { ticks: 50, attempts: 1 }, 11)
                    .between(100, 900)
                    .with_rate(0.25),
            ],
        };
        let back = ChaosPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn invalid_plans_rejected() {
        let zero_stride = ChaosPlan {
            seed: 0,
            rules: vec![ChaosRule::every_kth(ChaosKind::Panic { attempts: 1 }, 0)],
        };
        assert!(ChaosInjector::new(zero_stride).is_err());
        let zero_attempts = ChaosPlan {
            seed: 0,
            rules: vec![ChaosRule::every_kth(ChaosKind::Panic { attempts: 0 }, 1)],
        };
        assert!(ChaosInjector::new(zero_attempts).is_err());
        let zero_ticks = ChaosPlan {
            seed: 0,
            rules: vec![ChaosRule::every_kth(ChaosKind::Stall { ticks: 0, attempts: 1 }, 1)],
        };
        assert!(ChaosInjector::new(zero_ticks).is_err());
        let bad_rate = ChaosPlan {
            seed: 0,
            rules: vec![ChaosRule::every_kth(ChaosKind::Panic { attempts: 1 }, 1)
                .with_rate(1.5)],
        };
        assert!(ChaosInjector::new(bad_rate).is_err());
        let empty_range = ChaosPlan {
            seed: 0,
            rules: vec![ChaosRule::every_kth(ChaosKind::Panic { attempts: 1 }, 1)
                .between(5, 5)],
        };
        assert!(ChaosInjector::new(empty_range).is_err());
    }
}
