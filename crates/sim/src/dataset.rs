//! Assembled home datasets: the virtual testbed of Section VI-A.
//!
//! The evaluation uses two homes: **Home A**, whose datasets come from the
//! OpenSHS simulator driven by scripted daily activities, and **Home B**,
//! whose datasets are simulated from real-world Smart\* user-study data.
//! [`HomeDataset::home_a`] and [`HomeDataset::home_b`] reproduce both as
//! seeded generators differing in household composition and behavioral
//! noise.
//!
//! A [`DayActivity`] is the normalized *event stream* of one day — exactly
//! what a SmartThings logger would capture — derived from the power traces,
//! occupant schedules, and indoor-temperature trajectory.

use crate::occupancy::{Household, OccupantProfile};
use crate::prices::DamPrices;
use crate::traces::{DayTrace, TraceGenerator};
use crate::weather::WeatherModel;
use jarvis_stdkit::{json_struct};

/// One normalized event in a day's activity stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityEvent {
    /// Day index.
    pub day: u32,
    /// Minute of day.
    pub minute: u32,
    /// Device name (smart-home catalogue naming).
    pub device: String,
    /// Command or attribute-value name (e.g. `power_on`, `unlock`,
    /// `below_optimal`).
    pub name: String,
    /// True for a sensor attribute change, false for a command.
    pub is_sensor: bool,
    /// True when a user performed the action manually.
    pub manual: bool,
}

json_struct!(ActivityEvent { day, minute, device, name, is_sensor, manual });

/// The full event stream of one day plus the trace it derives from.
#[derive(Debug, Clone, PartialEq)]
pub struct DayActivity {
    /// Day index.
    pub day: u32,
    /// Events ordered by `(minute, device)`.
    pub events: Vec<ActivityEvent>,
    /// The underlying per-device trace.
    pub trace: DayTrace,
}

json_struct!(DayActivity { day, events, trace });

impl DayActivity {
    /// Events concerning one device.
    pub fn events_for<'a>(&'a self, device: &'a str) -> impl Iterator<Item = &'a ActivityEvent> {
        self.events.iter().filter(move |e| e.device == device)
    }
}

/// A complete simulated home: occupants, weather, traces, prices.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeDataset {
    name: String,
    generator: TraceGenerator,
    prices: DamPrices,
}

json_struct!(HomeDataset { name, generator, prices });

impl HomeDataset {
    /// Home A of the testbed: a two-occupant home with regular, scripted
    /// routines (OpenSHS-style simulated daily activities).
    #[must_use]
    pub fn home_a(seed: u64) -> Self {
        let household = Household::new(
            seed,
            vec![OccupantProfile::worker(), OccupantProfile::homebody()],
        );
        HomeDataset {
            name: "Home A".to_owned(),
            generator: TraceGenerator::with_household(seed, household),
            prices: DamPrices::new(seed ^ 0xDA11),
        }
    }

    /// Home B of the testbed: a three-occupant home with noisier schedules
    /// (Smart\*-style real-world data).
    #[must_use]
    pub fn home_b(seed: u64) -> Self {
        let mut erratic = OccupantProfile::worker();
        erratic.jitter_std = 55.0; // real households are messier
        erratic.weekend_home_prob = 0.4;
        let household = Household::new(
            seed,
            vec![OccupantProfile::worker(), OccupantProfile::homebody(), erratic],
        );
        HomeDataset {
            name: "Home B".to_owned(),
            generator: TraceGenerator::with_household(seed, household),
            prices: DamPrices::new(seed ^ 0xDA11),
        }
    }

    /// Display name (`"Home A"` / `"Home B"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The electricity price model of this home's market.
    #[must_use]
    pub fn prices(&self) -> &DamPrices {
        &self.prices
    }

    /// The weather at this home.
    #[must_use]
    pub fn weather(&self) -> &WeatherModel {
        self.generator.weather()
    }

    /// The household living in this home.
    #[must_use]
    pub fn household(&self) -> &Household {
        self.generator.household()
    }

    /// The trace generator (device-level power behavior).
    #[must_use]
    pub fn traces(&self) -> &TraceGenerator {
        &self.generator
    }

    /// The raw per-device trace for `day`.
    #[must_use]
    pub fn trace(&self, day: u32) -> DayTrace {
        self.generator.day(day)
    }

    /// The normalized event stream for `day`, as the logging system would
    /// record it.
    #[must_use]
    pub fn activity(&self, day: u32) -> DayActivity {
        let trace = self.trace(day);
        let schedules = self.household().day(day);
        let mut events: Vec<ActivityEvent> = Vec::new();
        let push = |events: &mut Vec<ActivityEvent>,
                    minute: u32,
                    device: &str,
                    name: &str,
                    is_sensor: bool,
                    manual: bool| {
            events.push(ActivityEvent {
                day,
                minute,
                device: device.to_owned(),
                name: name.to_owned(),
                is_sensor,
                manual,
            });
        };

        // Appliance commands from power-trace edges.
        for dev in &trace.devices {
            match dev.name.as_str() {
                // Sensors/lock/thermostat handled separately.
                "lock" | "door_sensor" | "temp_sensor" | "thermostat" | "fridge" => {}
                _ => {
                    for (minute, turned_on) in dev.edges() {
                        push(
                            &mut events,
                            minute,
                            &dev.name,
                            if turned_on { "power_on" } else { "power_off" },
                            false,
                            true,
                        );
                    }
                }
            }
        }

        // Thermostat mode transitions.
        use crate::thermal::HvacMode;
        for m in 1..trace.hvac_mode.len() {
            let (prev, cur) = (trace.hvac_mode[m - 1], trace.hvac_mode[m]);
            if prev == cur {
                continue;
            }
            let name = match cur {
                HvacMode::Heat => "set_heat",
                HvacMode::Cool => "set_cool",
                HvacMode::Off => "power_off",
            };
            push(&mut events, m as u32, "thermostat", name, false, true);
        }

        // Lock and door-sensor events from occupant movement.
        //
        // Departure: the occupant unlocks to step out, then locks one minute
        // later — from *outside* when the house is now empty, from *inside*
        // (on behalf of those remaining) otherwise. Arrival: the door sensor
        // recognizes the authorized user one minute before the unlock (the
        // sensor event is the IFTTT trigger, so it precedes the action
        // interval), and clears one minute after.
        for s in &schedules {
            if let Some(leave) = s.leave {
                push(&mut events, leave.saturating_sub(1), "lock", "unlock", false, true);
                let house_empty = !schedules.iter().any(|o| o.in_house(leave));
                push(
                    &mut events,
                    leave,
                    "lock",
                    if house_empty { "lock" } else { "lock_inside" },
                    false,
                    true,
                );
            }
            if let Some(ret) = s.ret {
                push(&mut events, ret.saturating_sub(1), "door_sensor", "auth_user", true, false);
                push(&mut events, ret, "lock", "unlock", false, true);
                if ret + 1 < crate::MINUTES_PER_DAY {
                    push(&mut events, ret + 1, "door_sensor", "sensing", true, false);
                }
            }
        }
        // Last person to sleep locks from the inside.
        if let Some(last_sleep) = schedules.iter().map(|s| s.sleep).max() {
            push(&mut events, last_sleep, "lock", "lock_inside", false, true);
        }

        // Temperature-sensor discretized readings (comfort band 20–22 °C).
        let band = |t: f64| -> &'static str {
            if t < 20.0 {
                "below_optimal"
            } else if t > 22.0 {
                "above_optimal"
            } else {
                "optimal"
            }
        };
        let mut prev_band = band(trace.indoor_temp[0]);
        push(&mut events, 0, "temp_sensor", prev_band, true, false);
        for (m, &t) in trace.indoor_temp.iter().enumerate().skip(1) {
            let b = band(t);
            if b != prev_band {
                push(&mut events, m as u32, "temp_sensor", b, true, false);
                prev_band = b;
            }
        }

        events.sort_by(|a, b| (a.minute, &a.device).cmp(&(b.minute, &b.device)));
        DayActivity { day, events, trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homes_differ() {
        let a = HomeDataset::home_a(1);
        let b = HomeDataset::home_b(1);
        assert_eq!(a.name(), "Home A");
        assert_eq!(b.name(), "Home B");
        assert_eq!(a.household().len(), 2);
        assert_eq!(b.household().len(), 3);
    }

    #[test]
    fn activity_is_deterministic() {
        let a1 = HomeDataset::home_a(5).activity(3);
        let a2 = HomeDataset::home_a(5).activity(3);
        assert_eq!(a1, a2);
    }

    #[test]
    fn events_sorted_by_minute() {
        let act = HomeDataset::home_a(2).activity(1);
        for w in act.events.windows(2) {
            assert!(w[0].minute <= w[1].minute);
        }
        assert!(!act.events.is_empty());
    }

    #[test]
    fn lock_events_bracket_departures() {
        let home = HomeDataset::home_a(7);
        let day = 2; // weekday: the worker leaves
        let act = home.activity(day);
        let locks: Vec<&ActivityEvent> =
            act.events_for("lock").filter(|e| e.name == "lock").collect();
        let unlocks: Vec<&ActivityEvent> =
            act.events_for("lock").filter(|e| e.name == "unlock").collect();
        assert!(!locks.is_empty(), "no lock events on a weekday");
        assert!(!unlocks.is_empty(), "no unlock events on a weekday");
        // Each arrival (auth_user) is followed by an unlock one minute later
        // (sensor trigger precedes the app's action interval).
        for a in act.events.iter().filter(|e| e.name == "auth_user") {
            assert!(
                unlocks.iter().any(|u| u.minute == a.minute + 1),
                "auth_user at {} without unlock",
                a.minute
            );
        }
        // Each departure lock is preceded by an unlock one minute earlier
        // (the occupant steps out, then locks from outside).
        for l in &locks {
            assert!(
                act.events.iter().any(|e| e.device == "lock"
                    && e.name == "unlock"
                    && e.minute + 1 == l.minute),
                "lock at {} without preceding unlock",
                l.minute
            );
        }
    }

    #[test]
    fn thermostat_events_present_in_winter() {
        let act = HomeDataset::home_a(3).activity(10);
        let heats = act.events_for("thermostat").filter(|e| e.name == "set_heat").count();
        assert!(heats > 0, "winter day without heating events");
    }

    #[test]
    fn temp_sensor_events_track_bands() {
        let act = HomeDataset::home_a(3).activity(10);
        let names: std::collections::HashSet<&str> = act
            .events_for("temp_sensor")
            .map(|e| e.name.as_str())
            .collect();
        assert!(names.contains("below_optimal") || names.contains("optimal"));
        for e in act.events_for("temp_sensor") {
            assert!(e.is_sensor);
            assert!(!e.manual);
        }
    }

    #[test]
    fn appliance_commands_are_manual_actions() {
        let act = HomeDataset::home_a(4).activity(2);
        for e in &act.events {
            if e.device == "oven" || e.device == "tv" {
                assert!(!e.is_sensor);
                assert!(e.manual);
                assert!(e.name == "power_on" || e.name == "power_off", "{e:?}");
            }
        }
    }

    #[test]
    fn home_b_is_noisier_than_home_a() {
        // Home B's third occupant has a much wider jitter than Home A's
        // worker; compare their per-occupant departure-time spreads.
        let spread = |home: &HomeDataset, occupant: usize| {
            let leaves: Vec<f64> = (0..60u32)
                .filter_map(|day| home.household().day(day)[occupant].leave)
                .map(f64::from)
                .collect();
            let mean = leaves.iter().sum::<f64>() / leaves.len() as f64;
            (leaves.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / leaves.len() as f64)
                .sqrt()
        };
        let a = spread(&HomeDataset::home_a(9), 0);
        let b = spread(&HomeDataset::home_b(9), 2);
        assert!(b > a, "Home B erratic occupant std {b} should exceed Home A worker std {a}");
    }

    #[test]
    fn events_for_filters_by_device() {
        let act = HomeDataset::home_a(1).activity(0);
        for e in act.events_for("lock") {
            assert_eq!(e.device, "lock");
        }
    }
}
