//! Drift scenarios: deterministic distribution shift for continual
//! learning experiments (DESIGN.md §16).
//!
//! The paper's evaluation freezes each home's behavior; real homes drift.
//! A [`DriftSchedule`] wraps two [`HomeDataset`]s and replays a composed
//! timeline over them:
//!
//! - **Occupant change** — up to `change_day` the stream comes from the
//!   *before* household; from `change_day` onward it comes from the *after*
//!   household (e.g. a two-occupant Home A becomes a three-occupant Home B
//!   overnight: new routines, new appliance habits, new lock patterns).
//! - **Seasonal ramp** — each elapsed day advances the underlying
//!   generators' calendar by `1 + season_ramp` days, compressing a season
//!   change into the experiment window so thermostat behavior shifts
//!   gradually rather than abruptly.
//!
//! Everything is a pure function of `(seed, day)`: the same schedule
//! replays the same drifting stream bit for bit, which is what lets the
//! continual-learning experiments compare a frozen policy against an
//! adapting one on identical traffic.

use crate::dataset::{DayActivity, HomeDataset};
use jarvis_stdkit::json_struct;

/// A deterministic drift scenario over one home's event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSchedule {
    /// The household before the change day.
    pub before: HomeDataset,
    /// The household from the change day onward.
    pub after: HomeDataset,
    /// First day served by `after`. `u32::MAX` disables the occupant
    /// change (seasonal-only drift).
    pub change_day: u32,
    /// Extra calendar days the season advances per elapsed day (0 = real
    /// time). With `season_ramp = 6`, a 14-day experiment sweeps ~3 months
    /// of weather.
    pub season_ramp: u32,
}

json_struct!(DriftSchedule { before, after, change_day, season_ramp });

impl DriftSchedule {
    /// An occupant-change scenario: Home A's routines until `change_day`,
    /// Home B's from then on, both seeded from `seed`.
    #[must_use]
    pub fn occupant_change(seed: u64, change_day: u32) -> Self {
        DriftSchedule {
            before: HomeDataset::home_a(seed),
            after: HomeDataset::home_b(seed ^ 0xD41F7),
            change_day,
            season_ramp: 0,
        }
    }

    /// A seasonal-only scenario: one household, calendar compressed by
    /// `season_ramp` extra days per elapsed day.
    #[must_use]
    pub fn seasonal(seed: u64, season_ramp: u32) -> Self {
        DriftSchedule {
            before: HomeDataset::home_a(seed),
            after: HomeDataset::home_a(seed),
            change_day: u32::MAX,
            season_ramp,
        }
    }

    /// Add a seasonal ramp to an existing scenario.
    #[must_use]
    pub fn with_season_ramp(mut self, season_ramp: u32) -> Self {
        self.season_ramp = season_ramp;
        self
    }

    /// Whether `day` falls after the occupant change.
    #[must_use]
    pub fn changed(&self, day: u32) -> bool {
        day >= self.change_day
    }

    /// The dataset serving `day`.
    #[must_use]
    pub fn dataset(&self, day: u32) -> &HomeDataset {
        if self.changed(day) {
            &self.after
        } else {
            &self.before
        }
    }

    /// The generator-calendar day backing experiment day `day` (the
    /// seasonal ramp compresses the calendar).
    #[must_use]
    pub fn effective_day(&self, day: u32) -> u32 {
        day.saturating_mul(1 + self.season_ramp)
    }

    /// The normalized event stream for experiment day `day` under the full
    /// drift scenario.
    #[must_use]
    pub fn activity(&self, day: u32) -> DayActivity {
        self.dataset(day).activity(self.effective_day(day))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupant_change_switches_households_at_the_boundary() {
        let sched = DriftSchedule::occupant_change(11, 5);
        assert!(!sched.changed(4));
        assert!(sched.changed(5));
        assert_eq!(sched.dataset(0).name(), "Home A");
        assert_eq!(sched.dataset(5).name(), "Home B");
        assert_eq!(sched.dataset(4).household().len(), 2);
        assert_eq!(sched.dataset(5).household().len(), 3);
    }

    #[test]
    fn drifted_activity_is_deterministic() {
        let a = DriftSchedule::occupant_change(3, 7).with_season_ramp(4);
        let b = DriftSchedule::occupant_change(3, 7).with_season_ramp(4);
        for day in [0, 6, 7, 12] {
            assert_eq!(a.activity(day), b.activity(day));
        }
    }

    #[test]
    fn seasonal_ramp_compresses_the_calendar() {
        let sched = DriftSchedule::seasonal(9, 6);
        assert_eq!(sched.effective_day(0), 0);
        assert_eq!(sched.effective_day(10), 70);
        // The compressed calendar must actually move the weather: mean
        // outdoor temperature 10 weeks apart differs measurably.
        let mean = |day: u32| {
            let w = sched.dataset(day).weather();
            (0..crate::MINUTES_PER_DAY)
                .step_by(60)
                .map(|m| w.outdoor_temp(sched.effective_day(day), m))
                .sum::<f64>()
                / 24.0
        };
        assert!(
            (mean(10) - mean(0)).abs() > 1.0,
            "a 70-day seasonal jump should shift mean outdoor temperature"
        );
    }

    #[test]
    fn schedule_round_trips_byte_for_byte() {
        use jarvis_stdkit::json::{FromJson, ToJson};
        let sched = DriftSchedule::occupant_change(21, 3).with_season_ramp(2);
        let json = sched.to_json();
        let back = DriftSchedule::from_json(&json).unwrap();
        assert_eq!(back, sched);
        assert_eq!(back.to_json(), json, "serialization must be byte-stable");
    }
}
