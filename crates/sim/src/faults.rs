//! Deterministic, seeded fault injection over a day's event stream.
//!
//! Real smart-home telemetry is lossy: hubs drop events, radios retransmit
//! duplicates, batched uploads arrive late, sensors stick, and devices fall
//! off the network for whole windows. A [`FaultPlan`] describes such a fault
//! regime as a list of composable [`FaultRule`]s, each scoped to an optional
//! device and a minute range; a [`FaultInjector`] applies the plan to a
//! [`DayActivity`] and yields a [`FaultedDay`] — the corrupted event stream
//! plus the known [`OfflineWindow`]s and a [`FaultSummary`] of what was done.
//!
//! Two properties are load-bearing for the robustness experiments:
//!
//! 1. **Determinism.** Injection is a pure function of
//!    `(plan.seed, day, rule index)` — every rule draws from its own derived
//!    ChaCha stream, so plans reproduce bit-for-bit across runs and thread
//!    counts.
//! 2. **Nested outcomes across rates.** Each rule draws a *fixed* number of
//!    random values per input event regardless of the outcome. With the same
//!    seed, the events dropped at rate 0.01 are a subset of those dropped at
//!    rate 0.05, which keeps degradation curves monotone rather than noisy.
//!
//! A plan with no rules (or all rates at `0.0`) is a bit-identical
//! passthrough: the output events equal the input events exactly.

use crate::dataset::{ActivityEvent, DayActivity, HomeDataset};
use crate::rng_util;
use crate::MINUTES_PER_DAY;
use jarvis_stdkit::rng::Rng;
use jarvis_stdkit::{json_enum, json_struct};
use std::collections::BTreeMap;

/// One fault model, parameterized by occurrence rate and magnitude.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Each in-scope event is dropped independently with probability `rate`.
    Drop {
        /// Per-event drop probability in `[0, 1]`.
        rate: f64,
    },
    /// Each in-scope event is duplicated (retransmitted) with probability
    /// `rate`; the duplicate lands at the same minute.
    Duplicate {
        /// Per-event duplication probability in `[0, 1]`.
        rate: f64,
    },
    /// Each in-scope event is delayed with probability `rate` by a uniform
    /// `1..=max_minutes` offset (clamped to the end of the day). Delays
    /// reorder the stream relative to other devices.
    Delay {
        /// Per-event delay probability in `[0, 1]`.
        rate: f64,
        /// Maximum delay in minutes (≥ 1).
        max_minutes: u32,
    },
    /// Each in-scope *sensor* event starts a stuck-at episode with
    /// probability `rate`: the triggering reading and every later reading
    /// from the same device within `hold_minutes` are suppressed, as if the
    /// sensor kept reporting its previous value.
    StuckAt {
        /// Per-reading stick probability in `[0, 1]`.
        rate: f64,
        /// How long the sensor stays stuck, in minutes (≥ 1).
        hold_minutes: u32,
    },
    /// The scoped device (or a uniformly chosen device when the rule has no
    /// device scope) goes offline for `windows` windows of uniform
    /// `1..=max_minutes` length. Events inside a window are suppressed, and
    /// the windows are *reported* in [`FaultedDay::offline`] — downstream
    /// consumers can flag the gap instead of misreading silence.
    Offline {
        /// Number of offline windows to open.
        windows: u32,
        /// Maximum window length in minutes (≥ 1).
        max_minutes: u32,
    },
}

json_enum!(FaultKind {
    Drop { rate },
    Duplicate { rate },
    Delay { rate, max_minutes },
    StuckAt { rate, hold_minutes },
    Offline { windows, max_minutes },
});

impl FaultKind {
    fn rate(&self) -> f64 {
        match *self {
            FaultKind::Drop { rate }
            | FaultKind::Duplicate { rate }
            | FaultKind::Delay { rate, .. }
            | FaultKind::StuckAt { rate, .. } => rate,
            FaultKind::Offline { .. } => 0.0,
        }
    }
}

/// A [`FaultKind`] scoped to an optional device and a minute range.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// The fault model to apply.
    pub kind: FaultKind,
    /// Restrict the rule to one device by catalogue name; `None` applies to
    /// every device.
    pub device: Option<String>,
    /// First minute of day the rule covers (inclusive).
    pub from_minute: u32,
    /// Last minute of day the rule covers (exclusive).
    pub to_minute: u32,
}

json_struct!(FaultRule { kind, device, from_minute, to_minute });

impl FaultRule {
    /// A rule covering every device all day.
    #[must_use]
    pub fn all_day(kind: FaultKind) -> Self {
        FaultRule { kind, device: None, from_minute: 0, to_minute: MINUTES_PER_DAY }
    }

    /// A rule covering one device all day.
    #[must_use]
    pub fn for_device(kind: FaultKind, device: impl Into<String>) -> Self {
        FaultRule { kind, device: Some(device.into()), from_minute: 0, to_minute: MINUTES_PER_DAY }
    }

    /// Restrict the rule to `[from, to)` minutes of day.
    #[must_use]
    pub fn between(mut self, from_minute: u32, to_minute: u32) -> Self {
        self.from_minute = from_minute;
        self.to_minute = to_minute;
        self
    }

    fn applies(&self, event: &ActivityEvent) -> bool {
        event.minute >= self.from_minute
            && event.minute < self.to_minute
            && self.device.as_deref().is_none_or_match(&event.device)
    }
}

/// Tiny helper so `Option<&str>` scope checks read declaratively.
trait DeviceScope {
    fn is_none_or_match(&self, device: &str) -> bool;
}

impl DeviceScope for Option<&str> {
    fn is_none_or_match(&self, device: &str) -> bool {
        match self {
            None => true,
            Some(d) => *d == device,
        }
    }
}

/// A seeded, serializable fault regime: the one robustness knob.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Base seed; every `(day, rule)` pair derives its own stream from it.
    pub seed: u64,
    /// Rules applied in order; later rules see earlier rules' output.
    pub rules: Vec<FaultRule>,
}

json_struct!(FaultPlan { seed, rules });

impl FaultPlan {
    /// The empty plan: injection is a bit-identical passthrough.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        FaultPlan { seed, rules: Vec::new() }
    }

    /// A single all-day, all-device drop rule — the canonical sweep knob.
    #[must_use]
    pub fn uniform_drop(seed: u64, rate: f64) -> Self {
        FaultPlan { seed, rules: vec![FaultRule::all_day(FaultKind::Drop { rate })] }
    }

    /// Validate rates and magnitudes.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid rule: a
    /// rate outside `[0, 1]` (or non-finite), a zero magnitude, or an empty
    /// minute range.
    pub fn validate(&self) -> Result<(), String> {
        for (i, rule) in self.rules.iter().enumerate() {
            let rate = rule.kind.rate();
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!("rule {i}: rate {rate} outside [0, 1]"));
            }
            match rule.kind {
                FaultKind::Delay { max_minutes: 0, .. } => {
                    return Err(format!("rule {i}: delay of 0 minutes"));
                }
                FaultKind::StuckAt { hold_minutes: 0, .. } => {
                    return Err(format!("rule {i}: stuck-at hold of 0 minutes"));
                }
                FaultKind::Offline { max_minutes: 0, .. } => {
                    return Err(format!("rule {i}: offline window of 0 minutes"));
                }
                _ => {}
            }
            if rule.from_minute >= rule.to_minute {
                return Err(format!(
                    "rule {i}: empty minute range {}..{}",
                    rule.from_minute, rule.to_minute
                ));
            }
        }
        Ok(())
    }
}

/// A known device outage: downstream consumers flag these intervals as gaps
/// instead of treating the silence as real.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OfflineWindow {
    /// The offline device's catalogue name.
    pub device: String,
    /// First offline minute (inclusive).
    pub from_minute: u32,
    /// Last offline minute (exclusive).
    pub to_minute: u32,
}

json_struct!(OfflineWindow { device, from_minute, to_minute });

impl OfflineWindow {
    /// Whether `minute` falls inside this window.
    #[must_use]
    pub fn covers(&self, minute: u32) -> bool {
        minute >= self.from_minute && minute < self.to_minute
    }
}

/// Counts of what the injector did to one day.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Events removed by `Drop` rules.
    pub dropped: usize,
    /// Extra events added by `Duplicate` rules.
    pub duplicated: usize,
    /// Events shifted later by `Delay` rules.
    pub delayed: usize,
    /// Sensor readings swallowed by `StuckAt` rules.
    pub stuck_suppressed: usize,
    /// Events swallowed inside `Offline` windows.
    pub offline_suppressed: usize,
}

json_struct!(FaultSummary {
    dropped,
    duplicated,
    delayed,
    stuck_suppressed,
    offline_suppressed,
});

impl FaultSummary {
    /// Total events affected across all fault models.
    #[must_use]
    pub fn total(&self) -> usize {
        self.dropped
            + self.duplicated
            + self.delayed
            + self.stuck_suppressed
            + self.offline_suppressed
    }
}

/// One day's event stream after fault injection.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedDay {
    /// Day index.
    pub day: u32,
    /// The corrupted event stream, re-sorted by `(minute, device)` like the
    /// clean stream.
    pub events: Vec<ActivityEvent>,
    /// Known outage windows opened by `Offline` rules.
    pub offline: Vec<OfflineWindow>,
    /// What the injector did.
    pub summary: FaultSummary,
}

json_struct!(FaultedDay { day, events, offline, summary });

/// Applies a validated [`FaultPlan`] to day event streams.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wrap a plan, validating it first.
    ///
    /// # Errors
    ///
    /// Returns the [`FaultPlan::validate`] message for an invalid plan.
    pub fn new(plan: FaultPlan) -> Result<Self, String> {
        plan.validate()?;
        Ok(FaultInjector { plan })
    }

    /// The wrapped plan.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Generate `day` from the dataset and inject faults into it.
    #[must_use]
    pub fn inject(&self, data: &HomeDataset, day: u32) -> FaultedDay {
        self.inject_day(&data.activity(day))
    }

    /// Inject faults into one day's event stream.
    #[must_use]
    pub fn inject_day(&self, activity: &DayActivity) -> FaultedDay {
        let mut events = activity.events.clone();
        let mut offline: Vec<OfflineWindow> = Vec::new();
        let mut summary = FaultSummary::default();

        for (idx, rule) in self.plan.rules.iter().enumerate() {
            // One independent stream per (seed, day, rule): rules never
            // perturb each other's draws, and days never correlate.
            let stream = u64::from(activity.day).wrapping_mul(0x1_0000) | idx as u64;
            let mut rng = rng_util::derive(self.plan.seed ^ 0xFA17_0000, stream);

            match rule.kind {
                FaultKind::Drop { rate } => {
                    events.retain(|e| {
                        // Always one draw per event so drop sets nest
                        // across rates under the same seed.
                        let u = rng.gen::<f64>();
                        let dropped = rule.applies(e) && u < rate;
                        if dropped {
                            summary.dropped += 1;
                        }
                        !dropped
                    });
                }
                FaultKind::Duplicate { rate } => {
                    let mut out = Vec::with_capacity(events.len());
                    for e in events {
                        let u = rng.gen::<f64>();
                        if rule.applies(&e) && u < rate {
                            summary.duplicated += 1;
                            out.push(e.clone());
                        }
                        out.push(e);
                    }
                    events = out;
                }
                FaultKind::Delay { rate, max_minutes } => {
                    for e in &mut events {
                        // Fixed two draws per event (decision + offset)
                        // regardless of outcome, for rate-nesting.
                        let u = rng.gen::<f64>();
                        let offset = rng.gen_range(1..=max_minutes);
                        if rule.applies(e) && u < rate {
                            e.minute = (e.minute + offset).min(MINUTES_PER_DAY - 1);
                            summary.delayed += 1;
                        }
                    }
                }
                FaultKind::StuckAt { rate, hold_minutes } => {
                    let mut held_until: BTreeMap<String, u32> = BTreeMap::new();
                    let mut out = Vec::with_capacity(events.len());
                    for e in events {
                        let u = rng.gen::<f64>();
                        if !rule.applies(&e) || !e.is_sensor {
                            out.push(e);
                            continue;
                        }
                        if held_until.get(&e.device).is_some_and(|&until| e.minute < until) {
                            summary.stuck_suppressed += 1;
                            continue;
                        }
                        if u < rate {
                            held_until.insert(e.device.clone(), e.minute + hold_minutes);
                            summary.stuck_suppressed += 1;
                            continue;
                        }
                        out.push(e);
                    }
                    events = out;
                }
                FaultKind::Offline { windows, max_minutes } => {
                    // Candidate devices: the scoped one, or every device
                    // seen in the (current) stream, sorted for determinism.
                    let candidates: Vec<String> = match &rule.device {
                        Some(d) => vec![d.clone()],
                        None => {
                            let mut names: Vec<String> =
                                events.iter().map(|e| e.device.clone()).collect();
                            names.sort();
                            names.dedup();
                            names
                        }
                    };
                    for _ in 0..windows {
                        // Fixed three draws per window even when no device
                        // qualifies, so plans stay draw-aligned.
                        let pick = rng.gen_range(0..u64::from(u32::MAX)) as usize;
                        let start = rng.gen_range(rule.from_minute..rule.to_minute);
                        let len = rng.gen_range(1..=max_minutes);
                        if candidates.is_empty() {
                            continue;
                        }
                        let device = candidates[pick % candidates.len()].clone();
                        let to = (start + len).min(MINUTES_PER_DAY);
                        offline.push(OfflineWindow { device, from_minute: start, to_minute: to });
                    }
                    events.retain(|e| {
                        let out = offline
                            .iter()
                            .any(|w| w.device == e.device && w.covers(e.minute));
                        if out {
                            summary.offline_suppressed += 1;
                        }
                        !out
                    });
                }
            }
        }

        // Restore the clean stream's canonical ordering. The sort is stable,
        // so with no mutations the output is bit-identical to the input.
        events.sort_by(|a, b| (a.minute, &a.device).cmp(&(b.minute, &b.device)));
        offline.sort_by(|a, b| {
            (a.from_minute, &a.device, a.to_minute).cmp(&(b.from_minute, &b.device, b.to_minute))
        });
        FaultedDay { day: activity.day, events, offline, summary }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jarvis_stdkit::json::{FromJson, ToJson};

    fn day() -> DayActivity {
        HomeDataset::home_a(7).activity(2)
    }

    #[test]
    fn empty_plan_is_bit_identical_passthrough() {
        let activity = day();
        let inj = FaultInjector::new(FaultPlan::none(3)).unwrap();
        let out = inj.inject_day(&activity);
        assert_eq!(out.events, activity.events);
        assert!(out.offline.is_empty());
        assert_eq!(out.summary, FaultSummary::default());
    }

    #[test]
    fn zero_rate_rules_are_bit_identical_passthrough() {
        let activity = day();
        let plan = FaultPlan {
            seed: 11,
            rules: vec![
                FaultRule::all_day(FaultKind::Drop { rate: 0.0 }),
                FaultRule::all_day(FaultKind::Duplicate { rate: 0.0 }),
                FaultRule::all_day(FaultKind::Delay { rate: 0.0, max_minutes: 5 }),
                FaultRule::all_day(FaultKind::StuckAt { rate: 0.0, hold_minutes: 5 }),
            ],
        };
        let out = FaultInjector::new(plan).unwrap().inject_day(&activity);
        assert_eq!(out.events, activity.events);
        assert_eq!(out.summary.total(), 0);
    }

    #[test]
    fn injection_is_deterministic_per_seed_and_plan() {
        let activity = day();
        let plan = FaultPlan {
            seed: 5,
            rules: vec![
                FaultRule::all_day(FaultKind::Drop { rate: 0.1 }),
                FaultRule::all_day(FaultKind::Delay { rate: 0.2, max_minutes: 10 }),
                FaultRule::all_day(FaultKind::Offline { windows: 2, max_minutes: 60 }),
            ],
        };
        let a = FaultInjector::new(plan.clone()).unwrap().inject_day(&activity);
        let b = FaultInjector::new(plan).unwrap().inject_day(&activity);
        assert_eq!(a, b);
        let other_seed = FaultInjector::new(FaultPlan {
            seed: 6,
            rules: vec![FaultRule::all_day(FaultKind::Drop { rate: 0.1 })],
        })
        .unwrap()
        .inject_day(&activity);
        assert_ne!(other_seed.events.len(), activity.events.len());
    }

    #[test]
    fn drop_sets_nest_across_rates() {
        let activity = day();
        let at = |rate| {
            FaultInjector::new(FaultPlan::uniform_drop(9, rate))
                .unwrap()
                .inject_day(&activity)
        };
        let low = at(0.02);
        let high = at(0.10);
        assert!(low.summary.dropped < high.summary.dropped);
        // Every event surviving the high rate also survives the low rate.
        for e in &high.events {
            assert!(low.events.contains(e), "non-nested drop at {}m {}", e.minute, e.device);
        }
    }

    #[test]
    fn duplicates_are_adjacent_copies() {
        let activity = day();
        let plan = FaultPlan {
            seed: 4,
            rules: vec![FaultRule::all_day(FaultKind::Duplicate { rate: 0.3 })],
        };
        let out = FaultInjector::new(plan).unwrap().inject_day(&activity);
        assert!(out.summary.duplicated > 0);
        assert_eq!(out.events.len(), activity.events.len() + out.summary.duplicated);
        let mut seen_dup = 0;
        for w in out.events.windows(2) {
            if w[0] == w[1] {
                seen_dup += 1;
            }
        }
        assert!(seen_dup >= 1, "duplicated events should sort adjacent");
    }

    #[test]
    fn delay_moves_events_later_and_within_day() {
        let activity = day();
        let plan = FaultPlan {
            seed: 8,
            rules: vec![FaultRule::all_day(FaultKind::Delay { rate: 1.0, max_minutes: 30 })],
        };
        let out = FaultInjector::new(plan).unwrap().inject_day(&activity);
        assert_eq!(out.summary.delayed, activity.events.len());
        assert!(out.events.iter().all(|e| e.minute < MINUTES_PER_DAY));
        let clean_total: u64 = activity.events.iter().map(|e| u64::from(e.minute)).sum();
        let fault_total: u64 = out.events.iter().map(|e| u64::from(e.minute)).sum();
        assert!(fault_total > clean_total, "delays must move events later");
    }

    #[test]
    fn offline_windows_suppress_their_device() {
        let activity = day();
        let plan = FaultPlan {
            seed: 2,
            rules: vec![FaultRule::all_day(FaultKind::Offline { windows: 3, max_minutes: 240 })],
        };
        let out = FaultInjector::new(plan).unwrap().inject_day(&activity);
        assert_eq!(out.offline.len(), 3);
        for e in &out.events {
            assert!(
                !out.offline.iter().any(|w| w.device == e.device && w.covers(e.minute)),
                "event {}m {} inside an offline window",
                e.minute,
                e.device
            );
        }
    }

    #[test]
    fn device_and_minute_scoping_respected() {
        let activity = day();
        let device = activity.events[0].device.clone();
        let plan = FaultPlan {
            seed: 1,
            rules: vec![FaultRule::for_device(FaultKind::Drop { rate: 1.0 }, device.clone())
                .between(0, 720)],
        };
        let out = FaultInjector::new(plan).unwrap().inject_day(&activity);
        for e in &out.events {
            assert!(e.device != device || e.minute >= 720);
        }
        // Events outside the scope are untouched.
        let untouched = activity
            .events
            .iter()
            .filter(|e| e.device != device || e.minute >= 720)
            .count();
        assert_eq!(out.events.len(), untouched);
    }

    #[test]
    fn stuck_at_suppresses_sensor_runs_only() {
        let activity = day();
        let plan = FaultPlan {
            seed: 3,
            rules: vec![FaultRule::all_day(FaultKind::StuckAt { rate: 0.5, hold_minutes: 120 })],
        };
        let out = FaultInjector::new(plan).unwrap().inject_day(&activity);
        assert!(out.summary.stuck_suppressed > 0);
        let clean_commands = activity.events.iter().filter(|e| !e.is_sensor).count();
        let fault_commands = out.events.iter().filter(|e| !e.is_sensor).count();
        assert_eq!(clean_commands, fault_commands, "commands are never stuck");
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan {
            seed: 77,
            rules: vec![
                FaultRule::all_day(FaultKind::Drop { rate: 0.05 }),
                FaultRule::for_device(FaultKind::Offline { windows: 1, max_minutes: 90 }, "lock")
                    .between(60, 600),
            ],
        };
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn faulted_day_round_trips_through_json() {
        let activity = day();
        let plan = FaultPlan {
            seed: 13,
            rules: vec![
                FaultRule::all_day(FaultKind::Drop { rate: 0.05 }),
                FaultRule::all_day(FaultKind::Offline { windows: 1, max_minutes: 45 }),
            ],
        };
        let out = FaultInjector::new(plan).unwrap().inject_day(&activity);
        let json = out.to_json();
        let back = FaultedDay::from_json(&json).unwrap();
        assert_eq!(back, out);
    }

    #[test]
    fn invalid_plans_rejected() {
        let bad_rate = FaultPlan {
            seed: 0,
            rules: vec![FaultRule::all_day(FaultKind::Drop { rate: 1.5 })],
        };
        assert!(FaultInjector::new(bad_rate).is_err());
        let bad_range = FaultPlan {
            seed: 0,
            rules: vec![FaultRule::all_day(FaultKind::Drop { rate: 0.1 }).between(100, 100)],
        };
        assert!(FaultInjector::new(bad_range).is_err());
        let zero_delay = FaultPlan {
            seed: 0,
            rules: vec![FaultRule::all_day(FaultKind::Delay { rate: 0.1, max_minutes: 0 })],
        };
        assert!(FaultInjector::new(zero_delay).is_err());
        let nan_rate = FaultPlan {
            seed: 0,
            rules: vec![FaultRule::all_day(FaultKind::Drop { rate: f64::NAN })],
        };
        assert!(FaultInjector::new(nan_rate).is_err());
    }
}
