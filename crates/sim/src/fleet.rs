//! Multi-home fleet generation: the workload source for the serving runtime.
//!
//! The paper's testbed is two homes; the ROADMAP north-star is a runtime
//! serving *fleets* of them. [`FleetGenerator`] scales the two seeded
//! testbed homes ([`HomeDataset::home_a`] / [`HomeDataset::home_b`]) to `N`
//! independent households: each fleet member gets its own SplitMix64-derived
//! seed (so member 7 of fleet seed 42 is the same home everywhere, but no
//! two members correlate) and alternates between the regular Home-A and the
//! noisier Home-B behavioral archetypes.
//!
//! [`FleetGenerator::day_events`] merges every member's daily activity into
//! one fleet-wide stream sorted by `(minute, home)` — exactly the arrival
//! order a multi-tenant event router would see — which both the runtime
//! throughput benchmark and the fault-matrix experiments replay.

use crate::dataset::{ActivityEvent, HomeDataset};
use jarvis_stdkit::json_struct;

/// One event in a merged fleet-wide stream: a member's activity event tagged
/// with the home that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetEvent {
    /// Fleet member index in `0..num_homes`.
    pub home: u32,
    /// The member's activity event.
    pub event: ActivityEvent,
}

json_struct!(FleetEvent { home, event });

/// A deterministic generator of `N` independent simulated households.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetGenerator {
    seed: u64,
    homes: u32,
}

json_struct!(FleetGenerator { seed, homes });

impl FleetGenerator {
    /// A fleet of `homes` households derived from one base `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `homes` is zero.
    #[must_use]
    pub fn new(seed: u64, homes: u32) -> Self {
        assert!(homes > 0, "a fleet needs at least one home");
        FleetGenerator { seed, homes }
    }

    /// Number of homes in the fleet.
    #[must_use]
    pub fn num_homes(&self) -> u32 {
        self.homes
    }

    /// The base seed the fleet derives from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The member seed for home `idx` (SplitMix64 mixing of `(seed, idx)`,
    /// matching the per-stream derivation used inside the trace generators).
    #[must_use]
    pub fn member_seed(&self, idx: u32) -> u64 {
        let mut z = self.seed ^ u64::from(idx).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The dataset of fleet member `idx`: even members follow the regular
    /// Home-A archetype, odd members the noisier Home-B archetype.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    #[must_use]
    pub fn dataset(&self, idx: u32) -> HomeDataset {
        assert!(idx < self.homes, "home {idx} outside fleet of {}", self.homes);
        let member_seed = self.member_seed(idx);
        if idx % 2 == 0 {
            HomeDataset::home_a(member_seed)
        } else {
            HomeDataset::home_b(member_seed)
        }
    }

    /// Every member's activity for `day`, merged into one stream sorted by
    /// `(minute, home)` — the arrival order a fleet-wide event router sees.
    #[must_use]
    pub fn day_events(&self, day: u32) -> Vec<FleetEvent> {
        let mut merged: Vec<FleetEvent> = Vec::new();
        for idx in 0..self.homes {
            let activity = self.dataset(idx).activity(day);
            merged.extend(
                activity.events.into_iter().map(|event| FleetEvent { home: idx, event }),
            );
        }
        // Per-home event order is already (minute, device); a stable sort on
        // (minute, home) preserves it inside each member.
        merged.sort_by_key(|e| (e.event.minute, e.home));
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_deterministic_per_seed() {
        let a = FleetGenerator::new(7, 4).day_events(2);
        let b = FleetGenerator::new(7, 4).day_events(2);
        assert_eq!(a, b);
        let c = FleetGenerator::new(8, 4).day_events(2);
        assert_ne!(a, c, "different fleet seeds should differ");
    }

    #[test]
    fn members_are_stable_under_fleet_growth() {
        // Growing the fleet never changes existing members' behavior.
        let small = FleetGenerator::new(3, 2);
        let large = FleetGenerator::new(3, 8);
        for idx in 0..2 {
            assert_eq!(small.dataset(idx), large.dataset(idx));
        }
    }

    #[test]
    fn members_do_not_correlate() {
        let fleet = FleetGenerator::new(5, 4);
        let a = fleet.dataset(0).activity(1);
        let b = fleet.dataset(2).activity(1); // same archetype, different seed
        assert_ne!(a.events, b.events, "derived seeds must decorrelate members");
    }

    #[test]
    fn day_events_are_sorted_and_complete() {
        let fleet = FleetGenerator::new(11, 3);
        let merged = fleet.day_events(4);
        assert!(
            merged.windows(2).all(|w| (w[0].event.minute, w[0].home)
                <= (w[1].event.minute, w[1].home)),
            "merged stream must be sorted by (minute, home)"
        );
        let per_home: usize = (0..3)
            .map(|idx| fleet.dataset(idx).activity(4).events.len())
            .sum();
        assert_eq!(merged.len(), per_home, "merge must not drop events");
        assert!(merged.iter().any(|e| e.home == 2), "every member contributes");
    }
}
