//! Dataset simulators for the Jarvis evaluation testbed.
//!
//! The paper's experiments consume four external data sources that are not
//! redistributable here; this crate regenerates statistically similar data
//! with seeded, reproducible generators (see DESIGN.md for the substitution
//! argument):
//!
//! | Paper source | Module |
//! |---|---|
//! | OpenSHS simulated daily activities (Home A) | [`occupancy`] |
//! | Smart\* real-home power traces (Home B) | [`traces`] |
//! | SIMADL user-labelled benign anomalies | [`anomaly`] |
//! | ERCOT day-ahead-market electricity prices | [`prices`] |
//!
//! Two physical models support the functionality experiments: an outdoor
//! [`weather`] model (with day-ahead forecasts, for Figure 8) and a
//! first-order house [`thermal`] model coupling HVAC action to indoor
//! temperature.
//!
//! All generators are deterministic functions of a `u64` seed, so every
//! experiment in the benchmark harness is reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod chaos;
pub mod dataset;
pub mod drift;
pub mod faults;
pub mod fleet;
pub mod occupancy;
pub mod prices;
pub mod thermal;
pub mod traces;
pub mod weather;

pub use anomaly::{AnomalyClass, AnomalyGenerator, AnomalyInstance};
pub use chaos::{ChaosFire, ChaosInjector, ChaosKind, ChaosPlan, ChaosRule, ChaosSchedule};
pub use dataset::{ActivityEvent, DayActivity, HomeDataset};
pub use drift::DriftSchedule;
pub use faults::{
    FaultInjector, FaultKind, FaultPlan, FaultRule, FaultSummary, FaultedDay, OfflineWindow,
};
pub use fleet::{FleetEvent, FleetGenerator};
pub use occupancy::{DaySchedule, Household, OccupantProfile, Presence};
pub use prices::DamPrices;
pub use thermal::{HvacMode, ThermalModel};
pub use traces::{DayTrace, DeviceTrace, TraceGenerator};
pub use weather::WeatherModel;

/// Minutes per simulated day.
pub const MINUTES_PER_DAY: u32 = 1440;

pub(crate) mod rng_util {
    //! Seed-derivation helpers so independent streams (per day, per device)
    //! never correlate.

    use jarvis_stdkit::rng::SeedableRng;
    use jarvis_stdkit::rng::ChaCha8Rng;

    /// A ChaCha stream derived from a base seed and a stream label.
    pub fn derive(seed: u64, stream: u64) -> ChaCha8Rng {
        // SplitMix64-style mixing keeps nearby (seed, stream) pairs apart.
        let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ChaCha8Rng::seed_from_u64(z ^ (z >> 31))
    }

    /// Approximately normal sample via the sum of 12 uniforms (Irwin–Hall).
    pub fn approx_normal(rng: &mut impl jarvis_stdkit::rng::Rng, mean: f64, std: f64) -> f64 {
        let sum: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
        mean + (sum - 6.0) * std
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use jarvis_stdkit::rng::RngCore;

        #[test]
        fn derive_is_deterministic_and_stream_separated() {
            let mut a = derive(1, 2);
            let mut b = derive(1, 2);
            let mut c = derive(1, 3);
            assert_eq!(a.next_u64(), b.next_u64());
            assert_ne!(derive(1, 2).next_u64(), c.next_u64());
        }

        #[test]
        fn approx_normal_moments() {
            let mut rng = derive(42, 0);
            let n = 20_000;
            let samples: Vec<f64> =
                (0..n).map(|_| approx_normal(&mut rng, 5.0, 2.0)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
            assert!((var - 4.0).abs() < 0.3, "var {var}");
        }
    }
}
