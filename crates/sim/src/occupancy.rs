//! OpenSHS-style occupant simulation: daily schedules with stochastic
//! jitter, producing per-minute presence states.
//!
//! The paper builds Home A's datasets with the Open Smart Home Simulator
//! (\[17\]) driven by scripted daily user activities (\[18\]). This module
//! regenerates equivalent data: each occupant follows a wake → leave →
//! return → sleep routine whose times jitter day-to-day, with optional
//! stay-home weekend behavior — the exact periodic-but-noisy structure the
//! SPL's learning phase and the dis-utility estimate (closest preferred time
//! `t'`) rely on.

use crate::rng_util;
use crate::MINUTES_PER_DAY;
use jarvis_stdkit::rng::Rng;
use jarvis_stdkit::{json_enum, json_struct};

/// Presence state of one occupant at a given minute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Presence {
    /// Awake and at home.
    Home,
    /// Out of the house.
    Away,
    /// At home, asleep.
    Asleep,
}

json_enum!(Presence { Home, Away, Asleep });

/// Habitual schedule of one occupant (mean minutes of day, with jitter
/// standard deviations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupantProfile {
    /// Mean wake-up minute (e.g. 390 = 06:30).
    pub wake_mean: u32,
    /// Mean leave-for-work minute.
    pub leave_mean: u32,
    /// Mean return-home minute.
    pub return_mean: u32,
    /// Mean go-to-sleep minute.
    pub sleep_mean: u32,
    /// Jitter standard deviation in minutes applied to every time.
    pub jitter_std: f64,
    /// Probability of staying home all day on a weekend day.
    pub weekend_home_prob: f64,
}

json_struct!(OccupantProfile { wake_mean, leave_mean, return_mean, sleep_mean, jitter_std, weekend_home_prob });

impl OccupantProfile {
    /// A typical full-time worker: wake 06:30, leave 08:00, return 18:00,
    /// sleep 23:00, 25-minute jitter, 60 % of weekend days at home.
    #[must_use]
    pub fn worker() -> Self {
        OccupantProfile {
            wake_mean: 6 * 60 + 30,
            leave_mean: 8 * 60,
            return_mean: 18 * 60,
            sleep_mean: 23 * 60,
            jitter_std: 25.0,
            weekend_home_prob: 0.6,
        }
    }

    /// A mostly-home occupant (retiree / remote worker): short errand
    /// mid-day instead of a work block.
    #[must_use]
    pub fn homebody() -> Self {
        OccupantProfile {
            wake_mean: 7 * 60 + 30,
            leave_mean: 11 * 60,
            return_mean: 12 * 60 + 30,
            sleep_mean: 22 * 60 + 30,
            jitter_std: 40.0,
            weekend_home_prob: 0.8,
        }
    }

    /// Sample this occupant's concrete schedule for `day` under `seed`.
    #[must_use]
    pub fn sample_day(&self, seed: u64, occupant: u32, day: u32) -> DaySchedule {
        let mut rng =
            rng_util::derive(seed, (u64::from(occupant) << 32) | u64::from(day));
        let jitter = |rng: &mut jarvis_stdkit::rng::ChaCha8Rng, mean: u32| -> u32 {
            let v = rng_util::approx_normal(rng, f64::from(mean), self.jitter_std);
            (v.round().max(0.0) as u32).min(MINUTES_PER_DAY - 1)
        };
        let wake = jitter(&mut rng, self.wake_mean);
        let weekend = matches!(day % 7, 5 | 6);
        let stays_home = weekend && rng.gen::<f64>() < self.weekend_home_prob;
        let (leave, ret) = if stays_home {
            (None, None)
        } else {
            let leave = jitter(&mut rng, self.leave_mean).max(wake + 1);
            let ret = jitter(&mut rng, self.return_mean).max(leave + 1);
            (Some(leave), Some(ret))
        };
        let sleep = jitter(&mut rng, self.sleep_mean)
            .max(ret.map_or(wake + 1, |r| r + 1))
            .min(MINUTES_PER_DAY - 1);
        DaySchedule { wake, leave, ret, sleep }
    }
}

/// One occupant's concrete schedule for a single day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaySchedule {
    /// Wake-up minute.
    pub wake: u32,
    /// Leave-home minute (`None` = stays home all day).
    pub leave: Option<u32>,
    /// Return-home minute (`None` = stays home all day).
    pub ret: Option<u32>,
    /// Go-to-sleep minute.
    pub sleep: u32,
}

json_struct!(DaySchedule { wake, leave, ret, sleep });

impl DaySchedule {
    /// Presence at `minute` of this day.
    #[must_use]
    pub fn presence(&self, minute: u32) -> Presence {
        if minute < self.wake || minute >= self.sleep {
            return Presence::Asleep;
        }
        if let (Some(leave), Some(ret)) = (self.leave, self.ret) {
            if (leave..ret).contains(&minute) {
                return Presence::Away;
            }
        }
        Presence::Home
    }

    /// True when the occupant is in the house (home or asleep).
    #[must_use]
    pub fn in_house(&self, minute: u32) -> bool {
        self.presence(minute) != Presence::Away
    }
}

/// A household of occupants sharing one home and one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Household {
    seed: u64,
    occupants: Vec<OccupantProfile>,
}

json_struct!(Household { seed, occupants });

impl Household {
    /// Build a household.
    ///
    /// # Panics
    ///
    /// Panics when `occupants` is empty.
    #[must_use]
    pub fn new(seed: u64, occupants: Vec<OccupantProfile>) -> Self {
        assert!(!occupants.is_empty(), "a household needs at least one occupant");
        Household { seed, occupants }
    }

    /// Number of occupants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.occupants.len()
    }

    /// True when the household has no occupants (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.occupants.is_empty()
    }

    /// Sampled schedules of every occupant for `day`.
    #[must_use]
    pub fn day(&self, day: u32) -> Vec<DaySchedule> {
        self.occupants
            .iter()
            .enumerate()
            .map(|(i, p)| p.sample_day(self.seed, i as u32, day))
            .collect()
    }

    /// True when anyone is in the house (home or asleep) at `minute` of
    /// `day`.
    #[must_use]
    pub fn anyone_in_house(&self, day: u32, minute: u32) -> bool {
        self.day(day).iter().any(|s| s.in_house(minute))
    }

    /// True when anyone is awake at home at `minute` of `day`.
    #[must_use]
    pub fn anyone_home_awake(&self, day: u32, minute: u32) -> bool {
        self.day(day).iter().any(|s| s.presence(minute) == Presence::Home)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_orders_events() {
        let p = OccupantProfile::worker();
        for day in 0..60 {
            let s = p.sample_day(1, 0, day);
            assert!(s.wake < s.sleep, "day {day}: {s:?}");
            if let (Some(l), Some(r)) = (s.leave, s.ret) {
                assert!(s.wake < l && l < r && r <= s.sleep, "day {day}: {s:?}");
            }
        }
    }

    #[test]
    fn presence_phases() {
        let s = DaySchedule { wake: 390, leave: Some(480), ret: Some(1080), sleep: 1380 };
        assert_eq!(s.presence(100), Presence::Asleep);
        assert_eq!(s.presence(400), Presence::Home);
        assert_eq!(s.presence(700), Presence::Away);
        assert_eq!(s.presence(1100), Presence::Home);
        assert_eq!(s.presence(1400), Presence::Asleep);
        assert!(!s.in_house(700));
        assert!(s.in_house(100));
    }

    #[test]
    fn stay_home_day_has_no_away() {
        let s = DaySchedule { wake: 400, leave: None, ret: None, sleep: 1350 };
        for m in (0..MINUTES_PER_DAY).step_by(17) {
            assert_ne!(s.presence(m), Presence::Away);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = OccupantProfile::worker();
        assert_eq!(p.sample_day(9, 0, 3), p.sample_day(9, 0, 3));
        assert_ne!(p.sample_day(9, 0, 3), p.sample_day(10, 0, 3));
    }

    #[test]
    fn jitter_varies_across_days() {
        let p = OccupantProfile::worker();
        let wakes: std::collections::HashSet<u32> =
            (0..20).map(|d| p.sample_day(4, 0, d).wake).collect();
        assert!(wakes.len() > 5, "wake times should jitter: {wakes:?}");
    }

    #[test]
    fn weekday_leave_times_cluster_around_mean() {
        let p = OccupantProfile::worker();
        let leaves: Vec<u32> = (0..200)
            .filter(|d| d % 7 < 5)
            .filter_map(|d| p.sample_day(2, 0, d).leave)
            .collect();
        let mean: f64 = leaves.iter().map(|&l| f64::from(l)).sum::<f64>() / leaves.len() as f64;
        assert!((mean - 480.0).abs() < 15.0, "mean leave {mean}");
    }

    #[test]
    fn some_weekends_are_stay_home() {
        let p = OccupantProfile::worker();
        let weekend_days: Vec<DaySchedule> =
            (0..140).filter(|d| d % 7 >= 5).map(|d| p.sample_day(8, 0, d)).collect();
        let home_days = weekend_days.iter().filter(|s| s.leave.is_none()).count();
        assert!(home_days > 0, "expected some stay-home weekend days");
        assert!(home_days < weekend_days.len(), "expected some outings too");
    }

    #[test]
    fn household_aggregation() {
        let h = Household::new(
            5,
            vec![OccupantProfile::worker(), OccupantProfile::homebody()],
        );
        assert_eq!(h.len(), 2);
        assert_eq!(h.day(0).len(), 2);
        // At 03:00 everyone is asleep → in house but not awake.
        assert!(h.anyone_in_house(0, 180));
        assert!(!h.anyone_home_awake(0, 180));
    }

    #[test]
    #[should_panic(expected = "at least one occupant")]
    fn empty_household_panics() {
        let _ = Household::new(0, vec![]);
    }
}
