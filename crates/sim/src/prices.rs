//! Day-ahead-market (DAM) electricity prices, standing in for the ERCOT data
//! the paper's cost-minimization reward consumes (Section VI-D, Figure 7).
//!
//! The generator reproduces the structure cost optimization actually
//! exploits: a deep night valley, a morning ramp, an afternoon/evening peak,
//! cheaper weekends, and day-to-day noise.

use crate::rng_util;
use jarvis_stdkit::rng::Rng;
use jarvis_stdkit::{json_struct};

/// Hourly base curve in $/MWh (ERCOT-like weekday shape).
const BASE_CURVE: [f64; 24] = [
    19.0, 18.0, 17.5, 17.0, 17.5, 19.0, // 00–05: night valley
    24.0, 32.0, 38.0, 42.0, 46.0, 52.0, // 06–11: morning ramp
    58.0, 66.0, 78.0, 92.0, 105.0, 112.0, // 12–17: build to peak
    98.0, 80.0, 60.0, 44.0, 32.0, 24.0, // 18–23: evening decline
];

/// Seeded day-ahead hourly electricity prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DamPrices {
    seed: u64,
}

json_struct!(DamPrices { seed });

impl DamPrices {
    /// Price model seeded by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        DamPrices { seed }
    }

    /// Price in $/kWh on `day` (0-based; day 0 is a Monday) during `hour`.
    ///
    /// # Panics
    ///
    /// Panics when `hour >= 24`.
    #[must_use]
    pub fn price_per_kwh(&self, day: u32, hour: u32) -> f64 {
        assert!(hour < 24, "hour {hour} out of range");
        let mut rng = rng_util::derive(self.seed, (u64::from(day) << 8) | u64::from(hour));
        let weekend = matches!(day % 7, 5 | 6);
        let scale = if weekend { 0.82 } else { 1.0 };
        let noise = 1.0 + rng.gen_range(-0.15_f64..=0.15);
        (BASE_CURVE[hour as usize] * scale * noise / 1000.0).max(0.001)
    }

    /// The full 24-hour price vector of a day, $/kWh.
    #[must_use]
    pub fn day_curve(&self, day: u32) -> [f64; 24] {
        std::array::from_fn(|h| self.price_per_kwh(day, h as u32))
    }

    /// The cheapest hour of `day` within `hours` (a half-open range of hour
    /// indices); `None` for an empty range. This is the "closest off-peak
    /// hour" query behind Table III's cost-minimization rows.
    #[must_use]
    pub fn cheapest_hour(&self, day: u32, hours: std::ops::Range<u32>) -> Option<u32> {
        hours
            .filter(|&h| h < 24)
            .min_by(|&a, &b| {
                self.price_per_kwh(day, a)
                    .partial_cmp(&self.price_per_kwh(day, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// True in the conventional off-peak window (22:00–06:00).
    #[must_use]
    pub fn is_off_peak(hour: u32) -> bool {
        !(6..22).contains(&hour)
    }

    /// Mean price of a day, $/kWh.
    #[must_use]
    pub fn day_mean(&self, day: u32) -> f64 {
        self.day_curve(day).iter().sum::<f64>() / 24.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = DamPrices::new(1);
        let b = DamPrices::new(1);
        assert_eq!(a.day_curve(3), b.day_curve(3));
        assert_ne!(a.day_curve(3), DamPrices::new(2).day_curve(3));
    }

    #[test]
    fn peak_exceeds_valley() {
        let p = DamPrices::new(7);
        for day in 0..14 {
            let peak = p.price_per_kwh(day, 17);
            let valley = p.price_per_kwh(day, 3);
            assert!(peak > 2.0 * valley, "day {day}: peak {peak} valley {valley}");
        }
    }

    #[test]
    fn weekends_cheaper_on_average() {
        let p = DamPrices::new(7);
        let weekday: f64 = (0..20).filter(|d| d % 7 < 5).map(|d| p.day_mean(d)).sum::<f64>();
        let weekday = weekday / (0..20).filter(|d| d % 7 < 5).count() as f64;
        let weekend: f64 = (0..20).filter(|d| d % 7 >= 5).map(|d| p.day_mean(d)).sum::<f64>();
        let weekend = weekend / (0..20).filter(|d| d % 7 >= 5).count() as f64;
        assert!(weekend < weekday, "weekend {weekend} weekday {weekday}");
    }

    #[test]
    fn cheapest_hour_is_at_night() {
        let p = DamPrices::new(3);
        for day in 0..7 {
            let h = p.cheapest_hour(day, 0..24).unwrap();
            assert!(DamPrices::is_off_peak(h), "day {day}: cheapest hour {h}");
        }
    }

    #[test]
    fn cheapest_hour_respects_range() {
        let p = DamPrices::new(3);
        let h = p.cheapest_hour(0, 12..18).unwrap();
        assert!((12..18).contains(&h));
        assert_eq!(p.cheapest_hour(0, 10..10), None);
        // Out-of-range hours are ignored.
        assert_eq!(p.cheapest_hour(0, 24..30), None);
    }

    #[test]
    fn prices_positive_and_plausible() {
        let p = DamPrices::new(11);
        for day in 0..30 {
            for (h, price) in p.day_curve(day).iter().enumerate() {
                assert!(
                    (0.001..0.2).contains(price),
                    "day {day} hour {h}: {price} $/kWh"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hour_out_of_range_panics() {
        let _ = DamPrices::new(0).price_per_kwh(0, 24);
    }

    #[test]
    fn off_peak_window() {
        assert!(DamPrices::is_off_peak(23));
        assert!(DamPrices::is_off_peak(3));
        assert!(!DamPrices::is_off_peak(12));
        assert!(!DamPrices::is_off_peak(17));
    }
}
