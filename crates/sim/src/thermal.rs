//! First-order house thermal model coupling HVAC action to indoor
//! temperature.
//!
//! The functionality experiments need indoor temperature to *respond* to the
//! agent's thermostat actions: leaving the heater off lets the home drift
//! toward the outdoor temperature; running it pulls the home toward comfort.
//! A first-order RC (lumped-capacitance) model captures exactly that and is
//! the standard substrate in the smart-home RL literature the paper builds
//! on (\[7\], \[33\]).


use jarvis_stdkit::{json_enum, json_struct};

/// HVAC operating mode at one time instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HvacMode {
    /// Equipment off: the house drifts toward outdoor temperature.
    Off,
    /// Heating at full capacity.
    Heat,
    /// Cooling at full capacity.
    Cool,
}

json_enum!(HvacMode { Off, Heat, Cool });

/// Lumped-capacitance thermal model:
/// `T_in ← T_in + Δt·(T_out − T_in)/τ + Δt·hvac_rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Envelope time constant τ in minutes (bigger = better insulated).
    tau_min: f64,
    /// Heating rate, °C per minute at full capacity.
    heat_rate: f64,
    /// Cooling rate, °C per minute at full capacity (positive magnitude).
    cool_rate: f64,
}

json_struct!(ThermalModel { tau_min, heat_rate, cool_rate });

impl ThermalModel {
    /// Build a model.
    ///
    /// # Panics
    ///
    /// Panics unless all parameters are positive.
    #[must_use]
    pub fn new(tau_min: f64, heat_rate: f64, cool_rate: f64) -> Self {
        assert!(
            tau_min > 0.0 && heat_rate > 0.0 && cool_rate > 0.0,
            "thermal parameters must be positive"
        );
        ThermalModel { tau_min, heat_rate, cool_rate }
    }

    /// A typical single-family home: τ = 180 min, heat 0.18 °C/min,
    /// cool 0.15 °C/min (furnace sized to hold a 30 °C indoor-outdoor
    /// difference, the standard design criterion).
    #[must_use]
    pub fn typical_home() -> Self {
        ThermalModel::new(180.0, 0.18, 0.15)
    }

    /// Advance the indoor temperature by `dt_min` minutes.
    #[must_use]
    pub fn step(&self, t_in: f64, t_out: f64, mode: HvacMode, dt_min: f64) -> f64 {
        let leak = (t_out - t_in) * (dt_min / self.tau_min);
        let hvac = match mode {
            HvacMode::Off => 0.0,
            HvacMode::Heat => self.heat_rate * dt_min,
            HvacMode::Cool => -self.cool_rate * dt_min,
        };
        t_in + leak + hvac
    }

    /// Simulate a whole day at 1-minute resolution.
    ///
    /// `outdoor(m)` gives the outdoor temperature at minute `m`; `mode(m)`
    /// the HVAC mode chosen for minute `m`. Returns the 1440-sample indoor
    /// trajectory starting from `t0` (sample `i` is the temperature entering
    /// minute `i`).
    pub fn simulate_day(
        &self,
        t0: f64,
        outdoor: impl Fn(u32) -> f64,
        mode: impl Fn(u32) -> HvacMode,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(crate::MINUTES_PER_DAY as usize);
        let mut t = t0;
        for m in 0..crate::MINUTES_PER_DAY {
            out.push(t);
            t = self.step(t, outdoor(m), mode(m), 1.0);
        }
        out
    }

    /// Electrical power draw of the equipment in `mode`, in watts (typical
    /// residential heat pump).
    #[must_use]
    pub fn power_w(mode: HvacMode) -> f64 {
        match mode {
            HvacMode::Off => 0.0,
            HvacMode::Heat => 2_000.0,
            HvacMode::Cool => 1_800.0,
        }
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel::typical_home()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_drifts_toward_outdoor() {
        let m = ThermalModel::typical_home();
        let mut t = 21.0;
        for _ in 0..600 {
            t = m.step(t, 0.0, HvacMode::Off, 1.0);
        }
        assert!(t < 5.0, "after 10 h unheated at 0 °C out: {t}");
        assert!(t > -1.0, "cannot drop below outdoor: {t}");
    }

    #[test]
    fn heating_beats_leakage_in_cold() {
        let m = ThermalModel::typical_home();
        let mut t = 15.0;
        for _ in 0..120 {
            t = m.step(t, -5.0, HvacMode::Heat, 1.0);
        }
        assert!(t > 17.0, "2 h of heating should warm the house: {t}");
    }

    #[test]
    fn cooling_lowers_temperature_in_heat() {
        let m = ThermalModel::typical_home();
        let mut t = 28.0;
        for _ in 0..120 {
            t = m.step(t, 35.0, HvacMode::Cool, 1.0);
        }
        assert!(t < 26.0, "2 h of cooling should cool the house: {t}");
    }

    #[test]
    fn equilibrium_is_outdoor_when_off() {
        let m = ThermalModel::typical_home();
        // At t_in == t_out, Off is a fixed point.
        assert!((m.step(10.0, 10.0, HvacMode::Off, 1.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn simulate_day_length_and_continuity() {
        let m = ThermalModel::typical_home();
        let traj = m.simulate_day(20.0, |_| 5.0, |_| HvacMode::Off);
        assert_eq!(traj.len(), 1440);
        assert_eq!(traj[0], 20.0);
        for w in traj.windows(2) {
            assert!((w[1] - w[0]).abs() < 0.3, "1-minute jump too large");
        }
        // Monotone decay toward 5 °C.
        assert!(traj[1439] < traj[0]);
        assert!(traj[1439] > 5.0);
    }

    #[test]
    fn power_model() {
        assert_eq!(ThermalModel::power_w(HvacMode::Off), 0.0);
        assert!(ThermalModel::power_w(HvacMode::Heat) > 0.0);
        assert!(ThermalModel::power_w(HvacMode::Cool) > 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_parameters_panic() {
        let _ = ThermalModel::new(0.0, 0.1, 0.1);
    }
}
