//! Smart\*-style per-device household power traces ("normal user behavior").
//!
//! The functionality experiments (Figures 6–8) compare Jarvis-optimized
//! behavior against the *normal* behavior recorded in the Smart\* dataset
//! (\[18\]). This generator reproduces a residential day at 1-minute
//! resolution: a cycling fridge, presence-driven lights/TV/oven/washer/
//! dishwasher, a hysteresis-controlled HVAC coupled to the [`WeatherModel`]
//! and [`ThermalModel`], and always-on sensor standby loads — with per-device
//! wattages in the ranges the Smart\* paper reports.

use crate::occupancy::{Household, OccupantProfile};
use crate::rng_util;
use crate::thermal::{HvacMode, ThermalModel};
use crate::weather::WeatherModel;
use crate::MINUTES_PER_DAY;
use jarvis_stdkit::rng::Rng;
use jarvis_stdkit::{json_struct};

/// One device's day at 1-minute resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceTrace {
    /// Device name, matching the smart-home catalogue.
    pub name: String,
    /// Whether the device is actively running at each minute.
    pub on: Vec<bool>,
    /// Instantaneous power draw in watts at each minute.
    pub power_w: Vec<f64>,
}

json_struct!(DeviceTrace { name, on, power_w });

impl DeviceTrace {
    fn flat(name: &str, on: bool, watts: f64) -> Self {
        DeviceTrace {
            name: name.to_owned(),
            on: vec![on; MINUTES_PER_DAY as usize],
            power_w: vec![watts; MINUTES_PER_DAY as usize],
        }
    }

    /// Total energy over the day in kWh.
    #[must_use]
    pub fn energy_kwh(&self) -> f64 {
        self.power_w.iter().sum::<f64>() / 60.0 / 1000.0
    }

    /// Minutes the device spent running.
    #[must_use]
    pub fn minutes_on(&self) -> usize {
        self.on.iter().filter(|&&b| b).count()
    }

    /// On/off edges as `(minute, turned_on)` pairs, excluding minute 0.
    #[must_use]
    pub fn edges(&self) -> Vec<(u32, bool)> {
        let mut out = Vec::new();
        for m in 1..self.on.len() {
            if self.on[m] != self.on[m - 1] {
                out.push((m as u32, self.on[m]));
            }
        }
        out
    }
}

/// A full household day: every device trace plus the indoor-temperature
/// trajectory under the household's own (normal) HVAC behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct DayTrace {
    /// Day index.
    pub day: u32,
    /// Per-device traces.
    pub devices: Vec<DeviceTrace>,
    /// Indoor temperature at each minute (°C).
    pub indoor_temp: Vec<f64>,
    /// HVAC mode actually run at each minute.
    pub hvac_mode: Vec<HvacMode>,
}

json_struct!(DayTrace { day, devices, indoor_temp, hvac_mode });

impl DayTrace {
    /// Find a device trace by name.
    #[must_use]
    pub fn device(&self, name: &str) -> Option<&DeviceTrace> {
        self.devices.iter().find(|d| d.name == name)
    }

    /// Whole-home energy for the day in kWh.
    #[must_use]
    pub fn total_energy_kwh(&self) -> f64 {
        self.devices.iter().map(DeviceTrace::energy_kwh).sum()
    }

    /// Whole-home power at `minute` in watts.
    #[must_use]
    pub fn total_power_w(&self, minute: u32) -> f64 {
        self.devices
            .iter()
            .map(|d| d.power_w.get(minute as usize).copied().unwrap_or(0.0))
            .sum()
    }
}

/// Generates household day traces from occupancy, weather, and a thermal
/// model.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGenerator {
    seed: u64,
    household: Household,
    weather: WeatherModel,
    thermal: ThermalModel,
    /// Comfort setpoint while awake at home (°C).
    pub setpoint: f64,
    /// Setback target while asleep (°C).
    pub setback: f64,
}

json_struct!(TraceGenerator { seed, household, weather, thermal, setpoint, setback });

/// The eleven devices of the evaluation home (`k = 11` in Section VI-D).
pub const DEVICE_NAMES: [&str; 11] = [
    "lock",
    "door_sensor",
    "light",
    "thermostat",
    "temp_sensor",
    "fridge",
    "oven",
    "tv",
    "washer",
    "dishwasher",
    "water_heater",
];

impl TraceGenerator {
    /// Generator for a two-worker household under `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TraceGenerator::with_household(
            seed,
            Household::new(
                seed,
                vec![OccupantProfile::worker(), OccupantProfile::homebody()],
            ),
        )
    }

    /// Generator with an explicit household.
    #[must_use]
    pub fn with_household(seed: u64, household: Household) -> Self {
        TraceGenerator {
            seed,
            household,
            weather: WeatherModel::new(seed ^ 0x57EA),
            thermal: ThermalModel::typical_home(),
            setpoint: 21.0,
            setback: 17.0,
        }
    }

    /// The weather model driving the HVAC.
    #[must_use]
    pub fn weather(&self) -> &WeatherModel {
        &self.weather
    }

    /// The household whose presence drives device usage.
    #[must_use]
    pub fn household(&self) -> &Household {
        &self.household
    }

    /// The thermal model of the house envelope.
    #[must_use]
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// Generate the full trace for `day`.
    #[must_use]
    pub fn day(&self, day: u32) -> DayTrace {
        let n = MINUTES_PER_DAY as usize;
        let schedules = self.household.day(day);
        let in_house: Vec<bool> = (0..MINUTES_PER_DAY)
            .map(|m| schedules.iter().any(|s| s.in_house(m)))
            .collect();
        let awake_home: Vec<bool> = (0..MINUTES_PER_DAY)
            .map(|m| {
                schedules
                    .iter()
                    .any(|s| s.presence(m) == crate::occupancy::Presence::Home)
            })
            .collect();
        let mut rng = rng_util::derive(self.seed, 0x7AC0_0000 | u64::from(day));

        // HVAC under normal (hysteresis) behavior, coupled to weather.
        let mut indoor = Vec::with_capacity(n);
        let mut hvac_mode = Vec::with_capacity(n);
        let mut t_in = self.setback + rng.gen_range(-0.5_f64..=0.5);
        let mut mode = HvacMode::Off;
        for m in 0..MINUTES_PER_DAY {
            let t_out = self.weather.outdoor_temp(day, m);
            let target = if !in_house[m as usize] {
                None
            } else if awake_home[m as usize] {
                Some(self.setpoint)
            } else {
                Some(self.setback)
            };
            mode = match target {
                None => HvacMode::Off,
                Some(t) => match mode {
                    // Manual-control hysteresis: occupants react when the
                    // house *feels* off target (±1.5 °C) and run the
                    // equipment until clearly past it — the wide swings of
                    // real households, not a tuned thermostat loop.
                    HvacMode::Heat if t_in < t + 1.0 => HvacMode::Heat,
                    HvacMode::Cool if t_in > t + 2.0 => HvacMode::Cool,
                    _ if t_in < t - 1.5 => HvacMode::Heat,
                    _ if t_in > t + 4.0 => HvacMode::Cool,
                    _ => HvacMode::Off,
                },
            };
            indoor.push(t_in);
            hvac_mode.push(mode);
            t_in = self.thermal.step(t_in, t_out, mode, 1.0);
        }

        let mut devices = Vec::with_capacity(DEVICE_NAMES.len());

        // Sensors and lock: small always-on standby loads.
        devices.push(DeviceTrace::flat("lock", true, 2.0));
        devices.push(DeviceTrace::flat("door_sensor", true, 1.0));

        // Lights: on when awake at home and dark outside.
        let mut light = DeviceTrace::flat("light", false, 0.0);
        for (m, &awake) in awake_home.iter().enumerate() {
            let dark = !(7 * 60..17 * 60 + 30).contains(&m);
            if awake && dark {
                light.on[m] = true;
                light.power_w[m] = 180.0;
            }
        }
        devices.push(light);

        // Thermostat / HVAC.
        let mut hvac = DeviceTrace::flat("thermostat", false, 0.0);
        for (m, &mode) in hvac_mode.iter().enumerate() {
            hvac.on[m] = mode != HvacMode::Off;
            hvac.power_w[m] = ThermalModel::power_w(mode);
        }
        devices.push(hvac);

        devices.push(DeviceTrace::flat("temp_sensor", true, 1.0));

        // Fridge: compressor duty cycle, 10 on / 20 off, phase per day.
        let mut fridge = DeviceTrace::flat("fridge", false, 0.0);
        let phase = rng.gen_range(0..30usize);
        for m in 0..n {
            if (m + phase) % 30 < 10 {
                fridge.on[m] = true;
                fridge.power_w[m] = 120.0;
            } else {
                fridge.power_w[m] = 5.0; // controller standby
            }
        }
        devices.push(fridge);

        // Oven: dinner prep when someone is home, plus weekend lunch.
        let mut oven = DeviceTrace::flat("oven", false, 0.0);
        let dinner = 18 * 60 + 15 + rng.gen_range(0..45usize);
        self.run_block(&mut oven, &awake_home, dinner, 35 + rng.gen_range(0..15usize), 2000.0);
        if matches!(day % 7, 5 | 6) {
            let lunch = 12 * 60 + rng.gen_range(0..30usize);
            self.run_block(&mut oven, &awake_home, lunch, 30, 2000.0);
        }
        devices.push(oven);

        // TV: evening block while awake at home.
        let mut tv = DeviceTrace::flat("tv", false, 0.0);
        let show = 19 * 60 + 30 + rng.gen_range(0..30usize);
        self.run_block(&mut tv, &awake_home, show, 120 + rng.gen_range(0..60usize), 110.0);
        devices.push(tv);

        // Washer: roughly every third day, morning or evening.
        let mut washer = DeviceTrace::flat("washer", false, 0.0);
        if day % 3 == self.seed as u32 % 3 {
            let start = if rng.gen::<bool>() { 9 * 60 + 30 } else { 19 * 60 };
            self.run_block(&mut washer, &awake_home, start + rng.gen_range(0..40usize), 45, 500.0);
        }
        devices.push(washer);

        // Dishwasher: after dinner on days someone cooked.
        let mut dishwasher = DeviceTrace::flat("dishwasher", false, 0.0);
        if devices.iter().any(|d| d.name == "oven" && d.minutes_on() > 0) {
            self.run_block(
                &mut dishwasher,
                &awake_home,
                20 * 60 + rng.gen_range(0..40usize),
                35,
                1200.0,
            );
        }
        devices.push(dishwasher);

        // Water heater: three reheat cycles keyed to wake/dinner times.
        let mut heater = DeviceTrace::flat("water_heater", false, 0.0);
        for start in [6 * 60 + 30, 12 * 60 + 30, 19 * 60] {
            self.run_block(&mut heater, &in_house, start + rng.gen_range(0..30usize), 35, 1500.0);
        }
        devices.push(heater);

        DayTrace { day, devices, indoor_temp: indoor, hvac_mode }
    }

    /// Turn a device on for `duration` minutes starting at `start`, but only
    /// over minutes where `gate` is true (no one operates an oven while out).
    fn run_block(
        &self,
        trace: &mut DeviceTrace,
        gate: &[bool],
        start: usize,
        duration: usize,
        watts: f64,
    ) {
        let end = (start + duration).min(trace.on.len());
        for (m, &open) in gate.iter().enumerate().take(end).skip(start) {
            if open {
                trace.on[m] = true;
                trace.power_w[m] = watts;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> TraceGenerator {
        TraceGenerator::new(42)
    }

    #[test]
    fn produces_all_eleven_devices() {
        let t = generator().day(2); // a Wednesday
        assert_eq!(t.devices.len(), 11);
        for name in DEVICE_NAMES {
            assert!(t.device(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generator().day(5), TraceGenerator::new(42).day(5));
        assert_ne!(generator().day(5), TraceGenerator::new(43).day(5));
    }

    #[test]
    fn daily_energy_in_residential_range() {
        let g = generator();
        for day in 0..10 {
            let kwh = g.day(day).total_energy_kwh();
            assert!((2.0..55.0).contains(&kwh), "day {day}: {kwh} kWh");
        }
    }

    #[test]
    fn fridge_cycles_all_day() {
        let t = generator().day(1);
        let fridge = t.device("fridge").unwrap();
        let duty = fridge.minutes_on() as f64 / 1440.0;
        assert!((0.25..0.45).contains(&duty), "duty {duty}");
        assert!(fridge.edges().len() > 50, "fridge should cycle many times");
    }

    #[test]
    fn lights_follow_presence_and_darkness() {
        let g = generator();
        let t = g.day(2);
        let light = t.device("light").unwrap();
        // Midday with lights off (either away or bright).
        assert!(!light.on[13 * 60], "no lights at 13:00");
        // Some evening light use over a work week.
        let evening_use: usize = (0..5)
            .map(|d| {
                let tr = g.day(d);
                let l = tr.device("light").unwrap();
                (18 * 60..23 * 60).filter(|&m| l.on[m]).count()
            })
            .sum();
        assert!(evening_use > 100, "evening lights {evening_use} minutes in a week");
    }

    #[test]
    fn hvac_tracks_comfort_when_home_in_winter() {
        let g = generator();
        // Winter day (day 10, January): evening indoor temp near setpoint.
        let t = g.day(10);
        let evening: Vec<f64> = (19 * 60..21 * 60).map(|m| t.indoor_temp[m]).collect();
        let mean = evening.iter().sum::<f64>() / evening.len() as f64;
        assert!(
            (g.setpoint - 2.5..=g.setpoint + 2.5).contains(&mean),
            "evening mean indoor {mean}"
        );
    }

    #[test]
    fn hvac_off_when_house_empty() {
        let g = generator();
        let t = g.day(2);
        let sched = g.household().day(2);
        for m in (0..MINUTES_PER_DAY).step_by(7) {
            if !sched.iter().any(|s| s.in_house(m)) {
                assert_eq!(t.hvac_mode[m as usize], HvacMode::Off, "minute {m}");
            }
        }
    }

    #[test]
    fn indoor_temperature_is_physical() {
        let t = generator().day(200); // summer
        for (m, &temp) in t.indoor_temp.iter().enumerate() {
            assert!((0.0..40.0).contains(&temp), "minute {m}: {temp}");
        }
    }

    #[test]
    fn total_power_sums_devices() {
        let t = generator().day(3);
        let sum: f64 = t.devices.iter().map(|d| d.power_w[720]).sum();
        assert!((t.total_power_w(720) - sum).abs() < 1e-9);
    }

    #[test]
    fn trace_edges_detects_transitions() {
        let d = DeviceTrace {
            name: "x".into(),
            on: vec![false, true, true, false],
            power_w: vec![0.0; 4],
        };
        assert_eq!(d.edges(), vec![(1, true), (3, false)]);
    }

    #[test]
    fn washer_runs_some_days_not_others() {
        let g = generator();
        let days_with: Vec<u32> = (0..9)
            .filter(|&d| g.day(d).device("washer").unwrap().minutes_on() > 0)
            .collect();
        assert!(!days_with.is_empty(), "washer never runs");
        assert!(days_with.len() < 9, "washer runs every day");
    }
}
