//! Outdoor temperature model with day-ahead forecasts.
//!
//! Used by the temperature-optimization experiment (Figure 8), whose reward
//! `F_3` is "the temperature difference between day-ahead forecasted
//! temperature and HVAC readings" (Section VI-D). The model is a seasonal +
//! diurnal sinusoid with seeded per-day weather offsets and a forecast that
//! differs from truth by a small error — exactly the structure that matters
//! to the experiment.

use crate::rng_util;
use crate::MINUTES_PER_DAY;
use jarvis_stdkit::{json_struct};


/// A deterministic, seeded outdoor-temperature model (°C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeatherModel {
    seed: u64,
}

json_struct!(WeatherModel { seed });

impl WeatherModel {
    /// Model seeded by `seed`; the same seed reproduces the same weather.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        WeatherModel { seed }
    }

    /// True outdoor temperature on `day` (0-based, day 0 = January 1) at
    /// `minute` of day.
    #[must_use]
    pub fn outdoor_temp(&self, day: u32, minute: u32) -> f64 {
        let minute = minute.min(MINUTES_PER_DAY - 1);
        self.seasonal_mean(day) + self.diurnal(minute) + self.day_offset(day)
    }

    /// Day-ahead forecast for `day` at `minute`: the truth plus a bounded
    /// forecast error drawn per day.
    #[must_use]
    pub fn forecast_temp(&self, day: u32, minute: u32) -> f64 {
        let mut rng = rng_util::derive(self.seed, 0x00F0_0000 | u64::from(day));
        let err = rng_util::approx_normal(&mut rng, 0.0, 1.0).clamp(-3.0, 3.0);
        self.outdoor_temp(day, minute) + err
    }

    /// Mean temperature of `day` (seasonal curve, no weather noise).
    #[must_use]
    pub fn seasonal_mean(&self, day: u32) -> f64 {
        let doy = f64::from(day % 365);
        // Coldest around mid-January, warmest around mid-July.
        12.0 - 11.0 * (std::f64::consts::TAU * (doy - 15.0) / 365.0).cos()
    }

    fn diurnal(&self, minute: u32) -> f64 {
        // Amplitude 4.5 °C, peaking at 14:00, coldest pre-dawn.
        let m = f64::from(minute);
        4.5 * (std::f64::consts::TAU * (m - 14.0 * 60.0) / f64::from(MINUTES_PER_DAY)).cos()
    }

    fn day_offset(&self, day: u32) -> f64 {
        let mut rng = rng_util::derive(self.seed, 0x00D0_0000 | u64::from(day));
        rng_util::approx_normal(&mut rng, 0.0, 2.5)
    }

    /// Mean absolute forecast error over one day, sampled hourly — a sanity
    /// metric used in tests and EXPERIMENTS.md.
    #[must_use]
    pub fn forecast_mae(&self, day: u32) -> f64 {
        let mut total = 0.0;
        for h in 0..24 {
            let m = h * 60;
            total += (self.forecast_temp(day, m) - self.outdoor_temp(day, m)).abs();
        }
        total / 24.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = WeatherModel::new(5);
        let b = WeatherModel::new(5);
        let c = WeatherModel::new(6);
        assert_eq!(a.outdoor_temp(10, 600), b.outdoor_temp(10, 600));
        assert_ne!(a.outdoor_temp(10, 600), c.outdoor_temp(10, 600));
    }

    #[test]
    fn summer_warmer_than_winter() {
        let w = WeatherModel::new(1);
        // Average over several days to wash out weather noise.
        let avg = |days: std::ops::Range<u32>| {
            let n = days.len() as f64;
            days.map(|d| w.outdoor_temp(d, 720)).sum::<f64>() / n
        };
        let winter = avg(0..14);
        let summer = avg(180..194);
        assert!(summer > winter + 10.0, "summer {summer} vs winter {winter}");
    }

    #[test]
    fn afternoon_warmer_than_predawn() {
        let w = WeatherModel::new(1);
        for day in [30, 120, 250] {
            assert!(
                w.outdoor_temp(day, 14 * 60) > w.outdoor_temp(day, 4 * 60),
                "day {day}"
            );
        }
    }

    #[test]
    fn forecast_error_is_bounded_and_nonzero() {
        let w = WeatherModel::new(2);
        let mut any_nonzero = false;
        for day in 0..30 {
            let mae = w.forecast_mae(day);
            assert!(mae <= 3.0 + 1e-9, "day {day} mae {mae}");
            if mae > 1e-9 {
                any_nonzero = true;
            }
        }
        assert!(any_nonzero, "forecast should not be perfect");
    }

    #[test]
    fn forecast_error_constant_within_day() {
        // The per-day error model shifts the whole day uniformly.
        let w = WeatherModel::new(3);
        let e1 = w.forecast_temp(7, 100) - w.outdoor_temp(7, 100);
        let e2 = w.forecast_temp(7, 900) - w.outdoor_temp(7, 900);
        assert!((e1 - e2).abs() < 1e-12);
    }

    #[test]
    fn minute_clamped() {
        let w = WeatherModel::new(4);
        assert_eq!(w.outdoor_temp(0, 5000), w.outdoor_temp(0, MINUTES_PER_DAY - 1));
    }

    #[test]
    fn temperatures_in_plausible_range() {
        let w = WeatherModel::new(9);
        for day in (0..365).step_by(13) {
            for minute in (0..MINUTES_PER_DAY).step_by(177) {
                let t = w.outdoor_temp(day, minute);
                assert!((-25.0..=45.0).contains(&t), "day {day} min {minute}: {t}");
            }
        }
    }
}
