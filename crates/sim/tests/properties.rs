//! Property-based tests for the dataset simulators: determinism, physical
//! plausibility, and schedule coherence under arbitrary seeds.

use jarvis_sim::thermal::HvacMode;
use jarvis_sim::*;
use jarvis_stdkit::prop_assert;
use jarvis_stdkit::propcheck::Config;
use jarvis_stdkit::prop_assert_eq;

/// Every generator is a pure function of (seed, inputs).
#[test]
fn generators_are_deterministic() {
    Config::with_cases(32).run(|g| {
        let seed = g.u64();
        let day = g.u32_in(0, 364);
        prop_assert_eq!(
            WeatherModel::new(seed).outdoor_temp(day, 600),
            WeatherModel::new(seed).outdoor_temp(day, 600)
        );
        prop_assert_eq!(DamPrices::new(seed).day_curve(day), DamPrices::new(seed).day_curve(day));
        prop_assert_eq!(
            HomeDataset::home_a(seed).activity(day % 30),
            HomeDataset::home_a(seed).activity(day % 30)
        );
        Ok(())
    });
}

/// Occupant schedules are coherent on any day: wake < sleep, and the
/// away window (when present) sits inside the waking hours.
#[test]
fn schedules_are_coherent() {
    Config::with_cases(32).run(|g| {
        let seed = g.u64();
        let day = g.u32_in(0, 399);
        let occ = g.u32_in(0, 2);
        let profiles = [OccupantProfile::worker(), OccupantProfile::homebody()];
        let p = profiles[occ as usize % 2];
        let s = p.sample_day(seed, occ, day);
        prop_assert!(s.wake < s.sleep);
        if let (Some(l), Some(r)) = (s.leave, s.ret) {
            prop_assert!(s.wake < l && l < r && r <= s.sleep);
        }
        // Presence is consistent with in_house at every probe point.
        for m in (0..1440).step_by(97) {
            prop_assert_eq!(s.in_house(m), s.presence(m) != Presence::Away);
        }
        Ok(())
    });
}

/// Day traces are physically plausible for any seed: nonnegative power,
/// bounded indoor temperature, eleven devices.
#[test]
fn traces_are_plausible() {
    Config::with_cases(32).run(|g| {
        let seed = g.u64();
        let day = g.u32_in(0, 364);
        let t = TraceGenerator::new(seed).day(day);
        prop_assert_eq!(t.devices.len(), 11);
        for dev in &t.devices {
            prop_assert_eq!(dev.power_w.len(), 1440);
            prop_assert!(dev.power_w.iter().all(|&w| (0.0..=5_000.0).contains(&w)));
        }
        prop_assert!(t.indoor_temp.iter().all(|&c| (-15.0..45.0).contains(&c)));
        let kwh = t.total_energy_kwh();
        prop_assert!((0.0..80.0).contains(&kwh), "{kwh} kWh");
        Ok(())
    });
}

/// The thermal model is a contraction toward the outdoor temperature
/// when off: the gap never grows.
#[test]
fn thermal_off_contracts() {
    Config::with_cases(32).run(|g| {
        let t_in = g.f64_in(-10.0, 40.0);
        let t_out = g.f64_in(-10.0, 40.0);
        let dt = g.f64_in(0.1, 5.0);
        let m = ThermalModel::typical_home();
        let next = m.step(t_in, t_out, HvacMode::Off, dt);
        prop_assert!((next - t_out).abs() <= (t_in - t_out).abs() + 1e-9);
        Ok(())
    });
}

/// Heating always ends warmer than the off trajectory; cooling colder.
#[test]
fn hvac_orders_trajectories() {
    Config::with_cases(32).run(|g| {
        let t_in = g.f64_in(-5.0, 35.0);
        let t_out = g.f64_in(-10.0, 40.0);
        let m = ThermalModel::typical_home();
        let off = m.step(t_in, t_out, HvacMode::Off, 1.0);
        let heat = m.step(t_in, t_out, HvacMode::Heat, 1.0);
        let cool = m.step(t_in, t_out, HvacMode::Cool, 1.0);
        prop_assert!(heat > off && cool < off);
        Ok(())
    });
}

/// Prices are always positive, and the generated anomaly instances
/// always respect their class windows.
#[test]
fn prices_and_anomalies_in_range() {
    Config::with_cases(32).run(|g| {
        let seed = g.u64();
        let day = g.u32_in(0, 364);
        let p = DamPrices::new(seed);
        for h in 0..24 {
            prop_assert!(p.price_per_kwh(day, h) > 0.0);
        }
        for a in AnomalyGenerator::new(seed).generate(50, 10) {
            let (s0, s1) = a.class.start_range();
            prop_assert!((s0..=s1).contains(&a.start_minute));
            prop_assert!(a.end_minute() <= MINUTES_PER_DAY);
        }
        Ok(())
    });
}

/// Activity events are well-formed for any seed: sorted by minute,
/// devices drawn from the catalogue names, minute within the day.
#[test]
fn activity_events_well_formed() {
    Config::with_cases(32).run(|g| {
        let seed = g.u64();
        let day = g.u32_in(0, 59);
        let act = HomeDataset::home_b(seed).activity(day);
        let mut prev = 0u32;
        for e in &act.events {
            prop_assert!(e.minute < MINUTES_PER_DAY);
            prop_assert!(e.minute >= prev, "events unsorted");
            prev = e.minute;
            prop_assert!(
                jarvis_sim::traces::DEVICE_NAMES.contains(&e.device.as_str()),
                "unknown device {}",
                e.device
            );
        }
        Ok(())
    });
}
