//! Mapping from SIMADL-style benign-anomaly classes to concrete smart-home
//! transitions.
//!
//! A benign anomaly manifests as a device action from a specific pre-state
//! (a fridge door opening while the fridge runs, an oven turning on while
//! off…). Both the violation-evaluation harness and the Jarvis facade's
//! filter training need this mapping, so it lives with the device catalogue.

use crate::home::SmartHome;
use jarvis_iot_model::{DeviceId, EnvAction, StateIdx};
use jarvis_sim::anomaly::AnomalyClass;

/// The `(state context, action)` a benign anomaly class manifests as. The
/// context always pins the actuated device to an effective pre-state; some
/// classes pin additional devices (heating an *empty* house requires the
/// lock to show everyone out).
///
/// # Panics
///
/// Panics when `home` lacks the catalogue device the class maps to, or for
/// an anomaly class added upstream without a signature here.
#[must_use]
pub fn anomaly_signature(
    home: &SmartHome,
    class: AnomalyClass,
) -> (Vec<(DeviceId, StateIdx)>, EnvAction) {
    let pre = |dev: &str, state: &str| (home.device_id(dev), home.state_idx(dev, state));
    let act = |dev: &str, action: &str| EnvAction::single(home.mini_action(dev, action));
    match class {
        AnomalyClass::FridgeDoorLeftOpen => {
            (vec![pre("fridge", "running")], act("fridge", "open_door"))
        }
        AnomalyClass::OvenLeftOn => (vec![pre("oven", "off")], act("oven", "power_on")),
        AnomalyClass::TvLeftOn => (vec![pre("tv", "off")], act("tv", "power_on")),
        AnomalyClass::LightsLeftOn => (vec![pre("light", "off")], act("light", "power_on")),
        AnomalyClass::DoorLeftUnlocked => {
            (vec![pre("lock", "locked_inside")], act("lock", "unlock"))
        }
        AnomalyClass::HeaterLeftOn => (
            // Heating forgotten on while the house is empty.
            vec![
                pre("thermostat", "off"),
                pre("lock", "locked_outside"),
                pre("door_sensor", "sensing"),
            ],
            act("thermostat", "set_heat"),
        ),
        AnomalyClass::WasherInterrupted => {
            (vec![pre("washer", "running")], act("washer", "stop"))
        }
        AnomalyClass::WaterHeaterOddHour => {
            (vec![pre("water_heater", "idle")], act("water_heater", "start"))
        }
        other => unreachable!("unmapped anomaly class {other:?}"), // invariant: match above covers every AnomalyClass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_has_an_effective_signature() {
        let home = SmartHome::evaluation_home();
        for &class in AnomalyClass::all() {
            let (context, action) = anomaly_signature(&home, class);
            let mut state = home.midnight_state();
            for (d, s) in &context {
                state.set_device(*d, *s);
            }
            let next = home.fsm().step(&state, &action).unwrap();
            assert_ne!(next, state, "{class:?} must change state");
        }
    }

    #[test]
    fn signature_context_pins_the_actuated_device() {
        let home = SmartHome::evaluation_home();
        for &class in AnomalyClass::all() {
            let (context, _) = anomaly_signature(&home, class);
            let dev = home.device_id(class.device());
            assert!(
                context.iter().any(|&(d, _)| d == dev),
                "{class:?} context must pin {dev}"
            );
        }
    }
}
