//! IFTTT-style trigger-action apps and the engine that runs them — the five
//! common apps of Table II.
//!
//! Each app is a set of rules `trigger pattern → mini-actions`. Apps are
//! *edge-triggered*: a rule fires when the environment state enters the
//! trigger pattern (matching IFTTT applet semantics, where the trigger is an
//! event, not a level).

use crate::home::SmartHome;
use jarvis_iot_model::{
    Actor, AppId, EnvState, EpisodeRecorder, MiniAction, ModelError, StatePattern, UserId,
};

/// One trigger-action app: a named set of `pattern → actions` rules.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerActionApp {
    /// Platform app id (used for authorization).
    pub id: AppId,
    /// Short name.
    pub name: String,
    /// Human description (the Table II "Description" column).
    pub description: String,
    /// Rules evaluated in order; every rule whose trigger is entered fires.
    pub rules: Vec<(StatePattern, Vec<MiniAction>)>,
}

impl TriggerActionApp {
    /// Mini-actions fired on the transition `prev → cur`: all actions of
    /// rules whose trigger matches `cur` but did not match `prev`
    /// (edge-triggered).
    #[must_use]
    pub fn fire_on_edge(&self, prev: &EnvState, cur: &EnvState) -> Vec<MiniAction> {
        let mut out = Vec::new();
        for (trigger, actions) in &self.rules {
            if trigger.matches(cur) && !trigger.matches(prev) {
                out.extend_from_slice(actions);
            }
        }
        out
    }

    /// Mini-actions of rules matching `cur` regardless of history
    /// (level-triggered; used by analysis code).
    #[must_use]
    pub fn fire_on_level(&self, cur: &EnvState) -> Vec<MiniAction> {
        let mut out = Vec::new();
        for (trigger, actions) in &self.rules {
            if trigger.matches(cur) {
                out.extend_from_slice(actions);
            }
        }
        out
    }

    /// Devices this app actuates.
    #[must_use]
    pub fn actuated_devices(&self) -> Vec<jarvis_iot_model::DeviceId> {
        let mut v: Vec<_> = self
            .rules
            .iter()
            .flat_map(|(_, actions)| actions.iter().map(|m| m.device))
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

/// The installed app set of a home, evaluated every interval.
#[derive(Debug, Clone, PartialEq)]
pub struct AppEngine {
    apps: Vec<TriggerActionApp>,
}

impl AppEngine {
    /// An engine over an explicit app list.
    #[must_use]
    pub fn new(apps: Vec<TriggerActionApp>) -> Self {
        AppEngine { apps }
    }

    /// Build the five Table II apps for `home`'s example FSM and install
    /// their device subscriptions into the home's authorization policy.
    ///
    /// # Panics
    ///
    /// Panics when `home` lacks the five example devices (use
    /// [`SmartHome::example_home`] or a superset like the evaluation home).
    #[must_use]
    pub fn install_table2_apps(home: &mut SmartHome) -> AppEngine {
        let k = home.fsm().num_devices();
        let lock = home.device_id("lock");
        let door = home.device_id("door_sensor");
        let temp = home.device_id("temp_sensor");

        let locked_out = home.state_idx("lock", "locked_outside");
        let auth = home.state_idx("door_sensor", "auth_user");
        let sensing = home.state_idx("door_sensor", "sensing");
        let below = home.state_idx("temp_sensor", "below_optimal");
        let above = home.state_idx("temp_sensor", "above_optimal");
        let fire = home.state_idx("temp_sensor", "fire_alarm");

        let arrive = StatePattern::any(k).with(lock, locked_out).with(door, auth);
        let apps = vec![
            TriggerActionApp {
                id: AppId(1),
                name: "auto-unlock".to_owned(),
                description: "Door unlocks when authenticated user arrives at the door"
                    .to_owned(),
                rules: vec![(arrive.clone(), vec![home.mini_action("lock", "unlock")])],
            },
            TriggerActionApp {
                id: AppId(2),
                name: "thermostat-maintain".to_owned(),
                description: "Maintain optimal temperature in the house".to_owned(),
                rules: vec![
                    (
                        StatePattern::any(k).with(temp, below),
                        vec![home.mini_action("thermostat", "set_heat")],
                    ),
                    (
                        StatePattern::any(k).with(temp, above),
                        vec![home.mini_action("thermostat", "set_cool")],
                    ),
                ],
            },
            TriggerActionApp {
                id: AppId(3),
                name: "lights-on-arrival".to_owned(),
                description: "Lights turn on when user arrives home".to_owned(),
                rules: vec![(arrive, vec![home.mini_action("light", "power_on")])],
            },
            TriggerActionApp {
                id: AppId(4),
                name: "fire-egress".to_owned(),
                description: "Door is opened/lights turned on when fire alarm is raised"
                    .to_owned(),
                rules: vec![(
                    StatePattern::any(k).with(temp, fire),
                    vec![
                        home.mini_action("lock", "unlock"),
                        home.mini_action("light", "power_on"),
                    ],
                )],
            },
            TriggerActionApp {
                id: AppId(5),
                name: "away-shutdown".to_owned(),
                description: "Thermostat/lights turned off when user leaves the house"
                    .to_owned(),
                rules: vec![(
                    StatePattern::any(k).with(lock, locked_out).with(door, sensing),
                    vec![
                        home.mini_action("light", "power_off"),
                        home.mini_action("thermostat", "power_off"),
                    ],
                )],
            },
        ];

        for app in &apps {
            let names: Vec<String> = app
                .actuated_devices()
                .iter()
                .map(|&d| home.fsm().device(d).expect("valid").name().to_owned()) // invariant: app catalogue ids are in range
                .collect();
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            home.install_app(app.id, &name_refs);
        }
        AppEngine::new(apps)
    }

    /// The installed apps.
    #[must_use]
    pub fn apps(&self) -> &[TriggerActionApp] {
        &self.apps
    }

    /// Everything fired on the transition `prev → cur`, as
    /// `(app, mini-action)` pairs in app order.
    #[must_use]
    pub fn fired_on_edge(&self, prev: &EnvState, cur: &EnvState) -> Vec<(AppId, MiniAction)> {
        self.apps
            .iter()
            .flat_map(|app| {
                app.fire_on_edge(prev, cur)
                    .into_iter()
                    .map(move |m| (app.id, m))
            })
            .collect()
    }

    /// Submit everything fired on `prev → recorder.current()` into the
    /// recorder for the current interval, attributing each mini-action to
    /// its app (run by `user`). First-come-first-serve conflicts follow the
    /// recorder's policy.
    ///
    /// Returns how many mini-actions were accepted.
    ///
    /// # Errors
    ///
    /// Propagates authorization errors — an app acting on a device it is not
    /// subscribed to indicates an installation bug (or a Type-4 attack
    /// scenario in the evaluation corpus).
    pub fn drive(
        &self,
        recorder: &mut EpisodeRecorder<'_>,
        prev: &EnvState,
        user: UserId,
    ) -> Result<usize, ModelError> {
        let cur = recorder.current().clone();
        let mut accepted = 0;
        for (app, mini) in self.fired_on_edge(prev, &cur) {
            if recorder.submit(Actor { user, app }, mini)? {
                accepted += 1;
            }
        }
        Ok(accepted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jarvis_iot_model::EpisodeConfig;

    fn setup() -> (SmartHome, AppEngine) {
        let mut home = SmartHome::example_home();
        let engine = AppEngine::install_table2_apps(&mut home);
        (home, engine)
    }

    #[test]
    fn five_apps_installed() {
        let (home, engine) = setup();
        assert_eq!(engine.apps().len(), 5);
        // Every app's subscriptions are present in authz.
        for app in engine.apps() {
            for d in app.actuated_devices() {
                assert!(home.authz().app_may_actuate(app.id, d), "{} on {d}", app.name);
            }
        }
    }

    #[test]
    fn auto_unlock_fires_on_arrival_edge() {
        let (home, engine) = setup();
        let away = home
            .fsm()
            .initial_state() // lock locked_outside, door sensing
            .with_device(home.device_id("temp_sensor"), home.state_idx("temp_sensor", "optimal"));
        let arrived = away.with_device(
            home.device_id("door_sensor"),
            home.state_idx("door_sensor", "auth_user"),
        );
        let fired = engine.fired_on_edge(&away, &arrived);
        let unlock = home.mini_action("lock", "unlock");
        let light_on = home.mini_action("light", "power_on");
        assert!(fired.contains(&(AppId(1), unlock)));
        assert!(fired.contains(&(AppId(3), light_on)), "app 3 shares the trigger");
        // No fire while the state stays matched (edge semantics).
        assert!(engine.fired_on_edge(&arrived, &arrived).is_empty());
    }

    #[test]
    fn thermostat_app_heats_and_cools() {
        let (home, engine) = setup();
        let temp = home.device_id("temp_sensor");
        let optimal = home.occupied_initial_state();
        let cold = optimal.with_device(temp, home.state_idx("temp_sensor", "below_optimal"));
        let hot = optimal.with_device(temp, home.state_idx("temp_sensor", "above_optimal"));
        assert_eq!(
            engine.fired_on_edge(&optimal, &cold),
            vec![(AppId(2), home.mini_action("thermostat", "set_heat"))]
        );
        assert_eq!(
            engine.fired_on_edge(&optimal, &hot),
            vec![(AppId(2), home.mini_action("thermostat", "set_cool"))]
        );
    }

    #[test]
    fn fire_alarm_opens_door_and_lights() {
        let (home, engine) = setup();
        let normal = home.occupied_initial_state();
        let alarm = normal.with_device(
            home.device_id("temp_sensor"),
            home.state_idx("temp_sensor", "fire_alarm"),
        );
        let fired = engine.fired_on_edge(&normal, &alarm);
        assert_eq!(fired.len(), 2);
        assert!(fired.iter().all(|(id, _)| *id == AppId(4)));
    }

    #[test]
    fn away_shutdown_fires_when_leaving() {
        let (home, engine) = setup();
        // At home: unlocked. Leaving: locked_outside + door sensing.
        let at_home = home.occupied_initial_state();
        let left = at_home.with_device(
            home.device_id("lock"),
            home.state_idx("lock", "locked_outside"),
        );
        let fired = engine.fired_on_edge(&at_home, &left);
        assert!(fired.contains(&(AppId(5), home.mini_action("light", "power_off"))));
        assert!(fired.contains(&(AppId(5), home.mini_action("thermostat", "power_off"))));
    }

    #[test]
    fn drive_submits_into_recorder() {
        let (home, engine) = setup();
        let cfg = EpisodeConfig::new(120, 60).unwrap();
        // Start in the "user at door" state so apps 1 and 3 fire against the
        // midnight baseline.
        let arrived = home.fsm().initial_state().with_device(
            home.device_id("door_sensor"),
            home.state_idx("door_sensor", "auth_user"),
        );
        let prev = home.fsm().initial_state();
        let mut rec =
            EpisodeRecorder::new(home.fsm(), home.authz(), cfg, arrived.clone()).unwrap();
        let accepted = engine.drive(&mut rec, &prev, UserId(0)).unwrap();
        assert_eq!(accepted, 2, "unlock + light on");
        let t = rec.advance().unwrap();
        assert_eq!(
            t.next.device(home.device_id("lock")),
            Some(home.state_idx("lock", "unlocked"))
        );
        assert_eq!(
            t.next.device(home.device_id("light")),
            Some(home.state_idx("light", "on"))
        );
        // Attribution recorded the app ids, not the manual pseudo-app.
        assert!(t.actors.iter().any(|a| a.app == AppId(1)));
    }

    #[test]
    fn level_fire_reports_all_matching() {
        let (home, engine) = setup();
        let arrived = home.fsm().initial_state().with_device(
            home.device_id("door_sensor"),
            home.state_idx("door_sensor", "auth_user"),
        );
        let level: Vec<MiniAction> = engine
            .apps()
            .iter()
            .flat_map(|a| a.fire_on_level(&arrived))
            .collect();
        assert!(level.len() >= 2);
    }
}
