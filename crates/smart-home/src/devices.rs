//! The smart-home device catalogue.
//!
//! Builds the [`DeviceSpec`]s of the Table I example home and the
//! eleven-device evaluation home. Device, state, and action names align with
//! the trace generator of `jarvis-sim` so logged activity parses directly
//! into FSM episodes.
//!
//! # Sensor pseudo-actions
//!
//! In the paper's model the environment state includes sensor states, and
//! physical-world changes (an authorized user appearing at the door, the
//! temperature crossing a band) arrive as state transitions. We model those
//! exogenous changes as *pseudo-actions* named with the reserved prefixes
//! `sense_`, `read_`, or `alarm_`. They keep the transition function `Δ`
//! total and let the recorder capture sensor transitions, but they are
//! **not** part of the agent's action space — [`is_agent_action`] filters
//! them out, and dis-utility does not apply to them.

use jarvis_iot_model::{DeviceKind, DeviceSpec};

/// True when an action name is something an agent (user/app) can execute,
/// i.e. not an exogenous sensor pseudo-action.
#[must_use]
pub fn is_agent_action(name: &str) -> bool {
    !(name.starts_with("sense_") || name.starts_with("read_") || name.starts_with("alarm_"))
}

/// Smart lock (`D_0` of Table I): states `locked_outside`, `unlocked`,
/// `off`, `locked_inside`.
///
/// Beyond Table I's four actions we add `lock_inside` so the fourth state is
/// reachable by an explicit command (the paper leaves its trigger implicit).
///
/// # Panics
///
/// Panics only if the catalogue itself is inconsistent (compile-time data).
#[must_use]
pub fn lock() -> DeviceSpec {
    DeviceSpec::builder("lock")
        .kind(DeviceKind::Actuator)
        .states(["locked_outside", "unlocked", "off", "locked_inside"])
        .actions(["lock", "unlock", "power_off", "power_on", "lock_inside"])
        .transition("locked_outside", "unlock", "unlocked")
        .transition("locked_inside", "unlock", "unlocked")
        .transition("unlocked", "lock", "locked_outside")
        .transition("unlocked", "lock_inside", "locked_inside")
        .transition("locked_outside", "power_off", "off")
        .transition("locked_inside", "power_off", "off")
        .transition("unlocked", "power_off", "off")
        .transition("off", "power_on", "locked_outside")
        .disutility(0.9) // locks need immediate response (Section V-A-4)
        .build()
        .expect("catalogue device is well-formed") // invariant: static catalogue, covered by devices::tests
}

/// Door touch sensor (`D_1`): `sensing`, `auth_user`, `unauth_user`, `off`.
#[must_use]
pub fn door_sensor() -> DeviceSpec {
    DeviceSpec::builder("door_sensor")
        .kind(DeviceKind::Sensor)
        .states(["sensing", "auth_user", "unauth_user", "off"])
        .actions(["power_off", "power_on", "sense_auth", "sense_unauth", "sense_clear"])
        .transition("sensing", "sense_auth", "auth_user")
        .transition("sensing", "sense_unauth", "unauth_user")
        .transition("auth_user", "sense_clear", "sensing")
        .transition("unauth_user", "sense_clear", "sensing")
        .transition("auth_user", "sense_unauth", "unauth_user")
        .transition("unauth_user", "sense_auth", "auth_user")
        .transition("sensing", "power_off", "off")
        .transition("auth_user", "power_off", "off")
        .transition("unauth_user", "power_off", "off")
        .transition("off", "power_on", "sensing")
        .disutility(0.85)
        .build()
        .expect("catalogue device is well-formed") // invariant: static catalogue, covered by devices::tests
}

/// Smart light (`D_2`): `off`, `on`.
#[must_use]
pub fn light() -> DeviceSpec {
    DeviceSpec::builder("light")
        .kind(DeviceKind::Actuator)
        .states(["off", "on"])
        .actions(["power_off", "power_on"])
        .transition("off", "power_on", "on")
        .transition("on", "power_off", "off")
        .disutility(0.8)
        .build()
        .expect("catalogue device is well-formed") // invariant: static catalogue, covered by devices::tests
}

/// Smart thermostat controller (`D_3`): `heat`, `cool`, `off`.
#[must_use]
pub fn thermostat() -> DeviceSpec {
    DeviceSpec::builder("thermostat")
        .kind(DeviceKind::Hvac)
        .states(["heat", "cool", "off"])
        .actions(["set_heat", "set_cool", "power_off", "power_on"])
        .transition("off", "set_heat", "heat")
        .transition("off", "set_cool", "cool")
        .transition("cool", "set_heat", "heat")
        .transition("heat", "set_cool", "cool")
        .transition("heat", "power_off", "off")
        .transition("cool", "power_off", "off")
        .transition("off", "power_on", "heat")
        .disutility(0.1) // deferrable high-power load
        .build()
        .expect("catalogue device is well-formed") // invariant: static catalogue, covered by devices::tests
}

/// Temperature sensor (`D_4`): `below_optimal`, `above_optimal`, `optimal`,
/// `fire_alarm`, `off`.
#[must_use]
pub fn temp_sensor() -> DeviceSpec {
    DeviceSpec::builder("temp_sensor")
        .kind(DeviceKind::Sensor)
        .states(["below_optimal", "above_optimal", "optimal", "fire_alarm", "off"])
        .actions(["power_off", "power_on", "read_below", "read_above", "read_optimal", "alarm_fire"])
        .transition("below_optimal", "read_above", "above_optimal")
        .transition("below_optimal", "read_optimal", "optimal")
        .transition("above_optimal", "read_below", "below_optimal")
        .transition("above_optimal", "read_optimal", "optimal")
        .transition("optimal", "read_below", "below_optimal")
        .transition("optimal", "read_above", "above_optimal")
        .transition("below_optimal", "alarm_fire", "fire_alarm")
        .transition("above_optimal", "alarm_fire", "fire_alarm")
        .transition("optimal", "alarm_fire", "fire_alarm")
        .transition("fire_alarm", "read_optimal", "optimal")
        .transition("below_optimal", "power_off", "off")
        .transition("above_optimal", "power_off", "off")
        .transition("optimal", "power_off", "off")
        .transition("off", "power_on", "optimal")
        .disutility(0.85)
        .build()
        .expect("catalogue device is well-formed") // invariant: static catalogue, covered by devices::tests
}

/// Refrigerator: `running`, `door_open`, `off`.
#[must_use]
pub fn fridge() -> DeviceSpec {
    DeviceSpec::builder("fridge")
        .kind(DeviceKind::Appliance)
        .states(["running", "door_open", "off"])
        .actions(["open_door", "close_door", "power_off", "power_on"])
        .transition("running", "open_door", "door_open")
        .transition("door_open", "close_door", "running")
        .transition("running", "power_off", "off")
        .transition("door_open", "power_off", "off")
        .transition("off", "power_on", "running")
        .disutility(0.6)
        .build()
        .expect("catalogue device is well-formed") // invariant: static catalogue, covered by devices::tests
}

/// Oven: `off`, `on`.
#[must_use]
pub fn oven() -> DeviceSpec {
    DeviceSpec::builder("oven")
        .kind(DeviceKind::Appliance)
        .states(["off", "on"])
        .actions(["power_off", "power_on"])
        .transition("off", "power_on", "on")
        .transition("on", "power_off", "off")
        .disutility(0.3)
        .build()
        .expect("catalogue device is well-formed") // invariant: static catalogue, covered by devices::tests
}

/// Television: `off`, `on`.
#[must_use]
pub fn tv() -> DeviceSpec {
    DeviceSpec::builder("tv")
        .kind(DeviceKind::Appliance)
        .states(["off", "on"])
        .actions(["power_off", "power_on"])
        .transition("off", "power_on", "on")
        .transition("on", "power_off", "off")
        .disutility(0.4)
        .build()
        .expect("catalogue device is well-formed") // invariant: static catalogue, covered by devices::tests
}

/// Washing machine: `idle`, `running`.
#[must_use]
pub fn washer() -> DeviceSpec {
    DeviceSpec::builder("washer")
        .kind(DeviceKind::Appliance)
        .states(["idle", "running"])
        .actions(["start", "stop"])
        .transition("idle", "start", "running")
        .transition("running", "stop", "idle")
        .disutility(0.05) // highly deferrable
        .build()
        .expect("catalogue device is well-formed") // invariant: static catalogue, covered by devices::tests
}

/// Dishwasher: `idle`, `running`.
#[must_use]
pub fn dishwasher() -> DeviceSpec {
    DeviceSpec::builder("dishwasher")
        .kind(DeviceKind::Appliance)
        .states(["idle", "running"])
        .actions(["start", "stop"])
        .transition("idle", "start", "running")
        .transition("running", "stop", "idle")
        .disutility(0.05)
        .build()
        .expect("catalogue device is well-formed") // invariant: static catalogue, covered by devices::tests
}

/// Electric water heater: `idle`, `heating`.
#[must_use]
pub fn water_heater() -> DeviceSpec {
    DeviceSpec::builder("water_heater")
        .kind(DeviceKind::Hvac)
        .states(["idle", "heating"])
        .actions(["start", "stop"])
        .transition("idle", "start", "heating")
        .transition("heating", "stop", "idle")
        .disutility(0.1)
        .build()
        .expect("catalogue device is well-formed") // invariant: static catalogue, covered by devices::tests
}

/// The five devices of the Table I example home, in `D_0..D_4` order.
#[must_use]
pub fn example_devices() -> Vec<DeviceSpec> {
    vec![lock(), door_sensor(), light(), thermostat(), temp_sensor()]
}

/// The eleven devices of the Section VI-D evaluation home, matching
/// `jarvis_sim::traces::DEVICE_NAMES` order.
#[must_use]
pub fn evaluation_devices() -> Vec<DeviceSpec> {
    vec![
        lock(),
        door_sensor(),
        light(),
        thermostat(),
        temp_sensor(),
        fridge(),
        oven(),
        tv(),
        washer(),
        dishwasher(),
        water_heater(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use jarvis_iot_model::{ActionIdx, StateIdx};

    #[test]
    fn example_home_matches_table_one_shape() {
        let devs = example_devices();
        assert_eq!(devs.len(), 5);
        assert_eq!(devs[0].name(), "lock");
        assert_eq!(devs[0].num_states(), 4);
        assert_eq!(devs[1].name(), "door_sensor");
        assert_eq!(devs[2].name(), "light");
        assert_eq!(devs[2].num_states(), 2);
        assert_eq!(devs[3].name(), "thermostat");
        assert_eq!(devs[3].num_states(), 3);
        assert_eq!(devs[4].name(), "temp_sensor");
    }

    #[test]
    fn evaluation_home_matches_sim_device_names() {
        let devs = evaluation_devices();
        assert_eq!(devs.len(), 11);
        for (spec, name) in devs.iter().zip(jarvis_sim::traces::DEVICE_NAMES) {
            assert_eq!(spec.name(), name);
        }
    }

    #[test]
    fn lock_cycle() {
        let l = lock();
        let locked = l.state_idx("locked_outside").unwrap();
        let unlock = l.action_idx("unlock").unwrap();
        let unlocked = l.delta(locked, unlock).unwrap();
        assert_eq!(l.state_name(unlocked), Some("unlocked"));
        let lock_in = l.action_idx("lock_inside").unwrap();
        let inside = l.delta(unlocked, lock_in).unwrap();
        assert_eq!(l.state_name(inside), Some("locked_inside"));
    }

    #[test]
    fn thermostat_power_on_defaults_to_heat() {
        let t = thermostat();
        let off = t.state_idx("off").unwrap();
        let on = t.action_idx("power_on").unwrap();
        assert_eq!(t.state_name(t.delta(off, on).unwrap()), Some("heat"));
    }

    #[test]
    fn sensor_pseudo_actions_are_filtered() {
        assert!(is_agent_action("power_off"));
        assert!(is_agent_action("unlock"));
        assert!(!is_agent_action("sense_auth"));
        assert!(!is_agent_action("read_below"));
        assert!(!is_agent_action("alarm_fire"));
    }

    #[test]
    fn fire_alarm_reachable_from_all_reading_states() {
        let t = temp_sensor();
        let alarm = t.action_idx("alarm_fire").unwrap();
        let fire = t.state_idx("fire_alarm").unwrap();
        for s in ["below_optimal", "above_optimal", "optimal"] {
            let idx = t.state_idx(s).unwrap();
            assert_eq!(t.delta(idx, alarm).unwrap(), fire, "from {s}");
        }
        // But not from off: a dead sensor cannot alarm.
        let off = t.state_idx("off").unwrap();
        assert_eq!(t.delta(off, alarm).unwrap(), off);
    }

    #[test]
    fn disutility_ordering_matches_paper_guidance() {
        // High dis-utility: immediate-response devices; low: deferrable loads.
        assert!(lock().max_omega() > thermostat().max_omega());
        assert!(light().max_omega() > washer().max_omega());
        assert!(door_sensor().max_omega() > dishwasher().max_omega());
    }

    #[test]
    fn every_catalogue_action_has_a_name_and_effect_somewhere() {
        for dev in evaluation_devices() {
            for a in dev.action_indices() {
                assert!(dev.action_name(a).is_some());
                // Every declared action changes state from at least one state
                // (no dead actions in the catalogue).
                let effective = dev
                    .state_indices()
                    .any(|s| dev.delta(s, a).unwrap() != s);
                assert!(
                    effective,
                    "{}.{} never changes state",
                    dev.name(),
                    dev.action_name(a).unwrap()
                );
            }
        }
    }

    #[test]
    fn indices_are_stable_for_tables() {
        // Table II/III patterns rely on these exact indices.
        let l = lock();
        assert_eq!(l.state_idx("locked_outside"), Some(StateIdx(0)));
        assert_eq!(l.state_idx("unlocked"), Some(StateIdx(1)));
        assert_eq!(l.action_idx("lock"), Some(ActionIdx(0)));
        assert_eq!(l.action_idx("unlock"), Some(ActionIdx(1)));
        let t = thermostat();
        assert_eq!(t.action_idx("set_heat"), Some(ActionIdx(0)));
        assert_eq!(t.action_idx("power_off"), Some(ActionIdx(2)));
    }
}
