//! Day simulation with installed apps in the loop.
//!
//! Section V's example home runs IFTTT apps *alongside* manual behavior:
//! platform events trigger subscribed apps, whose actions land in the same
//! episode stream and are learned as natural T/A behavior if the user keeps
//! them installed through the learning phase. [`simulate_day_with_apps`]
//! replays a dataset day through an [`EpisodeRecorder`] while letting the
//! [`AppEngine`] fire on every state edge — producing the app-inclusive
//! learning episodes the Table II comparison is about.

use crate::apps::AppEngine;
use crate::home::SmartHome;
use crate::logger::normalize_action;
use jarvis_iot_model::{
    Actor, Episode, EpisodeConfig, EpisodeRecorder, MiniAction, ModelError, UserId,
};
use jarvis_sim::HomeDataset;

/// Simulate one day: occupant/manual events from `data` drive the home, and
/// after each interval the installed apps react to the state edge.
///
/// Returns the recorded episode. App actions are attributed to their
/// [`AppId`](jarvis_iot_model::AppId)s, manual events to user 0.
///
/// # Errors
///
/// Returns a [`ModelError`] if an app actuates a device it is not subscribed
/// to (an installation bug) or the FSM rejects a transition.
pub fn simulate_day_with_apps(
    home: &SmartHome,
    engine: &AppEngine,
    data: &HomeDataset,
    day: u32,
    config: EpisodeConfig,
) -> Result<Episode, ModelError> {
    let activity = data.activity(day);
    // Bucket the dataset's events by time instance.
    let mut by_step: std::collections::BTreeMap<u32, Vec<MiniAction>> =
        std::collections::BTreeMap::new();
    for e in &activity.events {
        if home.fsm().device_by_name(&e.device).is_none() {
            continue;
        }
        let Some(name) = normalize_action(&e.device, &e.name) else { continue };
        let dev = home.device_id(&e.device);
        let Some(action) = home.fsm().device(dev).ok().and_then(|d| d.action_idx(&name))
        else {
            continue;
        };
        by_step
            .entry(config.step_at(e.minute * 60).0)
            .or_default()
            .push(MiniAction { device: dev, action });
    }

    let mut rec = EpisodeRecorder::new(home.fsm(), home.authz(), config, home.midnight_state())?;
    let mut prev = rec.current().clone();
    for t in 0..config.steps() {
        // Apps react to the previous interval's edge first (they observed
        // the event stream), then the scripted manual/world events land.
        engine.drive(&mut rec, &prev, UserId(0))?;
        if let Some(events) = by_step.get(&t) {
            for &mini in events {
                let _ = rec.submit(Actor::manual(UserId(0)), mini)?;
            }
        }
        prev = rec.current().clone();
        rec.advance()?;
    }
    Ok(rec.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jarvis_iot_model::AppId;

    fn setup() -> (SmartHome, AppEngine, HomeDataset) {
        let mut home = SmartHome::evaluation_home();
        let engine = AppEngine::install_table2_apps(&mut home);
        (home, engine, HomeDataset::home_a(19))
    }

    #[test]
    fn apps_fire_during_the_simulated_day() {
        let (home, engine, data) = setup();
        let ep = simulate_day_with_apps(
            &home,
            &engine,
            &data,
            2,
            EpisodeConfig::DAILY_MINUTES,
        )
        .unwrap();
        assert_eq!(ep.len(), 1440);
        // Some transitions carry app attribution (not the manual pseudo-app).
        let app_actions: Vec<_> = ep
            .transitions()
            .iter()
            .flat_map(|tr| tr.actors.iter())
            .filter(|a| a.app != AppId::MANUAL)
            .collect();
        assert!(!app_actions.is_empty(), "installed apps never fired");
    }

    #[test]
    fn thermostat_app_reacts_to_cold_readings() {
        let (home, engine, data) = setup();
        let ep = simulate_day_with_apps(
            &home,
            &engine,
            &data,
            10, // winter day with below_optimal readings
            EpisodeConfig::DAILY_MINUTES,
        )
        .unwrap();
        // App 2 (thermostat-maintain) fires set_heat after a below_optimal
        // edge; look for a thermostat action attributed to AppId(2).
        let therm = home.device_id("thermostat");
        let fired = ep.transitions().iter().any(|tr| {
            tr.action
                .minis()
                .iter()
                .zip(&tr.actors)
                .any(|(m, a)| m.device == therm && a.app == AppId(2))
        });
        assert!(fired, "the thermostat app never reacted");
    }

    #[test]
    fn app_inclusive_episodes_feed_the_spl() {
        use jarvis_policy::{learn_safe_transitions, SplConfig};
        let (home, engine, data) = setup();
        let episodes: Vec<Episode> = (0..3)
            .map(|d| {
                simulate_day_with_apps(&home, &engine, &data, d, EpisodeConfig::DAILY_MINUTES)
                    .unwrap()
            })
            .collect();
        let with_apps =
            learn_safe_transitions(home.fsm(), &episodes, None, &SplConfig::default());
        // The app-driven unlock-on-arrival becomes learned safe behavior.
        assert!(with_apps.table.len() > 0);
        // And replaying the same days raises no violations.
        for ep in &episodes {
            assert!(jarvis_policy::flag_violations(
                &with_apps.table,
                ep,
                jarvis_policy::MatchMode::Exact
            )
            .is_empty());
        }
    }
}
