//! Manually specified emergency policies for the smart-home catalogue.
//!
//! Section V-B notes that the safe functioning of emergency devices "cannot
//! be determined from natural progression" — fire alarms (hopefully) never
//! fire during the learning phase — so their rules are added manually.
//! [`emergency_rules`] builds the catalogue's rule set:
//!
//! 1. **Fire egress** (allow): when the temperature sensor reads
//!    `fire_alarm`, unlocking the door and turning lights on are safe — the
//!    behavior of Table II's App 4.
//! 2. **HVAC lockout in fire** (deny): no heating/cooling command during an
//!    active alarm.
//! 3. **Sensor integrity** (deny): powering off the door or temperature
//!    sensors is never safe, whatever the learned table says.

use crate::home::SmartHome;
use jarvis_iot_model::{ActionPattern, StatePattern};
use jarvis_policy::{ManualPolicy, ManualRule, RuleEffect};

/// Build the catalogue's emergency rule set for `home`.
///
/// # Panics
///
/// Panics when `home` lacks the example-home devices (lock, light,
/// thermostat, door/temperature sensors).
#[must_use]
pub fn emergency_rules(home: &SmartHome) -> ManualPolicy {
    let k = home.fsm().num_devices();
    let lock = home.device_id("lock");
    let light = home.device_id("light");
    let thermostat = home.device_id("thermostat");
    let door_sensor = home.device_id("door_sensor");
    let temp_sensor = home.device_id("temp_sensor");
    let fire = home.state_idx("temp_sensor", "fire_alarm");
    let idx = |dev: &str, action: &str| home.mini_action(dev, action).action;

    let mut policy = ManualPolicy::new();
    policy.add_rule(ManualRule {
        name: "fire egress: unlock the door".into(),
        trigger: StatePattern::any(k).with(temp_sensor, fire),
        action: ActionPattern::any(k).with(lock, idx("lock", "unlock")),
        effect: RuleEffect::Allow,
    });
    policy.add_rule(ManualRule {
        name: "fire egress: lights on".into(),
        trigger: StatePattern::any(k).with(temp_sensor, fire),
        action: ActionPattern::any(k).with(light, idx("light", "power_on")),
        effect: RuleEffect::Allow,
    });
    for action in ["set_heat", "set_cool", "power_on"] {
        policy.add_rule(ManualRule {
            name: format!("fire lockout: thermostat.{action}"),
            trigger: StatePattern::any(k).with(temp_sensor, fire),
            action: ActionPattern::any(k).with(thermostat, idx("thermostat", action)),
            effect: RuleEffect::Deny,
        });
    }
    policy.add_rule(ManualRule {
        name: "sensor integrity: door sensor stays powered".into(),
        trigger: StatePattern::any(k),
        action: ActionPattern::any(k).with(door_sensor, idx("door_sensor", "power_off")),
        effect: RuleEffect::Deny,
    });
    policy.add_rule(ManualRule {
        name: "sensor integrity: temperature sensor stays powered".into(),
        trigger: StatePattern::any(k),
        action: ActionPattern::any(k).with(temp_sensor, idx("temp_sensor", "power_off")),
        effect: RuleEffect::Deny,
    });
    policy
}

#[cfg(test)]
mod tests {
    use super::*;
    use jarvis_iot_model::EnvAction;
    use jarvis_policy::{MatchMode, SafeTransitionTable};

    #[test]
    fn fire_egress_is_allowed_without_learning() {
        let home = SmartHome::evaluation_home();
        let policy = emergency_rules(&home);
        let table = SafeTransitionTable::new();
        let alarm_state = home.midnight_state().with_device(
            home.device_id("temp_sensor"),
            home.state_idx("temp_sensor", "fire_alarm"),
        );
        let unlock = EnvAction::single(home.mini_action("lock", "unlock"));
        assert!(policy.is_safe_with(&table, &alarm_state, &unlock, MatchMode::Exact));
        let lights = EnvAction::single(home.mini_action("light", "power_on"));
        assert!(policy.is_safe_with(&table, &alarm_state, &lights, MatchMode::Exact));
    }

    #[test]
    fn unlock_without_alarm_still_needs_the_table() {
        let home = SmartHome::evaluation_home();
        let policy = emergency_rules(&home);
        let table = SafeTransitionTable::new();
        let normal = home.midnight_state();
        let unlock = EnvAction::single(home.mini_action("lock", "unlock"));
        assert!(!policy.is_safe_with(&table, &normal, &unlock, MatchMode::Exact));
    }

    #[test]
    fn heating_denied_during_alarm() {
        let home = SmartHome::evaluation_home();
        let policy = emergency_rules(&home);
        let alarm_state = home.midnight_state().with_device(
            home.device_id("temp_sensor"),
            home.state_idx("temp_sensor", "fire_alarm"),
        );
        let heat = EnvAction::single(home.mini_action("thermostat", "set_heat"));
        assert_eq!(policy.decide(&alarm_state, &heat), Some(RuleEffect::Deny));
    }

    #[test]
    fn sensor_poweroff_denied_everywhere() {
        let home = SmartHome::evaluation_home();
        let policy = emergency_rules(&home);
        for state in [home.midnight_state(), home.occupied_initial_state()] {
            let off = EnvAction::single(home.mini_action("temp_sensor", "power_off"));
            assert_eq!(policy.decide(&state, &off), Some(RuleEffect::Deny));
            let door_off = EnvAction::single(home.mini_action("door_sensor", "power_off"));
            assert_eq!(policy.decide(&state, &door_off), Some(RuleEffect::Deny));
        }
    }
}
