//! The assembled smart home: FSM + authorization + power metering.

use crate::devices;
use crate::power::PowerModel;
use jarvis_iot_model::{
    AppId, AuthzPolicy, DeviceId, EnvState, Fsm, MiniAction, StateIdx, User, UserId,
};

/// Comfort band used to discretize the temperature sensor (°C).
pub const COMFORT_LOW_C: f64 = 20.0;
/// Upper edge of the comfort band (°C).
pub const COMFORT_HIGH_C: f64 = 22.0;

/// A complete smart-home environment: the device FSM, the users and
/// authorization policy, and the power model.
///
/// Use [`SmartHome::example_home`] for the five-device home of Table I and
/// [`SmartHome::evaluation_home`] for the eleven-device home of the
/// quantitative evaluation (Section VI).
#[derive(Debug, Clone)]
pub struct SmartHome {
    fsm: Fsm,
    authz: AuthzPolicy,
    users: Vec<User>,
    power: PowerModel,
}

impl SmartHome {
    /// The five-device example home of Table I.
    ///
    /// # Panics
    ///
    /// Never panics in practice: the catalogue devices are statically valid.
    #[must_use]
    pub fn example_home() -> Self {
        SmartHome::from_devices(devices::example_devices())
    }

    /// The eleven-device evaluation home of Section VI-D (`k = 11`).
    ///
    /// # Panics
    ///
    /// Never panics in practice: the catalogue devices are statically valid.
    #[must_use]
    pub fn evaluation_home() -> Self {
        SmartHome::from_devices(devices::evaluation_devices())
    }

    /// Assemble a home from explicit device specs, with two default users
    /// and an open (manual-only) authorization policy.
    ///
    /// # Panics
    ///
    /// Panics when `specs` is empty.
    #[must_use]
    pub fn from_devices(specs: Vec<jarvis_iot_model::DeviceSpec>) -> Self {
        let fsm = Fsm::new(specs).expect("non-empty device list"); // invariant: documented panic
        let users = vec![
            User { id: UserId(0), name: "alice".to_owned() },
            User { id: UserId(1), name: "bob".to_owned() },
        ];
        SmartHome { fsm, authz: AuthzPolicy::new(), users, power: PowerModel::catalogue() }
    }

    /// The environment FSM.
    #[must_use]
    pub fn fsm(&self) -> &Fsm {
        &self.fsm
    }

    /// The authorization policy (users ↔ apps ↔ devices).
    #[must_use]
    pub fn authz(&self) -> &AuthzPolicy {
        &self.authz
    }

    /// Mutable access to the authorization policy, for installing apps.
    pub fn authz_mut(&mut self) -> &mut AuthzPolicy {
        &mut self.authz
    }

    /// The home's users.
    #[must_use]
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// The power model.
    #[must_use]
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// Device id by name.
    ///
    /// # Panics
    ///
    /// Panics when the device does not exist — callers pass catalogue names.
    #[must_use]
    pub fn device_id(&self, name: &str) -> DeviceId {
        self.fsm
            .device_by_name(name)
            .unwrap_or_else(|| panic!("unknown device `{name}`")) // invariant: documented panic, callers pass catalogue names
    }

    /// State index of `state` on device `name`.
    ///
    /// # Panics
    ///
    /// Panics when the device or state does not exist.
    #[must_use]
    pub fn state_idx(&self, name: &str, state: &str) -> StateIdx {
        let id = self.device_id(name);
        self.fsm
            .device(id)
            .expect("id valid") // invariant: id from device_id above
            .state_idx(state)
            .unwrap_or_else(|| panic!("unknown state `{state}` on `{name}`")) // invariant: documented panic
    }

    /// Build a mini-action from device and action names.
    ///
    /// # Panics
    ///
    /// Panics when the device or action does not exist.
    #[must_use]
    pub fn mini_action(&self, device: &str, action: &str) -> MiniAction {
        let id = self.device_id(device);
        let a = self
            .fsm
            .device(id)
            .expect("id valid") // invariant: id from device_id above
            .action_idx(action)
            .unwrap_or_else(|| panic!("unknown action `{action}` on `{device}`")); // invariant: documented panic
        MiniAction { device: id, action: a }
    }

    /// The mini-actions an agent (user or app) may execute: every catalogue
    /// action except sensor pseudo-actions (`sense_*`, `read_*`, `alarm_*`).
    #[must_use]
    pub fn agent_mini_actions(&self) -> Vec<MiniAction> {
        self.fsm
            .mini_actions()
            .into_iter()
            .filter(|m| {
                self.fsm
                    .device(m.device)
                    .ok()
                    .and_then(|d| d.action_name(m.action))
                    .is_some_and(devices::is_agent_action)
            })
            .collect()
    }

    /// Total power of `state` in watts.
    #[must_use]
    pub fn state_power_w(&self, state: &EnvState) -> f64 {
        self.power.state_power_w(&self.fsm, state)
    }

    /// An everyone-is-home initial state: lock unlocked, sensors sensing,
    /// temperature optimal, everything else in its quiescent state.
    #[must_use]
    pub fn occupied_initial_state(&self) -> EnvState {
        let mut s = self.fsm.initial_state();
        s.set_device(self.device_id("lock"), self.state_idx("lock", "unlocked"));
        if self.fsm.device_by_name("temp_sensor").is_some() {
            s.set_device(
                self.device_id("temp_sensor"),
                self.state_idx("temp_sensor", "optimal"),
            );
        }
        s
    }

    /// The state of the home at midnight, where daily episodes begin:
    /// occupants asleep inside, door locked from the inside, lights off,
    /// HVAC off, sensors reading.
    #[must_use]
    pub fn midnight_state(&self) -> EnvState {
        let mut s = self.fsm.initial_state();
        s.set_device(self.device_id("lock"), self.state_idx("lock", "locked_inside"));
        if self.fsm.device_by_name("temp_sensor").is_some() {
            s.set_device(
                self.device_id("temp_sensor"),
                self.state_idx("temp_sensor", "optimal"),
            );
        }
        if self.fsm.device_by_name("thermostat").is_some() {
            s.set_device(
                self.device_id("thermostat"),
                self.state_idx("thermostat", "off"),
            );
        }
        s
    }

    /// Install an app subscription: the app may actuate the listed devices,
    /// and every user may run the app (matching how consumer platforms
    /// install IFTTT applets).
    pub fn install_app(&mut self, app: AppId, device_names: &[&str]) {
        for name in device_names {
            let id = self.device_id(name);
            self.authz.subscribe_app_device(app, id);
        }
        for user in &self.users {
            self.authz.allow_user_app(user.id, app);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homes_have_expected_sizes() {
        let small = SmartHome::example_home();
        assert_eq!(small.fsm().num_devices(), 5);
        // Table I state space: 4 * 4 * 2 * 3 * 5.
        assert_eq!(small.fsm().state_space_size(), Some(480));
        let eval = SmartHome::evaluation_home();
        assert_eq!(eval.fsm().num_devices(), 11);
    }

    #[test]
    fn name_lookups() {
        let home = SmartHome::example_home();
        assert_eq!(home.device_id("lock"), DeviceId(0));
        assert_eq!(home.state_idx("light", "on"), StateIdx(1));
        let m = home.mini_action("thermostat", "power_off");
        assert_eq!(m.device, DeviceId(3));
    }

    #[test]
    #[should_panic(expected = "unknown device")]
    fn unknown_device_panics() {
        let _ = SmartHome::example_home().device_id("toaster");
    }

    #[test]
    fn agent_actions_exclude_sensor_pseudo_actions() {
        let home = SmartHome::example_home();
        let agent = home.agent_mini_actions();
        let all = home.fsm().mini_actions();
        assert!(agent.len() < all.len());
        for m in &agent {
            let name = home
                .fsm()
                .device(m.device)
                .unwrap()
                .action_name(m.action)
                .unwrap();
            assert!(devices::is_agent_action(name), "{name}");
        }
        // Sensors can still be powered off by an agent (the Table III
        // unsafe-but-high-quality case).
        assert!(agent
            .iter()
            .any(|m| m.device == home.device_id("temp_sensor")));
    }

    #[test]
    fn install_app_grants_chain() {
        let mut home = SmartHome::example_home();
        let app = AppId(1);
        home.install_app(app, &["lock", "light"]);
        let authz = home.authz();
        assert!(authz.app_may_actuate(app, home.device_id("lock")));
        assert!(!authz.app_may_actuate(app, home.device_id("thermostat")));
        assert!(authz.user_may_use_app(UserId(0), app));
    }

    #[test]
    fn occupied_state_is_valid_and_unlocked() {
        let home = SmartHome::evaluation_home();
        let s = home.occupied_initial_state();
        home.fsm().validate_state(&s).unwrap();
        assert_eq!(
            s.device(home.device_id("lock")),
            Some(home.state_idx("lock", "unlocked"))
        );
    }

    #[test]
    fn power_accessor_consistent_with_model() {
        let home = SmartHome::evaluation_home();
        let s = home.occupied_initial_state();
        assert_eq!(
            home.state_power_w(&s),
            home.power().state_power_w(home.fsm(), &s)
        );
    }
}
