//! Smart-home instantiation of the Jarvis IoT model (Section V of the
//! paper).
//!
//! Provides the concrete pieces the paper builds on the Samsung SmartThings
//! platform:
//!
//! * a **device catalogue** ([`devices`]) with the five-device example home
//!   of Table I and the eleven-device evaluation home of Section VI-D;
//! * **power metering** ([`power`]): per-(device, state) wattages feeding the
//!   energy/cost reward functions;
//! * a **logging system** ([`logger`]) that captures every attribute change
//!   as the JSON record of Section V-A-1 and parses logs back into
//!   normalized FSM episodes (Section V-A-2);
//! * an **IFTTT-style trigger-action app engine** ([`apps`]) with the five
//!   apps of Table II.
//!
//! # Example
//!
//! ```
//! use jarvis_smart_home::SmartHome;
//!
//! let home = SmartHome::example_home();
//! assert_eq!(home.fsm().num_devices(), 5);
//! let eval = SmartHome::evaluation_home();
//! assert_eq!(eval.fsm().num_devices(), 11);
//! // Sensor "read_*" pseudo-actions are excluded from what an agent may do.
//! assert!(home.agent_mini_actions().len() < home.fsm().mini_actions().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly_map;
pub mod apps;
pub mod devices;
pub mod driver;
pub mod emergency;
pub mod home;
pub mod logger;
pub mod power;

pub use anomaly_map::anomaly_signature;
pub use driver::simulate_day_with_apps;
pub use emergency::emergency_rules;
pub use apps::{AppEngine, TriggerActionApp};
pub use home::SmartHome;
pub use logger::{EventLog, ParsedEpisodes};
pub use power::PowerModel;
