//! The logging system and log parser of Sections V-A-1 and V-A-2.
//!
//! The logger app subscribes to every device capability: each attribute
//! change becomes one JSON [`Event`] record. The parser runs the records
//! through device-specific *normalization functions* — mapping raw attribute
//! values and commands to discrete FSM states and actions — and replays them
//! through an [`EpisodeRecorder`] to produce the learning-phase episodes the
//! SPL consumes.

use crate::home::SmartHome;
use jarvis_iot_model::{
    Actor, Episode, EpisodeConfig, EpisodeRecorder, Event, EventSource, MiniAction, ModelError,
    OrderPolicy, UserId,
};
use jarvis_sim::dataset::{ActivityEvent, DayActivity};
use jarvis_sim::faults::FaultedDay;
use jarvis_sim::MINUTES_PER_DAY;
use jarvis_stdkit::{json_struct};

/// An append-only log of normalized device events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    records: Vec<Event>,
}

json_struct!(EventLog { records });

/// The result of parsing a log into daily episodes.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEpisodes {
    /// One episode per logged day, in day order.
    pub episodes: Vec<Episode>,
    /// Events that no normalization function could map (unknown device or
    /// value); counted rather than silently dropped.
    pub unmapped_events: usize,
    /// Duplicate submissions the recorders absorbed idempotently
    /// (retransmissions of the same mini-action in one interval).
    pub duplicate_events: usize,
    /// Late events dropped as stale under the recorder's order policy.
    pub stale_events: usize,
    /// Late events re-slotted into the current interval under
    /// [`OrderPolicy::Reslot`].
    pub reslotted_events: usize,
    /// Time instances flagged as known telemetry gaps, summed over all
    /// episodes (see [`Episode::num_gaps`]).
    pub gap_steps: usize,
}

/// Map a raw event name to the catalogue action name for `device`.
///
/// Raw sensor attribute values become sensor pseudo-actions; the cycle
/// appliances translate platform `power_on`/`power_off` commands into their
/// `start`/`stop` actions.
#[must_use]
pub fn normalize_action(device: &str, raw: &str) -> Option<String> {
    let mapped: &str = match (device, raw) {
        ("door_sensor", "auth_user") => "sense_auth",
        ("door_sensor", "unauth_user") => "sense_unauth",
        ("door_sensor", "sensing") => "sense_clear",
        ("temp_sensor", "below_optimal") => "read_below",
        ("temp_sensor", "above_optimal") => "read_above",
        ("temp_sensor", "optimal") => "read_optimal",
        ("temp_sensor", "fire_alarm") => "alarm_fire",
        ("washer" | "dishwasher" | "water_heater", "power_on") => "start",
        ("washer" | "dishwasher" | "water_heater", "power_off") => "stop",
        _ => raw,
    };
    Some(mapped.to_owned())
}

impl EventLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        EventLog::default()
    }

    /// The raw records, oldest first.
    #[must_use]
    pub fn records(&self) -> &[Event] {
        &self.records
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record one day of simulated activity as platform events (what the
    /// logger SmartApp captures from its subscriptions).
    pub fn record_activity(&mut self, home: &SmartHome, activity: &DayActivity) {
        for e in &activity.events {
            self.push_activity_event(home, e);
        }
    }

    /// Record one day of *faulted* activity: the surviving events plus
    /// `health` marker records at each [`OfflineWindow`] boundary, so the
    /// parser flags the covered intervals as known telemetry gaps instead of
    /// misreading the silence as inactivity.
    ///
    /// [`OfflineWindow`]: jarvis_sim::OfflineWindow
    pub fn record_faulted_activity(&mut self, home: &SmartHome, faulted: &FaultedDay) {
        for w in &faulted.offline {
            if home.fsm().device_by_name(&w.device).is_none() {
                continue;
            }
            self.records.push(Self::health_record(faulted.day, w.from_minute, &w.device, "offline"));
            if w.to_minute < MINUTES_PER_DAY {
                self.records
                    .push(Self::health_record(faulted.day, w.to_minute, &w.device, "online"));
            }
        }
        for e in &faulted.events {
            self.push_activity_event(home, e);
        }
    }

    fn push_activity_event(&mut self, home: &SmartHome, e: &ActivityEvent) {
        // Only log events for devices that exist in this home.
        if home.fsm().device_by_name(&e.device).is_none() {
            return;
        }
        self.records.push(Event {
            date: u64::from(e.day) * 86_400 + u64::from(e.minute) * 60,
            data: None,
            user: e.manual.then(|| "alice".to_owned()),
            app: None,
            group: Some("home".to_owned()),
            location: Some("Home".to_owned()),
            device_label: e.device.clone(),
            capability: if e.is_sensor { "sensor" } else { "actuator" }.to_owned(),
            attribute: "state".to_owned(),
            attribute_value: e.name.clone(),
            command: (!e.is_sensor).then(|| e.name.clone()),
            source: if e.is_sensor { EventSource::Device } else { EventSource::Manual },
        });
    }

    fn health_record(day: u32, minute: u32, device: &str, value: &str) -> Event {
        Event {
            date: u64::from(day) * 86_400 + u64::from(minute) * 60,
            data: None,
            user: None,
            app: None,
            group: Some("home".to_owned()),
            location: Some("Home".to_owned()),
            device_label: device.to_owned(),
            capability: "health".to_owned(),
            attribute: "connectivity".to_owned(),
            attribute_value: value.to_owned(),
            command: None,
            source: EventSource::Device,
        }
    }

    /// Serialize as JSON Lines (one record per line), the storage format of
    /// the prototype's log database.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`](jarvis_stdkit::json::JsonError) if
    /// serialization fails (it cannot in practice).
    pub fn to_json_lines(&self) -> Result<String, jarvis_stdkit::json::JsonError> {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json()?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Parse a JSON Lines log.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`](jarvis_stdkit::json::JsonError) on the first
    /// malformed line.
    pub fn from_json_lines(s: &str) -> Result<Self, jarvis_stdkit::json::JsonError> {
        let mut records = Vec::new();
        for line in s.lines().filter(|l| !l.trim().is_empty()) {
            records.push(Event::from_json(line)?);
        }
        Ok(EventLog { records })
    }

    /// Normalize the log into daily FSM episodes (Section V-A-2, with the
    /// prototype's `T` = 1 day, `I` = 1 min when `config` is
    /// [`EpisodeConfig::DAILY_MINUTES`]).
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the home's FSM rejects a replayed
    /// transition (which would indicate a catalogue/normalization bug).
    pub fn parse_episodes(
        &self,
        home: &SmartHome,
        config: EpisodeConfig,
    ) -> Result<ParsedEpisodes, ModelError> {
        self.parse_episodes_with(home, config, OrderPolicy::default())
    }

    /// [`parse_episodes`](EventLog::parse_episodes) with an explicit
    /// [`OrderPolicy`] for late-event handling, for logs recorded from
    /// faulted streams.
    ///
    /// `health` marker records (from
    /// [`record_faulted_activity`](EventLog::record_faulted_activity)) are
    /// consumed here: every interval during which at least one device is
    /// offline is flagged as a known gap on the episode, with state carried
    /// forward.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the home's FSM rejects a replayed
    /// transition (which would indicate a catalogue/normalization bug).
    pub fn parse_episodes_with(
        &self,
        home: &SmartHome,
        config: EpisodeConfig,
        order: OrderPolicy,
    ) -> Result<ParsedEpisodes, ModelError> {
        // Group record indices by day.
        let mut days: std::collections::BTreeMap<u64, Vec<&Event>> =
            std::collections::BTreeMap::new();
        for r in &self.records {
            days.entry(r.date / 86_400).or_default().push(r);
        }

        let mut episodes = Vec::with_capacity(days.len());
        let mut unmapped = 0usize;
        let mut duplicates = 0usize;
        let mut stale = 0usize;
        let mut reslotted = 0usize;
        let mut gap_steps = 0usize;
        for (_day, events) in days {
            let mut by_step: std::collections::BTreeMap<u32, Vec<&Event>> =
                std::collections::BTreeMap::new();
            for e in events {
                let second = (e.date % 86_400) as u32;
                by_step.entry(config.step_at(second).0).or_default().push(e);
            }
            let mut rec =
                EpisodeRecorder::new(home.fsm(), home.authz(), config, home.midnight_state())?
                    .with_order_policy(order);
            let mut offline: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
            for t in 0..config.steps() {
                if let Some(step_events) = by_step.get(&t) {
                    // Health markers first: an `online` at step t closes the
                    // window before this interval's gap check.
                    for e in step_events.iter().filter(|e| e.capability == "health") {
                        match e.attribute_value.as_str() {
                            "offline" => {
                                offline.insert(e.device_label.as_str());
                            }
                            "online" => {
                                offline.remove(e.device_label.as_str());
                            }
                            _ => {}
                        }
                    }
                    for e in step_events.iter().filter(|e| e.capability != "health") {
                        match self.to_mini_action(home, e) {
                            Some(mini) => {
                                // FCFS conflicts are fine; authz uses the
                                // manual pseudo-app for both users and
                                // sensor-origin events.
                                let _ = rec.submit(Actor::manual(UserId(0)), mini)?;
                            }
                            None => unmapped += 1,
                        }
                    }
                }
                if !offline.is_empty() {
                    rec.mark_gap();
                }
                rec.advance()?;
            }
            duplicates += rec.duplicates();
            stale += rec.stale_events();
            reslotted += rec.reslotted_events();
            let ep = rec.finish();
            gap_steps += ep.num_gaps();
            episodes.push(ep);
        }
        Ok(ParsedEpisodes {
            episodes,
            unmapped_events: unmapped,
            duplicate_events: duplicates,
            stale_events: stale,
            reslotted_events: reslotted,
            gap_steps,
        })
    }

    fn to_mini_action(&self, home: &SmartHome, e: &Event) -> Option<MiniAction> {
        let device = home.fsm().device_by_name(&e.device_label)?;
        let raw = e.command.as_deref().unwrap_or(&e.attribute_value);
        let action_name = normalize_action(&e.device_label, raw)?;
        let action = home.fsm().device(device).ok()?.action_idx(&action_name)?;
        Some(MiniAction { device, action })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jarvis_sim::HomeDataset;

    fn logged_day(day: u32) -> (SmartHome, EventLog) {
        let home = SmartHome::evaluation_home();
        let data = HomeDataset::home_a(11);
        let mut log = EventLog::new();
        log.record_activity(&home, &data.activity(day));
        (home, log)
    }

    #[test]
    fn records_every_known_device_event() {
        let (_, log) = logged_day(2);
        assert!(!log.is_empty());
        // Every record carries the paper's JSON fields.
        for r in log.records() {
            assert!(!r.device_label.is_empty());
            assert!(!r.attribute_value.is_empty());
        }
    }

    #[test]
    fn json_lines_round_trip() {
        let (_, log) = logged_day(1);
        let text = log.to_json_lines().unwrap();
        let back = EventLog::from_json_lines(&text).unwrap();
        assert_eq!(log, back);
        assert!(EventLog::from_json_lines("garbage\n").is_err());
    }

    #[test]
    fn normalization_maps_sensor_values() {
        assert_eq!(
            normalize_action("door_sensor", "auth_user").as_deref(),
            Some("sense_auth")
        );
        assert_eq!(
            normalize_action("temp_sensor", "below_optimal").as_deref(),
            Some("read_below")
        );
        assert_eq!(normalize_action("washer", "power_on").as_deref(), Some("start"));
        assert_eq!(normalize_action("light", "power_on").as_deref(), Some("power_on"));
    }

    #[test]
    fn parses_one_episode_per_day() {
        let home = SmartHome::evaluation_home();
        let data = HomeDataset::home_a(5);
        let mut log = EventLog::new();
        for day in 0..3 {
            log.record_activity(&home, &data.activity(day));
        }
        let parsed = log.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();
        assert_eq!(parsed.episodes.len(), 3);
        for ep in &parsed.episodes {
            assert_eq!(ep.len(), 1440);
        }
    }

    #[test]
    fn parsed_episode_reflects_activity() {
        let (home, log) = logged_day(2);
        let parsed = log.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();
        let ep = &parsed.episodes[0];
        // The day has activity: some transitions are non-idle.
        assert!(ep.num_active() > 0, "no active transitions parsed");
        // Most events map cleanly (fridge cycling is not evented, so zero
        // unmapped is expected with the catalogue).
        assert_eq!(parsed.unmapped_events, 0);
    }

    #[test]
    fn lock_state_follows_departures() {
        let (home, log) = logged_day(2); // weekday
        let parsed = log.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();
        let ep = &parsed.episodes[0];
        let lock = home.device_id("lock");
        let locked_outside = home.state_idx("lock", "locked_outside");
        // At some point during a weekday the door is locked from outside.
        assert!(
            ep.states().iter().any(|s| s.device(lock) == Some(locked_outside)),
            "never locked from outside on a weekday"
        );
    }

    #[test]
    fn unknown_devices_are_skipped() {
        let home = SmartHome::example_home(); // 5 devices only
        let data = HomeDataset::home_a(3);
        let mut log = EventLog::new();
        log.record_activity(&home, &data.activity(2));
        // Only events for the 5 catalogue devices are logged.
        for r in log.records() {
            assert!(home.fsm().device_by_name(&r.device_label).is_some());
        }
        let parsed = log.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();
        assert_eq!(parsed.episodes.len(), 1);
    }

    #[test]
    fn zero_fault_plan_records_and_parses_identically() {
        use jarvis_sim::{FaultInjector, FaultPlan};
        let home = SmartHome::evaluation_home();
        let data = HomeDataset::home_a(11);
        let activity = data.activity(2);
        let inj = FaultInjector::new(FaultPlan::none(1)).unwrap();
        let mut clean = EventLog::new();
        clean.record_activity(&home, &activity);
        let mut faulted = EventLog::new();
        faulted.record_faulted_activity(&home, &inj.inject_day(&activity));
        assert_eq!(clean, faulted);
        let a = clean.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();
        let b = faulted.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.gap_steps, 0);
    }

    #[test]
    fn offline_windows_become_flagged_gaps() {
        use jarvis_sim::{FaultInjector, FaultKind, FaultPlan, FaultRule};
        let home = SmartHome::evaluation_home();
        let data = HomeDataset::home_a(11);
        let plan = FaultPlan {
            seed: 21,
            rules: vec![FaultRule::for_device(
                FaultKind::Offline { windows: 2, max_minutes: 90 },
                "lock",
            )],
        };
        let out = FaultInjector::new(plan).unwrap().inject_day(&data.activity(2));
        assert!(!out.offline.is_empty());
        let mut log = EventLog::new();
        log.record_faulted_activity(&home, &out);
        let parsed = log.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();
        let expected: usize = out
            .offline
            .iter()
            .map(|w| (w.to_minute - w.from_minute) as usize)
            .sum();
        assert!(parsed.gap_steps > 0);
        assert!(parsed.gap_steps <= expected, "gaps exceed window coverage");
        assert_eq!(parsed.gap_steps, parsed.episodes[0].num_gaps());
    }

    #[test]
    fn duplicated_events_are_absorbed_idempotently() {
        use jarvis_sim::{FaultInjector, FaultKind, FaultPlan, FaultRule};
        let home = SmartHome::evaluation_home();
        let data = HomeDataset::home_a(11);
        let plan = FaultPlan {
            seed: 5,
            rules: vec![FaultRule::all_day(FaultKind::Duplicate { rate: 0.5 })],
        };
        let out = FaultInjector::new(plan).unwrap().inject_day(&data.activity(2));
        assert!(out.summary.duplicated > 0);
        let mut log = EventLog::new();
        log.record_faulted_activity(&home, &out);
        let parsed = log.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();
        assert!(parsed.duplicate_events > 0);
        // The parsed episode matches the clean parse: duplicates are no-ops.
        let mut clean = EventLog::new();
        clean.record_activity(&home, &data.activity(2));
        let clean_parsed = clean.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();
        assert_eq!(parsed.episodes, clean_parsed.episodes);
    }

    #[test]
    fn shorter_episode_configs_bucket_events() {
        let (home, log) = logged_day(2);
        // One-hour episodes at 1-minute intervals: events past hour 0 are
        // clamped into the final step by step_at, but the day still parses.
        let cfg = EpisodeConfig::new(3_600, 60).unwrap();
        let parsed = log.parse_episodes(&home, cfg).unwrap();
        assert_eq!(parsed.episodes[0].len(), 60);
    }
}
