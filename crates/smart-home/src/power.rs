//! Per-(device, state) power metering.
//!
//! The energy reward `F_0` is "directly proportional to power consumed in
//! all device state transitions for the particular time interval which can
//! be monitored by power meters" (Section V-A-4). [`PowerModel`] is that
//! meter: it assigns a wattage to every device state, so the power of an
//! [`EnvState`] is the sum over devices.

use jarvis_iot_model::{EnvState, Fsm};
use std::collections::BTreeMap;
use jarvis_stdkit::{json_struct};

/// Wattage table keyed by `(device name, state name)`.
///
/// Storage is ordered (`BTreeMap`): iteration order reaches JSON output,
/// so it must not depend on hasher state (lint rule R1, DESIGN.md §12).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerModel {
    watts: BTreeMap<(String, String), f64>,
}

/// JSON-friendly serialized form: sorted `(device, state, watts)` rows,
/// since JSON objects cannot key on tuples.
#[derive(Debug, Clone)]
struct PowerRepr {
    rows: Vec<(String, String, f64)>,
}

json_struct!(PowerRepr { rows });

impl jarvis_stdkit::json::ToJson for PowerModel {
    fn to_json_value(&self) -> jarvis_stdkit::json::Json {
        // Ordered storage: rows come out already sorted by (device, state).
        let rows: Vec<(String, String, f64)> = self
            .watts
            .iter()
            .map(|((d, s), &w)| (d.clone(), s.clone(), w))
            .collect();
        PowerRepr { rows }.to_json_value()
    }
}

impl jarvis_stdkit::json::FromJson for PowerModel {
    fn from_json_value(
        v: &jarvis_stdkit::json::Json,
    ) -> Result<Self, jarvis_stdkit::json::JsonError> {
        let repr = PowerRepr::from_json_value(v)?;
        let mut m = PowerModel::new();
        for (d, s, w) in repr.rows {
            m.watts.insert((d, s), w);
        }
        Ok(m)
    }
}

impl PowerModel {
    /// An empty model (every state draws 0 W).
    #[must_use]
    pub fn new() -> Self {
        PowerModel::default()
    }

    /// The catalogue model: wattages consistent with the `jarvis-sim` trace
    /// generator so measured and modelled energy agree.
    #[must_use]
    pub fn catalogue() -> Self {
        let mut m = PowerModel::new();
        let entries: &[(&str, &str, f64)] = &[
            ("lock", "locked_outside", 2.0),
            ("lock", "unlocked", 2.0),
            ("lock", "locked_inside", 2.0),
            ("lock", "off", 0.0),
            ("door_sensor", "sensing", 1.0),
            ("door_sensor", "auth_user", 1.0),
            ("door_sensor", "unauth_user", 1.0),
            ("door_sensor", "off", 0.0),
            ("light", "on", 180.0),
            ("light", "off", 0.0),
            ("thermostat", "heat", 2_000.0),
            ("thermostat", "cool", 1_800.0),
            ("thermostat", "off", 0.0),
            ("temp_sensor", "below_optimal", 1.0),
            ("temp_sensor", "above_optimal", 1.0),
            ("temp_sensor", "optimal", 1.0),
            ("temp_sensor", "fire_alarm", 1.0),
            ("temp_sensor", "off", 0.0),
            ("fridge", "running", 45.0), // duty-cycle average
            ("fridge", "door_open", 120.0),
            ("fridge", "off", 0.0),
            ("oven", "on", 2_000.0),
            ("oven", "off", 0.0),
            ("tv", "on", 110.0),
            ("tv", "off", 0.0),
            ("washer", "running", 500.0),
            ("washer", "idle", 0.0),
            ("dishwasher", "running", 1_200.0),
            ("dishwasher", "idle", 0.0),
            ("water_heater", "heating", 1_500.0),
            ("water_heater", "idle", 0.0),
        ];
        for &(dev, state, w) in entries {
            m.set(dev, state, w);
        }
        m
    }

    /// Set the wattage of one device state.
    pub fn set(&mut self, device: impl Into<String>, state: impl Into<String>, watts: f64) {
        self.watts.insert((device.into(), state.into()), watts);
    }

    /// Wattage of one device state (0 when unknown).
    #[must_use]
    pub fn watts(&self, device: &str, state: &str) -> f64 {
        self.watts
            .get(&(device.to_owned(), state.to_owned()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Total power of an environment state under `fsm`, in watts.
    /// Unknown devices/states contribute 0.
    #[must_use]
    pub fn state_power_w(&self, fsm: &Fsm, state: &EnvState) -> f64 {
        state
            .iter()
            .map(|(id, s)| {
                fsm.device(id)
                    .ok()
                    .and_then(|d| d.state_name(s).map(|name| self.watts(d.name(), name)))
                    .unwrap_or(0.0)
            })
            .sum()
    }

    /// The maximum possible power of any state of `fsm`, in watts — used to
    /// normalize the energy reward to `[0, 1]`.
    #[must_use]
    pub fn max_power_w(&self, fsm: &Fsm) -> f64 {
        fsm.devices()
            .map(|(_, d)| {
                d.state_indices()
                    .filter_map(|s| d.state_name(s).map(|n| self.watts(d.name(), n)))
                    .fold(0.0, f64::max)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;
    use jarvis_iot_model::{DeviceId, StateIdx};

    fn eval_fsm() -> Fsm {
        Fsm::new(devices::evaluation_devices()).unwrap()
    }

    #[test]
    fn catalogue_covers_every_state() {
        let fsm = eval_fsm();
        let p = PowerModel::catalogue();
        for (_, dev) in fsm.devices() {
            for s in dev.state_indices() {
                let name = dev.state_name(s).unwrap();
                // Every (device, state) must be explicitly present in the
                // catalogue table (0 W is fine, silently-missing is not).
                assert!(
                    p.watts.contains_key(&(dev.name().to_owned(), name.to_owned())),
                    "missing wattage for {}.{}",
                    dev.name(),
                    name
                );
            }
        }
    }

    #[test]
    fn state_power_sums_devices() {
        let fsm = eval_fsm();
        let p = PowerModel::catalogue();
        let mut state = fsm.initial_state();
        let base = p.state_power_w(&fsm, &state);
        // Turn the light on (device 2, state "on" = 1).
        state.set_device(DeviceId(2), StateIdx(1));
        assert!((p.state_power_w(&fsm, &state) - base - 180.0).abs() < 1e-9);
    }

    #[test]
    fn max_power_exceeds_any_state() {
        let fsm = eval_fsm();
        let p = PowerModel::catalogue();
        let max = p.max_power_w(&fsm);
        assert!(max > 7_000.0, "max {max}");
        for state in fsm.enumerate_states().take(2_000) {
            assert!(p.state_power_w(&fsm, &state) <= max + 1e-9);
        }
    }

    #[test]
    fn unknown_state_draws_zero() {
        let p = PowerModel::catalogue();
        assert_eq!(p.watts("toaster", "on"), 0.0);
    }

    #[test]
    fn set_overrides() {
        let mut p = PowerModel::new();
        p.set("light", "on", 60.0);
        assert_eq!(p.watts("light", "on"), 60.0);
        p.set("light", "on", 75.0);
        assert_eq!(p.watts("light", "on"), 75.0);
    }

    #[test]
    fn hvac_wattages_match_sim_thermal_model() {
        use jarvis_sim::thermal::{HvacMode, ThermalModel};
        let p = PowerModel::catalogue();
        assert_eq!(p.watts("thermostat", "heat"), ThermalModel::power_w(HvacMode::Heat));
        assert_eq!(p.watts("thermostat", "cool"), ThermalModel::power_w(HvacMode::Cool));
    }
}
