//! Property-based tests for the smart-home instantiation: the logging
//! pipeline, normalization, and app engine under arbitrary seeds.

use jarvis_iot_model::EpisodeConfig;
use jarvis_sim::HomeDataset;
use jarvis_smart_home::{AppEngine, EventLog, SmartHome};
use jarvis_stdkit::prop_assert;
use jarvis_stdkit::prop_assert_eq;
use jarvis_stdkit::propcheck::Config;

/// The log → parse pipeline is total for any dataset seed/day: a full
/// 1440-step episode, Δ-consistent, zero unmapped events.
#[test]
fn logging_pipeline_is_total() {
    Config::with_cases(24).run(|g| {
        let seed = g.u64();
        let day = g.u32_in(0, 39);
        let home = SmartHome::evaluation_home();
        let data = HomeDataset::home_b(seed);
        let mut log = EventLog::new();
        log.record_activity(&home, &data.activity(day));
        let parsed = log.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();
        prop_assert_eq!(parsed.episodes.len(), 1);
        prop_assert_eq!(parsed.unmapped_events, 0);
        let ep = &parsed.episodes[0];
        prop_assert_eq!(ep.len(), 1440);
        for tr in ep.transitions().iter().step_by(63) {
            prop_assert_eq!(&home.fsm().step(&tr.state, &tr.action).unwrap(), &tr.next);
        }
        Ok(())
    });
}

/// JSON-lines serialization of any day's log round-trips exactly.
#[test]
fn log_serialization_round_trips() {
    Config::with_cases(24).run(|g| {
        let seed = g.u64();
        let day = g.u32_in(0, 39);
        let home = SmartHome::evaluation_home();
        let data = HomeDataset::home_a(seed);
        let mut log = EventLog::new();
        log.record_activity(&home, &data.activity(day));
        let text = log.to_json_lines().unwrap();
        let back = EventLog::from_json_lines(&text).unwrap();
        prop_assert_eq!(log, back);
        Ok(())
    });
}

/// App firing is edge-triggered: a state that keeps matching never
/// re-fires, and firing is deterministic in the (prev, cur) pair.
#[test]
fn app_engine_is_edge_triggered_and_deterministic() {
    Config::with_cases(24).run(|g| {
        let lock_state = g.u8_in(0, 3);
        let door_state = g.u8_in(0, 3);
        let temp_state = g.u8_in(0, 4);
        let mut home = SmartHome::example_home();
        let engine = AppEngine::install_table2_apps(&mut home);
        let prev = home.midnight_state();
        let cur = {
            let mut s = prev.clone();
            s.set_device(home.device_id("lock"), jarvis_iot_model::StateIdx(lock_state));
            s.set_device(home.device_id("door_sensor"), jarvis_iot_model::StateIdx(door_state));
            s.set_device(home.device_id("temp_sensor"), jarvis_iot_model::StateIdx(temp_state));
            s
        };
        let fired1 = engine.fired_on_edge(&prev, &cur);
        let fired2 = engine.fired_on_edge(&prev, &cur);
        prop_assert_eq!(&fired1, &fired2, "firing must be deterministic");
        // Holding the state yields no new firings.
        prop_assert!(engine.fired_on_edge(&cur, &cur).is_empty());
        // Every fired action is authorized for its app.
        for (app, mini) in &fired1 {
            prop_assert!(home.authz().app_may_actuate(*app, mini.device));
        }
        Ok(())
    });
}

/// The power model never reports negative power, and total state power
/// is bounded by the declared maximum for arbitrary valid states.
#[test]
fn power_is_bounded() {
    Config::with_cases(24).run(|g| {
        let raw: Vec<u8> = (0..11).map(|_| g.u8()).collect();
        let home = SmartHome::evaluation_home();
        let sizes = home.fsm().state_sizes();
        let state: jarvis_iot_model::EnvState = raw
            .iter()
            .zip(&sizes)
            .map(|(&r, &n)| jarvis_iot_model::StateIdx(r % n as u8))
            .collect();
        let p = home.state_power_w(&state);
        let max = home.power().max_power_w(home.fsm());
        prop_assert!(p >= 0.0);
        prop_assert!(p <= max + 1e-9, "{p} W exceeds declared max {max} W");
        Ok(())
    });
}
