//! Micro-benchmark harness: a small, offline replacement for `criterion`.
//!
//! Mirrors the criterion call surface the workspace uses — a [`Bench`]
//! context with `bench_function`, a [`Bencher`] with `iter`/`iter_batched`,
//! a [`BatchSize`] hint, and the [`crate::bench_group!`]/[`crate::bench_main!`]
//! macro pair for `harness = false` bench targets.
//!
//! Methodology: each benchmark is warmed up for a fixed wall-clock budget,
//! then sampled in batches sized so one batch lasts roughly a millisecond;
//! the report shows the median, mean, and min of the per-iteration times.
//! Passing any command-line argument filters benchmarks by substring
//! (mirroring `cargo bench <filter>`); `--quick` cuts the budgets 10×.

use std::time::{Duration, Instant};

/// Re-export so bench code can use `black_box` through the harness.
pub use std::hint::black_box;

/// Monotonic nanoseconds since an arbitrary process-wide anchor.
///
/// The one sanctioned wall-clock source outside the bench harnesses: code
/// that wants *informational* timing (latency telemetry, progress logs)
/// takes an injectable `Option<fn() -> u64>` and callers that opt in pass
/// this function. Deterministic paths pass `None` and make zero clock
/// calls, which is what lint rule R2 (`wall-clock`) enforces — only this
/// module and `crates/bench` may touch `Instant`/`SystemTime` directly.
#[must_use]
pub fn monotonic_ns() -> u64 {
    static ANCHOR: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// How `iter_batched` amortizes setup cost; accepted for criterion
/// compatibility (the harness re-runs setup per measured batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Setup re-run for every routine call.
    PerIteration,
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `routine` repeatedly, recording per-iteration nanoseconds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / iters.max(1) as f64;
        // Size batches to ~1ms so Instant overhead stays negligible.
        let batch = ((1e-3 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed().as_secs_f64();
            self.samples.push(elapsed * 1e9 / batch as f64);
        }
    }

    /// Measure `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            let input = setup();
            black_box(routine(input));
            iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / iters.max(1) as f64;
        let batch = ((1e-3 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 16) as usize;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = t0.elapsed().as_secs_f64();
            self.samples.push(elapsed * 1e9 / batch as f64);
        }
    }
}

/// Benchmark registry and runner; the `c` in `fn bench_x(c: &mut Bench)`.
pub struct Bench {
    filter: Option<String>,
    warmup: Duration,
    measure: Duration,
    ran: usize,
}

impl Default for Bench {
    fn default() -> Self {
        Bench::from_args(std::env::args().skip(1))
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:8.1} ns")
    } else if ns < 1e6 {
        format!("{:8.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:8.2} ms", ns / 1e6)
    } else {
        format!("{:8.2} s ", ns / 1e9)
    }
}

impl Bench {
    /// Build from an iterator of CLI arguments (first non-flag argument is
    /// the name filter; `--quick` shortens budgets 10×).
    pub fn from_args(args: impl Iterator<Item = String>) -> Bench {
        let mut filter = None;
        let mut quick = false;
        for arg in args {
            match arg.as_str() {
                "--quick" => quick = true,
                // Ignore cargo-bench plumbing flags.
                "--bench" | "--test" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        let (warmup, measure) = if quick {
            (Duration::from_millis(5), Duration::from_millis(20))
        } else {
            (Duration::from_millis(50), Duration::from_millis(200))
        };
        Bench { filter, warmup, measure, ran: 0 }
    }

    /// Run one named benchmark (skipped unless it matches the filter).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher =
            Bencher { warmup: self.warmup, measure: self.measure, samples: Vec::new() };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{name:<40} (no samples)");
            return self;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples[0];
        println!(
            "{name:<40} median {}  mean {}  min {}  ({} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min),
            samples.len()
        );
        self.ran += 1;
        self
    }

    /// Number of benchmarks actually executed (post-filter).
    #[must_use]
    pub fn executed(&self) -> usize {
        self.ran
    }
}

/// Declare a bench group: `bench_group!(group_name, bench_fn_a, bench_fn_b);`
/// generates `fn group_name(c: &mut Bench)` running each function in order.
#[macro_export]
macro_rules! bench_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group(c: &mut $crate::bench::Bench) {
            $($function(c);)+
        }
    };
}

/// Declare the bench entry point: `bench_main!(group_a, group_b);` generates
/// `fn main()` for a `harness = false` bench target.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut bench = $crate::bench::Bench::default();
            $($group(&mut bench);)+
            eprintln!("ran {} benchmark(s)", bench.executed());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench() -> Bench {
        Bench::from_args(["--quick".to_string()].into_iter())
    }

    #[test]
    fn iter_measures_and_reports() {
        let mut b = quick_bench();
        b.bench_function("smoke/iter", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        assert_eq!(b.executed(), 1);
    }

    #[test]
    fn iter_batched_consumes_setup_inputs() {
        let mut b = quick_bench();
        b.bench_function("smoke/batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(b.executed(), 1);
    }

    #[test]
    fn monotonic_ns_is_nondecreasing() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a, "clock went backwards: {a} -> {b}");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut b = Bench::from_args(["--quick".into(), "only_this".into()].into_iter());
        b.bench_function("other/name", |b| b.iter(|| 1u32 + 1));
        assert_eq!(b.executed(), 0);
        b.bench_function("group/only_this_one", |b| b.iter(|| 1u32 + 1));
        assert_eq!(b.executed(), 1);
    }
}
