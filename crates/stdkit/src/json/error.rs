//! Codec error type.

use std::fmt;

/// Error produced by JSON parsing or typed decoding. Carries a human-readable
/// message with a trail of `field`/`struct` context frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// Build an error from a message.
    #[must_use]
    pub fn msg(message: impl Into<String>) -> Self {
        JsonError { message: message.into() }
    }

    /// A type-mismatch error: `expected X, found Y`.
    #[must_use]
    pub fn expected(what: &str, found: &super::value::Json) -> Self {
        JsonError::msg(format!("expected {what}, found {}", found.type_name()))
    }

    /// Wrap with a `field \`name\`` context frame.
    #[must_use]
    pub fn in_field(self, field: &str) -> Self {
        JsonError::msg(format!("field `{field}`: {}", self.message))
    }

    /// Wrap with an `in TypeName` context frame.
    #[must_use]
    pub fn in_type(self, type_name: &str) -> Self {
        JsonError::msg(format!("in {type_name}: {}", self.message))
    }

    /// The formatted message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}
