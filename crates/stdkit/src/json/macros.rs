//! Derive-by-macro for the JSON codec.
//!
//! Three macro-by-example "derives" replace the workspace's former
//! `#[derive(Serialize, Deserialize)]` attributes:
//!
//! * [`json_struct!`] — named-field structs, encoded as objects. Decoding is
//!   strict: missing, mistyped, and unknown fields are all errors.
//! * [`json_newtype!`] — one-field tuple structs, encoded transparently as
//!   the inner value (matching serde's newtype behaviour).
//! * [`json_enum!`] — enums with unit, one-field-tuple, and struct variants,
//!   encoded externally tagged (`"Variant"`, `{"Variant": inner}`,
//!   `{"Variant": {…fields}}`) exactly as serde encodes them.
//!
//! ```
//! use jarvis_stdkit::json::{FromJson, ToJson};
//! use jarvis_stdkit::{json_enum, json_struct};
//!
//! #[derive(Debug, PartialEq)]
//! enum Mode { Auto, Fixed(u8), Tuned { gain: f64 } }
//! json_enum!(Mode { Auto, Fixed(inner), Tuned { gain } });
//!
//! #[derive(Debug, PartialEq)]
//! struct Config { name: String, mode: Mode }
//! json_struct!(Config { name, mode });
//!
//! let c = Config { name: "x".into(), mode: Mode::Tuned { gain: 0.5 } };
//! let text = c.to_json();
//! assert_eq!(text, r#"{"name":"x","mode":{"Tuned":{"gain":0.5}}}"#);
//! assert_eq!(Config::from_json(&text).unwrap(), c);
//! ```

/// Implement `ToJson`/`FromJson` for a named-field struct.
///
/// `json_struct!(TypeName { field_a, field_b })` — every listed field must
/// itself implement the codec traits. Unknown fields are rejected on decode.
#[macro_export]
macro_rules! json_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $name {
            fn to_json_value(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::json::ToJson::to_json_value(&self.$field)),)+
                ])
            }
        }

        impl $crate::json::FromJson for $name {
            fn from_json_value(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                $crate::json::check_object(v, stringify!($name), &[$(stringify!($field)),+])?;
                Ok(Self {
                    $($field: $crate::json::field(v, stringify!($field))
                        .map_err(|e| e.in_type(stringify!($name)))?,)+
                })
            }
        }
    };
}

/// Implement `ToJson`/`FromJson` for a one-field tuple struct, encoding it
/// transparently as its inner value: `json_newtype!(DeviceId)`.
#[macro_export]
macro_rules! json_newtype {
    ($name:ident) => {
        impl $crate::json::ToJson for $name {
            fn to_json_value(&self) -> $crate::json::Json {
                $crate::json::ToJson::to_json_value(&self.0)
            }
        }

        impl $crate::json::FromJson for $name {
            fn from_json_value(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                $crate::json::FromJson::from_json_value(v)
                    .map($name)
                    .map_err(|e| e.in_type(stringify!($name)))
            }
        }
    };
}

/// Implement `JsonKey` for a one-field tuple struct whose inner type is
/// already a key (an integer or `String`), so the newtype can be used as a
/// map key: `json_key_newtype!(DeviceId)`. Matches serde_json's behaviour of
/// stringifying integer-keyed maps.
#[macro_export]
macro_rules! json_key_newtype {
    ($name:ident) => {
        impl $crate::json::JsonKey for $name {
            fn to_key(&self) -> String {
                $crate::json::JsonKey::to_key(&self.0)
            }

            fn from_key(s: &str) -> Result<Self, $crate::json::JsonError> {
                $crate::json::JsonKey::from_key(s).map($name)
            }
        }
    };
}

/// Implement `ToJson`/`FromJson` for an enum, externally tagged like serde.
///
/// Variants may be unit (`Idle`), one-field tuples (`Exactly(inner)` — the
/// identifier is just a binding name), or struct-like (`Sgd { lr, momentum }`).
#[macro_export]
macro_rules! json_enum {
    ($name:ident { $($body:tt)* }) => {
        impl $crate::json::ToJson for $name {
            fn to_json_value(&self) -> $crate::json::Json {
                $crate::json_enum!(@to_match self [] $($body)*)
            }
        }

        impl $crate::json::FromJson for $name {
            fn from_json_value(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                $crate::json_enum!(@from v, $name ; $($body)*);
                Err($crate::json::JsonError::msg(format!(
                    "no variant of {} matches {}",
                    stringify!($name),
                    v,
                )))
            }
        }
    };

    // ---- serialization: accumulate match arms, then emit the match -------
    (@to_match $self:ident [$($arms:tt)*]) => {
        match $self { $($arms)* }
    };
    (@to_match $self:ident [$($arms:tt)*] $variant:ident $(, $($rest:tt)*)?) => {
        $crate::json_enum!(@to_match $self [
            $($arms)*
            Self::$variant => $crate::json::Json::Str(stringify!($variant).to_string()),
        ] $($($rest)*)?)
    };
    (@to_match $self:ident [$($arms:tt)*] $variant:ident ( $inner:ident ) $(, $($rest:tt)*)?) => {
        $crate::json_enum!(@to_match $self [
            $($arms)*
            Self::$variant($inner) => $crate::json::Json::Obj(vec![(
                stringify!($variant).to_string(),
                $crate::json::ToJson::to_json_value($inner),
            )]),
        ] $($($rest)*)?)
    };
    (@to_match $self:ident [$($arms:tt)*] $variant:ident { $($f:ident),+ $(,)? } $(, $($rest:tt)*)?) => {
        $crate::json_enum!(@to_match $self [
            $($arms)*
            Self::$variant { $($f),+ } => $crate::json::Json::Obj(vec![(
                stringify!($variant).to_string(),
                $crate::json::Json::Obj(vec![
                    $((stringify!($f).to_string(), $crate::json::ToJson::to_json_value($f)),)+
                ]),
            )]),
        ] $($($rest)*)?)
    };

    // ---- deserialization: one early-return probe per variant -------------
    (@from $v:ident, $name:ident ;) => {};
    (@from $v:ident, $name:ident ; $variant:ident $(, $($rest:tt)*)?) => {
        if $v.as_str() == Some(stringify!($variant)) {
            return Ok(Self::$variant);
        }
        $crate::json_enum!(@from $v, $name ; $($($rest)*)?);
    };
    (@from $v:ident, $name:ident ; $variant:ident ( $inner:ident ) $(, $($rest:tt)*)?) => {
        if let Some(payload) = $crate::json_enum!(@tagged $v, $variant) {
            return $crate::json::FromJson::from_json_value(payload)
                .map(Self::$variant)
                .map_err(|e| e.in_field(stringify!($variant)).in_type(stringify!($name)));
        }
        $crate::json_enum!(@from $v, $name ; $($($rest)*)?);
    };
    (@from $v:ident, $name:ident ; $variant:ident { $($f:ident),+ $(,)? } $(, $($rest:tt)*)?) => {
        if let Some(payload) = $crate::json_enum!(@tagged $v, $variant) {
            $crate::json::check_object(payload, stringify!($name), &[$(stringify!($f)),+])
                .map_err(|e| e.in_field(stringify!($variant)))?;
            return Ok(Self::$variant {
                $($f: $crate::json::field(payload, stringify!($f))
                    .map_err(|e| e.in_field(stringify!($variant)).in_type(stringify!($name)))?,)+
            });
        }
        $crate::json_enum!(@from $v, $name ; $($($rest)*)?);
    };

    // Payload of a single-key `{"Variant": …}` object, if the key matches.
    (@tagged $v:ident, $variant:ident) => {
        match $v.as_object() {
            Some(fields) if fields.len() == 1 && fields[0].0 == stringify!($variant) => {
                Some(&fields[0].1)
            }
            _ => None,
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::json::{FromJson, ToJson};

    #[derive(Debug, Clone, PartialEq)]
    struct Point {
        x: i32,
        y: i32,
    }
    json_struct!(Point { x, y });

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Meters(f64);
    json_newtype!(Meters);

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Empty,
        Dot(Point),
        Rect { w: f64, h: f64 },
    }
    json_enum!(Shape { Empty, Dot(p), Rect { w, h } });

    #[derive(Debug, Clone, PartialEq)]
    struct Scene {
        name: String,
        shapes: Vec<Shape>,
        scale: Option<Meters>,
    }
    json_struct!(Scene {
        name,
        shapes,
        scale,
    });

    #[test]
    fn struct_round_trip_and_strictness() {
        let p = Point { x: -3, y: 9 };
        assert_eq!(p.to_json(), r#"{"x":-3,"y":9}"#);
        assert_eq!(Point::from_json(r#"{"x":-3,"y":9}"#).unwrap(), p);
        assert_eq!(Point::from_json(r#"{"y":9,"x":-3}"#).unwrap(), p, "field order free");

        let missing = Point::from_json(r#"{"x":1}"#).unwrap_err();
        assert!(missing.message().contains("missing field `y`"), "{missing}");
        let unknown = Point::from_json(r#"{"x":1,"y":2,"z":3}"#).unwrap_err();
        assert!(unknown.message().contains("unknown field `z`"), "{unknown}");
        let mistyped = Point::from_json(r#"{"x":1,"y":"two"}"#).unwrap_err();
        assert!(mistyped.message().contains("field `y`"), "{mistyped}");
        assert!(Point::from_json("[1,2]").is_err());
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(Meters(2.5).to_json(), "2.5");
        assert_eq!(Meters::from_json("2.5").unwrap(), Meters(2.5));
        assert!(Meters::from_json("\"2.5\"").is_err());
    }

    #[test]
    fn enum_round_trip_all_shapes() {
        let cases = [
            (Shape::Empty, r#""Empty""#),
            (Shape::Dot(Point { x: 1, y: 2 }), r#"{"Dot":{"x":1,"y":2}}"#),
            (Shape::Rect { w: 1.5, h: 2.0 }, r#"{"Rect":{"w":1.5,"h":2}}"#),
        ];
        for (shape, text) in cases {
            assert_eq!(shape.to_json(), text);
            assert_eq!(Shape::from_json(text).unwrap(), shape);
        }
    }

    #[test]
    fn enum_rejects_bad_tags_and_payloads() {
        assert!(Shape::from_json(r#""Dot""#).is_err(), "tuple variant needs payload");
        assert!(Shape::from_json(r#"{"Empty":1}"#).is_err(), "unit variant takes none");
        assert!(Shape::from_json(r#""Nope""#).is_err());
        assert!(Shape::from_json(r#"{"Rect":{"w":1}}"#).is_err(), "missing h");
        assert!(Shape::from_json(r#"{"Rect":{"w":1,"h":2,"d":3}}"#).is_err());
        assert!(Shape::from_json("7").is_err());
    }

    #[test]
    fn nested_struct_round_trip() {
        let scene = Scene {
            name: "s".into(),
            shapes: vec![Shape::Empty, Shape::Rect { w: 0.5, h: 4.25 }],
            scale: None,
        };
        let text = scene.to_json();
        assert_eq!(Scene::from_json(&text).unwrap(), scene);
        let with_scale = Scene { scale: Some(Meters(1.5)), ..scene };
        assert_eq!(Scene::from_json(&with_scale.to_json()).unwrap(), with_scale);
    }
}
