//! Minimal JSON codec: a value tree, a strict parser, `ToJson`/`FromJson`
//! traits, and macro-by-example "derives" (see [`crate::json_struct!`],
//! [`crate::json_newtype!`], [`crate::json_enum!`]).
//!
//! Replaces `serde`/`serde_json` for the workspace's needs: device logs,
//! model snapshots, and round-trip tests. Decoding is strict — wrong types,
//! missing fields, and unknown fields return [`JsonError`], never panic.

mod error;
mod macros;
mod parse;
mod traits;
mod value;

pub use error::JsonError;
pub use traits::{check_object, field, FromJson, JsonKey, ToJson};
pub use value::Json;

/// Serialize any [`ToJson`] value to compact JSON text.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json()
}

/// Parse JSON text into any [`FromJson`] type.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(text)
}

/// Parse JSON text into a [`Json`] tree.
pub fn to_value<T: ToJson + ?Sized>(value: &T) -> Json {
    value.to_json_value()
}
