//! Recursive-descent JSON parser: strict grammar, byte-offset errors,
//! bounded depth, never panics on malformed input.

use super::error::JsonError;
use super::value::Json;

/// Maximum nesting depth before the parser bails out (guards the stack
/// against adversarial inputs like `[[[[…`).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl Json {
    /// Parse a complete JSON document. Trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), text: input, pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::msg(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']' in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '{'
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}' in object"));
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut acc: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            acc = acc * 16 + u16::from(d);
            self.pos += 1;
        }
        Ok(acc)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require a low surrogate next.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(u32::from(hi)).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("unescaped control character in string")),
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is &str, so valid).
                    let rest = &self.text[self.pos..];
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.eat(b'-');
        // Integer part: '0' alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.text[start..self.pos];
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                // Keep "-0" a float so the sign bit survives round trips.
                if !(i == 0 && negative) {
                    return Ok(Json::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::msg(format!("number out of range at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(p("null"), Json::Null);
        assert_eq!(p(" true "), Json::Bool(true));
        assert_eq!(p("false"), Json::Bool(false));
        assert_eq!(p("42"), Json::Int(42));
        assert_eq!(p("-7"), Json::Int(-7));
        assert_eq!(p("18446744073709551615"), Json::UInt(u64::MAX));
        assert_eq!(p("1.5e3"), Json::Float(1500.0));
        assert_eq!(p("\"hi\""), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        assert_eq!(
            p(r#"{"a":[1,2,{"b":null}],"c":"d"}"#),
            Json::Obj(vec![
                (
                    "a".into(),
                    Json::Arr(vec![
                        Json::Int(1),
                        Json::Int(2),
                        Json::Obj(vec![("b".into(), Json::Null)]),
                    ]),
                ),
                ("c".into(), Json::Str("d".into())),
            ])
        );
        assert_eq!(p("[]"), Json::Arr(vec![]));
        assert_eq!(p("{}"), Json::Obj(vec![]));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" slash\\ nl\n tab\t unicode\u{1F600}é ctrl\u{01}";
        let rendered = Json::Str(original.into()).to_string();
        assert_eq!(p(&rendered), Json::Str(original.into()));
        assert_eq!(p(r#""\ud83d\ude00""#), Json::Str("\u{1F600}".into()));
        assert_eq!(p(r#""\u00e9""#), Json::Str("é".into()));
    }

    #[test]
    fn float_round_trips_are_bit_exact() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 2.5e300, -0.0, 123456.789, f64::MIN_POSITIVE] {
            let back = p(&Json::Float(x).to_string());
            let y = back.as_f64().unwrap();
            assert_eq!(x.to_bits(), y.to_bits(), "{x} -> {back:?}");
        }
        assert_eq!(p(&Json::Int(i64::MIN).to_string()), Json::Int(i64::MIN));
        assert_eq!(p(&Json::UInt(u64::MAX).to_string()), Json::UInt(u64::MAX));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "   ",
            "{",
            "[1,",
            "[1 2]",
            r#"{"a" 1}"#,
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            "[1,2,]",
            "tru",
            "nul",
            "01",
            "1.",
            ".5",
            "+1",
            "1e",
            "--1",
            "\"unterminated",
            "\"bad escape \\x\"",
            r#""\ud800""#,
            "{\"a\":1}extra",
            "[1]]",
            "NaN",
            "Infinity",
            "'single'",
            "{\"dup\":1,\"dup\":2}",
            "\u{01}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_depth() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn huge_integers_degrade_to_float() {
        assert_eq!(p("99999999999999999999999999"), Json::Float(1e26));
        assert_eq!(p("-0"), Json::Float(-0.0));
        assert!(p("-0").as_f64().unwrap().is_sign_negative());
    }
}
