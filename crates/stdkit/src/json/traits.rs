//! `ToJson` / `FromJson`: the typed codec layer, with impls for the
//! primitives and containers the workspace serializes.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use super::error::JsonError;
use super::value::Json;

/// Types that can render themselves as a JSON tree.
pub trait ToJson {
    /// Build the JSON tree for `self`.
    fn to_json_value(&self) -> Json;

    /// Compact JSON text for `self`.
    fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }
}

/// Types that can be decoded from a JSON tree. Decoding is strict: wrong
/// types, missing fields, and unknown fields are all errors, never panics.
pub trait FromJson: Sized {
    /// Decode from a parsed tree.
    fn from_json_value(value: &Json) -> Result<Self, JsonError>;

    /// Parse and decode from JSON text.
    fn from_json(text: &str) -> Result<Self, JsonError> {
        Json::parse(text).and_then(|v| Self::from_json_value(&v))
    }
}

// --- helpers used by the derive macros -------------------------------------

/// Decode a required object field (macro support).
pub fn field<T: FromJson>(obj: &Json, name: &str) -> Result<T, JsonError> {
    match obj.get(name) {
        Some(v) => T::from_json_value(v).map_err(|e| e.in_field(name)),
        None => Err(JsonError::msg(format!("missing field `{name}`"))),
    }
}

/// Error unless `v` is an object whose keys all appear in `allowed`
/// (macro support; makes unknown fields a decode error).
pub fn check_object(v: &Json, type_name: &str, allowed: &[&str]) -> Result<(), JsonError> {
    let fields = v
        .as_object()
        .ok_or_else(|| JsonError::expected("object", v).in_type(type_name))?;
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(JsonError::msg(format!("unknown field `{key}`")).in_type(type_name));
        }
    }
    Ok(())
}

// --- scalar impls ----------------------------------------------------------

impl ToJson for bool {
    fn to_json_value(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::expected("bool", v))
    }
}

macro_rules! signed_json {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json_value(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json_value(v: &Json) -> Result<Self, JsonError> {
                let i = v.as_i64().ok_or_else(|| JsonError::expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| {
                    JsonError::msg(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )+};
}

signed_json!(i8, i16, i32, i64, isize);

macro_rules! unsigned_json {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json_value(&self) -> Json {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Json::Int(i),
                    Err(_) => Json::UInt(wide),
                }
            }
        }
        impl FromJson for $t {
            fn from_json_value(v: &Json) -> Result<Self, JsonError> {
                let u = v.as_u64().ok_or_else(|| JsonError::expected("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| {
                    JsonError::msg(format!("{u} out of range for {}", stringify!($t)))
                })
            }
        }
    )+};
}

unsigned_json!(u8, u16, u32, u64, usize);

impl ToJson for f64 {
    fn to_json_value(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::expected("number", v))
    }
}

impl ToJson for f32 {
    fn to_json_value(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| JsonError::expected("number", v))
    }
}

impl ToJson for String {
    fn to_json_value(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_owned).ok_or_else(|| JsonError::expected("string", v))
    }
}

impl ToJson for str {
    fn to_json_value(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for char {
    fn to_json_value(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for char {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        let s = v.as_str().ok_or_else(|| JsonError::expected("single-char string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(JsonError::msg(format!("expected single-char string, got {s:?}"))),
        }
    }
}

// --- container impls -------------------------------------------------------

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> Json {
        (**self).to_json_value()
    }
}

impl<T: ToJson> ToJson for Box<T> {
    fn to_json_value(&self) -> Json {
        (**self).to_json_value()
    }
}

impl<T: FromJson> FromJson for Box<T> {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> Json {
        match self {
            None => Json::Null,
            Some(inner) => inner.to_json_value(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        let items = v.as_array().ok_or_else(|| JsonError::expected("array", v))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                T::from_json_value(item).map_err(|e| e.in_field(&format!("[{i}]")))
            })
            .collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json_value(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json_value).collect())
    }
}

macro_rules! tuple_json {
    ($(($($name:ident : $idx:tt),+) with $len:literal;)+) => {$(
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json_value(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json_value(v: &Json) -> Result<Self, JsonError> {
                let items = v.as_array().ok_or_else(|| JsonError::expected("array", v))?;
                if items.len() != $len {
                    return Err(JsonError::msg(format!(
                        "expected array of {}, found {} elements", $len, items.len()
                    )));
                }
                Ok(($($name::from_json_value(&items[$idx])
                    .map_err(|e| e.in_field(&format!("[{}]", $idx)))?,)+))
            }
        }
    )+};
}

tuple_json! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
    (A: 0, B: 1, C: 2, D: 3, E: 4) with 5;
}

/// Types usable as JSON object keys, encoded as strings — `String` itself
/// plus integers and integer-backed newtype ids (serde_json does the same
/// stringification for integer-keyed maps). Implement via
/// [`crate::json_key_newtype!`] for newtype wrappers.
pub trait JsonKey: Sized {
    /// Render the key as the object-field string.
    fn to_key(&self) -> String;

    /// Parse the key back from the object-field string.
    fn from_key(s: &str) -> Result<Self, JsonError>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, JsonError> {
        Ok(s.to_owned())
    }
}

macro_rules! int_json_key {
    ($($t:ty),+) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, JsonError> {
                s.parse::<$t>().map_err(|_| {
                    JsonError::msg(format!("invalid {} map key {s:?}", stringify!($t)))
                })
            }
        }
    )+};
}

int_json_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey, V: ToJson, S> ToJson for HashMap<K, V, S> {
    /// Keys are emitted in sorted order so output is deterministic.
    fn to_json_value(&self) -> Json {
        let mut fields: Vec<(String, Json)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_json_value())).collect();
        fields.sort_by(|(a, _), (b, _)| a.cmp(b));
        Json::Obj(fields)
    }
}

impl<K, V, S> FromJson for HashMap<K, V, S>
where
    K: JsonKey + std::hash::Hash + Eq,
    V: FromJson,
    S: std::hash::BuildHasher + Default,
{
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        let fields = v.as_object().ok_or_else(|| JsonError::expected("object", v))?;
        fields
            .iter()
            .map(|(k, val)| {
                let key = K::from_key(k)?;
                V::from_json_value(val).map(|d| (key, d)).map_err(|e| e.in_field(k))
            })
            .collect()
    }
}

impl<K: JsonKey, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json_value(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.to_key(), v.to_json_value())).collect())
    }
}

impl<K: JsonKey + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        let fields = v.as_object().ok_or_else(|| JsonError::expected("object", v))?;
        fields
            .iter()
            .map(|(k, val)| {
                let key = K::from_key(k)?;
                V::from_json_value(val).map(|d| (key, d)).map_err(|e| e.in_field(k))
            })
            .collect()
    }
}

impl<T: ToJson> ToJson for BTreeSet<T> {
    fn to_json_value(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: FromJson + Ord> FromJson for BTreeSet<T> {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Vec::<T>::from_json_value(v).map(|items| items.into_iter().collect())
    }
}

impl<T: ToJson + Ord + Clone, S> ToJson for HashSet<T, S> {
    /// Elements are emitted in sorted order so output is deterministic.
    fn to_json_value(&self) -> Json {
        let mut items: Vec<T> = self.iter().cloned().collect();
        items.sort();
        Json::Arr(items.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T, S> FromJson for HashSet<T, S>
where
    T: FromJson + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Vec::<T>::from_json_value(v).map(|items| items.into_iter().collect())
    }
}

impl ToJson for Json {
    fn to_json_value(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::from_json(&u64::MAX.to_json()).unwrap(), u64::MAX);
        assert_eq!(i64::from_json(&i64::MIN.to_json()).unwrap(), i64::MIN);
        assert_eq!(u8::from_json("255").unwrap(), 255);
        assert!(u8::from_json("256").is_err());
        assert!(u8::from_json("-1").is_err());
        assert!(i8::from_json("1e2").is_err(), "floats are not integers");
        assert_eq!(f64::from_json("3").unwrap(), 3.0, "ints coerce to floats");
        assert_eq!(String::from_json("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(char::from_json("\"é\"").unwrap(), 'é');
        assert!(char::from_json("\"ab\"").is_err());
        assert!(bool::from_json("1").is_err());
    }

    #[test]
    fn container_round_trips() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        assert_eq!(v.to_json(), "[1,null,3]");
        assert_eq!(Vec::<Option<u32>>::from_json("[1,null,3]").unwrap(), v);

        let t = (1u8, "x".to_string(), 2.5f64);
        let back: (u8, String, f64) = FromJson::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        assert!(<(u8, u8)>::from_json("[1]").is_err());

        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        assert_eq!(m.to_json(), r#"{"a":1,"b":2}"#, "sorted for determinism");
        assert_eq!(HashMap::<String, u32>::from_json(&m.to_json()).unwrap(), m);

        let mut bt = BTreeMap::new();
        bt.insert("k".to_string(), vec![1u8, 2]);
        assert_eq!(BTreeMap::<String, Vec<u8>>::from_json(&bt.to_json()).unwrap(), bt);
    }

    #[test]
    fn helper_field_and_check_object() {
        let v = Json::parse(r#"{"a":1,"b":"x"}"#).unwrap();
        assert_eq!(field::<u32>(&v, "a").unwrap(), 1);
        assert!(field::<u32>(&v, "missing").unwrap_err().message().contains("missing field"));
        assert!(field::<u32>(&v, "b").unwrap_err().message().contains("field `b`"));
        assert!(check_object(&v, "T", &["a", "b"]).is_ok());
        let err = check_object(&v, "T", &["a"]).unwrap_err();
        assert!(err.message().contains("unknown field `b`"), "{err}");
        assert!(check_object(&Json::Int(1), "T", &[]).is_err());
    }
}
