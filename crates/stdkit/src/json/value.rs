//! The JSON value tree and its compact serializer.

use std::fmt;

/// A parsed JSON document.
///
/// Numbers keep three representations so integer round trips are exact at
/// full `i64`/`u64` width (seeds and counters in the workspace are `u64`):
/// the parser yields [`Json::Int`] when the literal fits `i64`,
/// [`Json::UInt`] for larger unsigned literals, and [`Json::Float`]
/// otherwise. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer literal within `i64`.
    Int(i64),
    /// Integer literal within `u64` but beyond `i64`.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as an ordered field list.
    Obj(Vec<(String, Json)>),
}

/// Shared sentinel for out-of-bounds indexing, mirroring `serde_json`'s
/// `Value::Null` return on missing keys.
static NULL: Json = Json::Null;

impl Json {
    /// `true` for `Json::Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Boolean payload, if this is a `Bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer payload when exactly representable as `i64`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Integer payload when exactly representable as `u64`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// Numeric payload coerced to `f64` (lossless for `Float`, best-effort
    /// for wide integers).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String payload.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object payload as the ordered field list.
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Json)>> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Field lookup on objects; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable name of the variant, for error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::UInt(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;

    /// `value["key"]` — `Json::Null` for missing keys, like `serde_json`.
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;

    /// `value[i]` — `Json::Null` out of bounds, like `serde_json`.
    fn index(&self, idx: usize) -> &Json {
        match self {
            Json::Arr(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    /// Compact (no-whitespace) JSON. Floats use Rust's shortest
    /// round-trippable form; non-finite floats become `null` (as in
    /// `serde_json`'s lossy mode).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Float(x) if !x.is_finite() => f.write_str("null"),
            Json::Float(x) if *x == 0.0 && x.is_sign_negative() => f.write_str("-0.0"),
            Json::Float(x) => write!(f, "{x}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_indexing() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Int(3)),
            ("b".into(), Json::Arr(vec![Json::Bool(true), Json::Str("x".into())])),
        ]);
        assert_eq!(v["a"].as_i64(), Some(3));
        assert_eq!(v["a"].as_u64(), Some(3));
        assert_eq!(v["a"].as_f64(), Some(3.0));
        assert_eq!(v["b"][0].as_bool(), Some(true));
        assert_eq!(v["b"][1].as_str(), Some("x"));
        assert!(v["missing"].is_null());
        assert!(v["b"][9].is_null());
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(Json::UInt(u64::MAX).as_i64(), None);
    }

    #[test]
    fn display_escapes_and_compacts() {
        let v = Json::Obj(vec![(
            "k\"ey".into(),
            Json::Arr(vec![Json::Null, Json::Str("a\nb\t\\".into()), Json::Float(1.5)]),
        )]);
        assert_eq!(v.to_string(), r#"{"k\"ey":[null,"a\nb\t\\",1.5]}"#);
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(-0.0).to_string(), "-0.0");
        assert_eq!(Json::Str("\u{01}".into()).to_string(), "\"\\u0001\"");
    }
}
