//! # jarvis-stdkit
//!
//! The zero-dependency foundation of the Jarvis workspace. Every other crate
//! builds on the four modules here instead of pulling registry dependencies,
//! so `cargo build --release && cargo test -q` completes with no network and
//! no vendored registry:
//!
//! | module | replaces | provides |
//! |---|---|---|
//! | [`rng`] | `rand`, `rand_chacha` | ChaCha8, xoshiro256++, SplitMix64; `Rng`/`SeedableRng`/`SliceRandom` traits, Gaussian sampling |
//! | [`json`] | `serde`, `serde_json` | `Json` tree, strict parser, `ToJson`/`FromJson`, `json_struct!`/`json_newtype!`/`json_enum!` derives |
//! | [`propcheck`] | `proptest` | seeded property harness, choice-tape shrinking, `prop_assert*!` macros |
//! | [`bench`] | `criterion` | warmup+sampling micro-bench runner, `bench_group!`/`bench_main!` |
//! | [`sync`] | `crossbeam-channel` / `crossbeam-deque` | bounded MPSC channels with blocking and shedding sends; lock-free bounded MPMC steal queues |
//! | [`pool`] | `rayon` (scoped pools) | persistent lazily-started worker pool with `StealQueue` handoff, caller participation, and scoped fork/join |
//!
//! Everything is deterministic by construction: generators are seeded,
//! property cases derive from a fixed base seed, and JSON output has a
//! canonical field order — the bedrock for the reproducibility claims the
//! paper reproduction makes (identical episode traces, weights, and
//! Q-tables from identical seeds).

pub mod bench;
pub mod json;
pub mod pool;
pub mod propcheck;
pub mod rng;
pub mod sync;
