//! Persistent worker pool — scoped fork/join without per-call spawning.
//!
//! PR 2 fanned GEMM row blocks across [`std::thread::scope`], which spawns
//! and joins OS threads on *every* call; `BENCH_neural.json` showed that
//! overhead making `Threads(n)` slower than single-thread exactly at the
//! 64/128 batch sizes the serving runtime produces. This module replaces
//! the per-call scopes with one lazily-started pool whose workers park
//! between jobs, with work handed off through the lock-free
//! [`StealQueue`](crate::sync::StealQueue) from the work-stealing core.
//!
//! # Handoff protocol
//!
//! A call to [`WorkerPool::run_scoped`] with `n` tasks:
//!
//! 1. materialises a stack-allocated `Job` — one take-once cell per task
//!    plus a mutex-guarded completion counter;
//! 2. publishes tickets (job pointer + task index) for tasks `1..n` onto
//!    the shared [`StealQueue`] and wakes parked workers (tickets that do
//!    not fit the bounded ring are retained and run by the caller);
//! 3. runs task `0` itself, then **helps**: it keeps popping tickets —
//!    its own or another job's — until its own completion counter reaches
//!    `n`, parking on the job's condvar only while the ring is empty.
//!
//! The caller-participates rule is what makes the pool well-behaved on a
//! single-core host (the bench baseline box): with zero background
//! workers every task runs inline on the caller, so `Threads(n)` costs a
//! few queue operations instead of `n` thread spawns. It also makes
//! nested `run_scoped` calls deadlock-free: every waiter drains the ring
//! before parking, so queued work can never be orphaned.
//!
//! # Determinism
//!
//! The pool schedules *which thread* runs a task, never *what* the task
//! computes: callers pre-split their work into fixed chunks, so results
//! are bit-identical at every pool size, including zero workers. The
//! kernel-conformance battery in `crates/neural/tests/properties.rs`
//! sweeps pool sizes {1, 2, 4, 8} to enforce this.
//!
//! # Panic safety
//!
//! Task panics are caught in the executing thread (worker threads
//! survive), recorded on the job, and re-raised on the *submitting*
//! thread with the original payload ([`std::panic::resume_unwind`]; the
//! first panic wins, later ones are dropped) — but only after every task
//! of the job has finished, so the borrowed data the tasks reference
//! stays alive for as long as any worker can touch it. A panicking task
//! therefore cannot deadlock the pool or poison subsequent calls, and the
//! supervisor above can classify the caught payload as if the task had
//! panicked inline.

use crate::sync::{PushError, StealQueue};
use std::any::Any;
use std::cell::UnsafeCell;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Capacity of the shared ticket ring. Jobs with more tasks than fit are
/// still correct: unplaceable tickets are retained and run by the caller.
const TICKET_RING_CAPACITY: usize = 256;

/// The process-wide thread budget: `JARVIS_THREADS` when set to a positive
/// integer, else the host's available parallelism. **Read once** at first
/// use and cached for the life of the process — resolving the knob per
/// call put an environment lookup (a libc lock) on every kernel dispatch.
#[must_use]
pub fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        thread_budget_from(std::env::var("JARVIS_THREADS").ok().as_deref())
    })
}

/// Resolve a raw `JARVIS_THREADS` value to a thread budget: a positive
/// integer wins, anything else falls back to the host's parallelism.
/// Factored out of [`configured_threads`] so tests can exercise the parse
/// without mutating the process environment (setenv racing getenv across
/// test threads is undefined behavior on glibc).
fn thread_budget_from(raw: Option<&str>) -> usize {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// A boxed scoped task. The lifetime is the borrow of the caller's data;
/// [`WorkerPool::run_scoped`] guarantees the task is dropped before it
/// returns, which is what makes the internal lifetime erasure sound.
pub type ScopedTask<'s> = Box<dyn FnOnce() + Send + 's>;

/// One task slot of a job. Ticket indices are unique, so exactly one
/// thread ever takes a given cell — that exclusivity is the `Sync` proof.
struct TaskCell<'s>(UnsafeCell<Option<ScopedTask<'s>>>);

// SAFETY: a cell is accessed only through its (unique) ticket, so there is
// never concurrent access to the same cell; the mutex-guarded completion
// counter sequences the final read of task side effects.
unsafe impl Sync for TaskCell<'_> {}

/// Completion state of a job, guarded by `Job::state`.
struct JobState {
    done: usize,
    /// The first panicking task's payload, re-raised on the submitter.
    payload: Option<Box<dyn Any + Send>>,
}

/// A stack-allocated fork/join job: the task cells plus a completion
/// latch. Lives in the `run_scoped` frame; tickets reference it by raw
/// pointer, which stays valid because `run_scoped` does not return (or
/// unwind) until `done == tasks.len()`.
struct Job<'s> {
    tasks: Vec<TaskCell<'s>>,
    state: Mutex<JobState>,
    cv: Condvar,
}

/// A unit of handoff on the shared ring: which job, which task.
#[derive(Clone, Copy)]
struct Ticket {
    job: *const Job<'static>,
    index: usize,
}

// SAFETY: the pointee is kept alive by the submitting thread until every
// ticket of the job has executed (see `Job`), and `Job` itself is `Sync`.
unsafe impl Send for Ticket {}

/// Shared pool state — the ticket ring plus the worker parking lot.
struct Inner {
    queue: StealQueue<Ticket>,
    /// Wake generation: bumped (under the lock) each time tickets are
    /// published, so a worker that raced past a push still observes the
    /// change and re-checks the ring instead of sleeping through it.
    gate: Mutex<u64>,
    cv: Condvar,
    shutdown: AtomicBool,
    workers: usize,
    spawned: AtomicUsize,
    jobs: AtomicU64,
}

/// A persistent fork/join worker pool (see the module docs for the
/// protocol). Use [`WorkerPool::global`] for the process-wide instance;
/// [`WorkerPool::with_workers`] builds private pools for tests.
pub struct WorkerPool {
    inner: Arc<Inner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl WorkerPool {
    /// The process-wide pool, started lazily on first use with
    /// `configured_threads() - 1` background workers (the caller is the
    /// remaining worker). Never shut down; parked workers cost nothing.
    #[must_use]
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::with_workers(configured_threads().saturating_sub(1)))
    }

    /// A private pool with exactly `workers` background threads (0 is
    /// valid: every task then runs inline on the submitting thread).
    #[must_use]
    pub fn with_workers(workers: usize) -> WorkerPool {
        let inner = Arc::new(Inner {
            queue: StealQueue::new(TICKET_RING_CAPACITY),
            gate: Mutex::new(0),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers,
            spawned: AtomicUsize::new(0),
            jobs: AtomicU64::new(0),
        });
        let pool = WorkerPool { inner: Arc::clone(&inner), handles: Mutex::new(Vec::new()) };
        let mut handles = pool.handles.lock().expect("pool handle registry");
        for i in 0..workers {
            let worker_inner = Arc::clone(&pool.inner);
            let handle = std::thread::Builder::new()
                .name(format!("jarvis-pool-{i}"))
                .spawn(move || worker_loop(&worker_inner))
                .expect("spawn pool worker");
            inner.spawned.fetch_add(1, Ordering::Relaxed);
            handles.push(handle);
        }
        drop(handles);
        pool
    }

    /// Background workers this pool was built with.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Total worker threads ever spawned — equals [`Self::workers`] for
    /// the pool's whole life. The lifecycle tests assert it stays flat
    /// across jobs (reuse, not respawn) and across task panics.
    #[must_use]
    pub fn spawned_workers(&self) -> usize {
        // ordering: Relaxed — monotonic stat counter read; tests only look
        // after join points, which already order the increments.
        self.inner.spawned.load(Ordering::Relaxed)
    }

    /// Jobs executed through this pool since it started.
    #[must_use]
    pub fn jobs_run(&self) -> u64 {
        // ordering: Relaxed — monotonic stat counter read (see above).
        self.inner.jobs.load(Ordering::Relaxed)
    }

    /// Run every task to completion, borrowing the caller's data for the
    /// duration of the call (a scoped fork/join). Tasks may run on pool
    /// workers, on other threads waiting in `run_scoped`, or inline on
    /// this thread; completion — and panic propagation — is always
    /// observed here before the call returns.
    ///
    /// # Panics
    ///
    /// Re-raises the first panicking task's original payload after all
    /// tasks finish, mirroring `std::thread::scope` join semantics.
    pub fn run_scoped<'s>(&self, tasks: Vec<ScopedTask<'s>>) {
        let n = tasks.len();
        if n == 0 {
            return;
        }
        self.inner.jobs.fetch_add(1, Ordering::Relaxed);
        if self.inner.workers == 0 || n == 1 {
            // Nobody to hand off to: run in submission order, no erasure.
            for task in tasks {
                task();
            }
            return;
        }
        let job = Job {
            tasks: tasks.into_iter().map(|t| TaskCell(UnsafeCell::new(Some(t)))).collect(),
            state: Mutex::new(JobState { done: 0, payload: None }),
            cv: Condvar::new(),
        };
        // SAFETY: the erased-lifetime pointer never escapes this frame
        // alive — the completion loop below refuses to return (or unwind)
        // before `done == n`, at which point no thread holds a ticket.
        let erased: *const Job<'static> = (&raw const job).cast();
        let mut retained = Vec::new();
        for index in 1..n {
            let ticket = Ticket { job: erased, index };
            if let Err(PushError::Full(t)) = self.inner.queue.try_push(ticket) {
                retained.push(t);
            }
        }
        self.wake_workers();
        run_ticket(Ticket { job: erased, index: 0 });
        for ticket in retained {
            run_ticket(ticket);
        }
        // Help until our job completes: drain the ring (any job's tickets
        // count — a nested or concurrent submitter may be waiting on us),
        // parking only while it is empty.
        loop {
            {
                let mut state = job.state.lock().expect("pool job state");
                if state.done == n {
                    let payload = state.payload.take();
                    drop(state);
                    if let Some(payload) = payload {
                        resume_unwind(payload);
                    }
                    return;
                }
            }
            if let Some(ticket) = self.inner.queue.pop() {
                run_ticket(ticket);
                continue;
            }
            let mut state = job.state.lock().expect("pool job state");
            while state.done < n && self.inner.queue.is_empty() {
                state = job.cv.wait(state).expect("pool job condvar");
            }
        }
    }

    /// Bump the wake generation and rouse parked workers. Skipped when the
    /// pool has no background workers (the caller runs everything).
    fn wake_workers(&self) {
        if self.inner.workers == 0 {
            return;
        }
        {
            let mut generation = self.inner.gate.lock().expect("pool gate");
            *generation = generation.wrapping_add(1);
        }
        // lock-ok: the gate condvar lives in the pool's Arc<Inner>, which
        // outlives every worker; parked workers re-check the generation
        // under the gate lock, so a notify landing after the unlock can
        // never be lost or touch freed state.
        self.inner.cv.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let mut generation = self.inner.gate.lock().expect("pool gate");
            *generation = generation.wrapping_add(1);
        }
        // lock-ok: same shape as wake_workers — Arc-owned gate condvar,
        // workers re-check generation + shutdown under the lock.
        self.inner.cv.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().expect("pool handle registry"));
        for handle in handles {
            // discard-ok: a worker that panicked outside a task already
            // surfaced its payload through the job latch; at teardown the
            // join error carries nothing actionable.
            let _ = handle.join();
        }
    }
}

/// Execute one ticket: take the task (exactly once — indices are unique),
/// run it under `catch_unwind`, then advance the job's completion latch.
/// The latch update happens under the job mutex, so the submitter can only
/// observe `done == n` after every side effect of every task.
fn run_ticket(ticket: Ticket) {
    // SAFETY: the submitting thread keeps the job alive until the latch
    // reaches `n` (see `Job`), and this ticket grants exclusive access to
    // cell `index`.
    let job = unsafe { &*ticket.job };
    // SAFETY: ticket indices are handed out exactly once per cell, so this
    // UnsafeCell take is the cell's only concurrent access.
    let task = unsafe { (*job.tasks[ticket.index].0.get()).take() };
    let payload = match task {
        Some(task) => catch_unwind(AssertUnwindSafe(task)).err(),
        None => None,
    };
    let mut state = job.state.lock().expect("pool job state");
    state.done += 1;
    if let Some(payload) = payload {
        // First panic wins; later payloads are dropped.
        state.payload.get_or_insert(payload);
    }
    // Notify *while holding the guard*: the instant the mutex is released,
    // a submitter spinning in its help loop can observe `done == n` and
    // return, freeing the stack-allocated job — so the unlock must be this
    // thread's final touch of the job, with no condvar access after it.
    // (Releasing a mutex another thread then frees is the one
    // use-after-unlock std::sync::Mutex explicitly supports.)
    job.cv.notify_all();
    drop(state);
}

/// Background worker: drain the ring, then park on the gate condvar until
/// the wake generation moves (or shutdown). The generation re-check under
/// the lock closes the pop-raced-with-push window, so no wakeup is lost.
fn worker_loop(inner: &Inner) {
    loop {
        while let Some(ticket) = inner.queue.pop() {
            run_ticket(ticket);
        }
        let mut generation = inner.gate.lock().expect("pool gate");
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        if !inner.queue.is_empty() {
            continue;
        }
        let seen = *generation;
        while *generation == seen {
            generation = inner.cv.wait(generation).expect("pool gate condvar");
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// Sizes shrink under Miri, where every interleaving is simulated.
    fn scale(n: usize) -> usize {
        if cfg!(miri) {
            n.min(4)
        } else {
            n
        }
    }

    #[test]
    fn runs_every_task_exactly_once() {
        for workers in [0, 1, 2, 4, 8] {
            let pool = WorkerPool::with_workers(scale(workers));
            let n = scale(64).max(8);
            let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            let tasks: Vec<ScopedTask<'_>> = hits
                .iter()
                .map(|h| Box::new(move || { h.fetch_add(1, Ordering::Relaxed); }) as ScopedTask<'_>)
                .collect();
            pool.run_scoped(tasks);
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} at {workers} workers");
            }
        }
    }

    #[test]
    fn results_are_identical_across_pool_sizes() {
        // The pool only schedules; pre-chunked work must come out
        // bit-identical no matter how many workers execute it.
        let n = scale(32).max(4);
        let input: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let reference: Vec<u64> = input.iter().map(|&v| v.wrapping_pow(3) ^ 0xabcd).collect();
        for workers in [1usize, 2, 4, 8] {
            let pool = WorkerPool::with_workers(scale(workers));
            let mut out = vec![0u64; n];
            {
                let tasks: Vec<ScopedTask<'_>> = out
                    .iter_mut()
                    .zip(&input)
                    .map(|(slot, &v)| {
                        Box::new(move || *slot = v.wrapping_pow(3) ^ 0xabcd) as ScopedTask<'_>
                    })
                    .collect();
                pool.run_scoped(tasks);
            }
            assert_eq!(out, reference, "workers={workers}");
        }
    }

    #[test]
    fn pool_is_reused_not_respawned() {
        let pool = WorkerPool::with_workers(scale(3).max(1));
        let before = pool.spawned_workers();
        assert_eq!(before, pool.workers());
        for _ in 0..scale(20) {
            let counter = AtomicU32::new(0);
            let tasks: Vec<ScopedTask<'_>> = (0..4)
                .map(|_| Box::new(|| { counter.fetch_add(1, Ordering::Relaxed); }) as ScopedTask<'_>)
                .collect();
            pool.run_scoped(tasks);
            assert_eq!(counter.load(Ordering::Relaxed), 4);
        }
        assert_eq!(pool.spawned_workers(), before, "jobs must reuse workers, never respawn");
        assert_eq!(pool.jobs_run(), scale(20) as u64);
    }

    #[test]
    fn panicking_task_neither_deadlocks_nor_poisons() {
        let pool = WorkerPool::with_workers(scale(2).max(1));
        let spawned = pool.spawned_workers();
        let survivors = AtomicU32::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<ScopedTask<'_>> = (0..6)
                .map(|i| {
                    let survivors = &survivors;
                    Box::new(move || {
                        if i == 2 {
                            panic!("injected task panic");
                        }
                        survivors.fetch_add(1, Ordering::Relaxed);
                    }) as ScopedTask<'_>
                })
                .collect();
            pool.run_scoped(tasks);
        }));
        assert!(result.is_err(), "the submitter must observe the panic");
        // Every non-panicking task still ran to completion first.
        assert_eq!(survivors.load(Ordering::Relaxed), 5);
        // The pool is not poisoned: same workers, next job succeeds.
        assert_eq!(pool.spawned_workers(), spawned);
        let after = AtomicU32::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..4)
            .map(|_| Box::new(|| { after.fetch_add(1, Ordering::Relaxed); }) as ScopedTask<'_>)
            .collect();
        pool.run_scoped(tasks);
        assert_eq!(after.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panic_payload_is_preserved_for_the_submitter() {
        // The supervisor layers above classify caught payloads, so the
        // pool must re-raise the task's own payload, not a fresh message.
        for workers in [0usize, 2] {
            let pool = WorkerPool::with_workers(scale(workers));
            let result = catch_unwind(AssertUnwindSafe(|| {
                let tasks: Vec<ScopedTask<'_>> = (0..4)
                    .map(|i| {
                        Box::new(move || {
                            if i == 1 {
                                panic!("poison seq 42");
                            }
                        }) as ScopedTask<'_>
                    })
                    .collect();
                pool.run_scoped(tasks);
            }));
            let payload = result.expect_err("the submitter must observe the panic");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .expect("payload must survive the handoff");
            assert_eq!(msg, "poison seq 42", "workers={workers}");
        }
    }

    #[test]
    fn nested_run_scoped_makes_progress() {
        let pool = WorkerPool::with_workers(scale(2).max(1));
        let total = AtomicU32::new(0);
        let outer: Vec<ScopedTask<'_>> = (0..scale(4).max(2))
            .map(|_| {
                let total = &total;
                Box::new(move || {
                    let inner: Vec<ScopedTask<'_>> = (0..3)
                        .map(|_| {
                            Box::new(move || { total.fetch_add(1, Ordering::Relaxed); })
                                as ScopedTask<'_>
                        })
                        .collect();
                    WorkerPool::global().run_scoped(inner);
                }) as ScopedTask<'_>
            })
            .collect();
        let n = outer.len() as u32;
        pool.run_scoped(outer);
        assert_eq!(total.load(Ordering::Relaxed), 3 * n);
    }

    #[test]
    fn overflowing_the_ticket_ring_falls_back_inline() {
        let pool = WorkerPool::with_workers(1);
        let n = if cfg!(miri) { 8 } else { TICKET_RING_CAPACITY + 64 };
        let counter = AtomicU32::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..n)
            .map(|_| Box::new(|| { counter.fetch_add(1, Ordering::Relaxed); }) as ScopedTask<'_>)
            .collect();
        pool.run_scoped(tasks);
        assert_eq!(counter.load(Ordering::Relaxed) as usize, n);
    }

    #[test]
    fn thread_budget_parses_without_touching_env() {
        // The parse logic is tested directly — mutating JARVIS_THREADS with
        // set_var would race getenv on other libtest threads (UB on glibc).
        assert_eq!(thread_budget_from(Some("97")), 97);
        assert_eq!(thread_budget_from(Some("  8\t")), 8);
        let host = thread_budget_from(None);
        assert!(host >= 1);
        // Zero, negatives, and garbage all fall back to host parallelism.
        assert_eq!(thread_budget_from(Some("0")), host);
        assert_eq!(thread_budget_from(Some("-3")), host);
        assert_eq!(thread_budget_from(Some("lots")), host);
        assert_eq!(thread_budget_from(Some("")), host);
    }

    #[test]
    fn configured_threads_is_read_once() {
        // The knob is resolved once and cached for the life of the
        // process: repeated calls must agree with the first resolution.
        let first = configured_threads();
        assert!(first >= 1);
        assert_eq!(configured_threads(), first, "JARVIS_THREADS must be read once, not per call");
    }

    #[test]
    fn empty_job_is_a_noop() {
        let pool = WorkerPool::with_workers(1);
        pool.run_scoped(Vec::new());
        assert_eq!(pool.jobs_run(), 0);
    }
}
