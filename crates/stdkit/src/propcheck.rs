//! `propcheck`: a seeded property-testing mini-harness with input shrinking.
//!
//! Replaces `proptest` for the workspace. A property is a closure that both
//! *generates* its input by drawing from a [`Gen`] and *checks* the
//! invariant, returning `Err(message)` (usually via [`crate::prop_assert!`])
//! or panicking on failure:
//!
//! ```
//! use jarvis_stdkit::propcheck::Config;
//! use jarvis_stdkit::prop_assert;
//!
//! Config::with_cases(64).run(|g| {
//!     let xs = g.vec(0, 8, |g| g.i64_in(-100, 100));
//!     let mut sorted = xs.clone();
//!     sorted.sort_unstable();
//!     prop_assert!(sorted.len() == xs.len(), "sorting must preserve length");
//!     Ok(())
//! });
//! ```
//!
//! Every random draw is recorded as a `u64` *choice tape*. When a case
//! fails, the harness shrinks the tape — deleting spans and shrinking
//! individual choices toward zero — and replays the property on each
//! candidate, keeping the smallest tape that still fails (the approach of
//! Hypothesis, and of `proptest`'s underlying byte-oriented strategies).
//! Because generators map the zero choice to their simplest value, a
//! minimal tape decodes to a minimal counterexample.
//!
//! Runs are fully deterministic: the per-case RNG is derived from
//! `Config::seed`, so a failing seed printed in a report reproduces exactly.

use crate::rng::{RngCore, SeedableRng, SplitMix64, Xoshiro256PlusPlus};

/// Outcome of one property execution: `Err` carries the failure message.
pub type TestResult = Result<(), String>;

enum Source {
    /// Fresh randomness from the per-case RNG.
    Random(Xoshiro256PlusPlus),
    /// Replay of a recorded tape; draws past the end yield 0.
    Replay(Vec<u64>, usize),
}

/// The generator handle passed to properties. Each `Gen` method consumes
/// choices from the tape; all derived values shrink toward the method's
/// lower bound as the underlying choices shrink toward zero.
pub struct Gen {
    source: Source,
    record: Vec<u64>,
}

impl Gen {
    fn random(rng: Xoshiro256PlusPlus) -> Gen {
        Gen { source: Source::Random(rng), record: Vec::new() }
    }

    fn replay(tape: Vec<u64>) -> Gen {
        Gen { source: Source::Replay(tape, 0), record: Vec::new() }
    }

    /// Draw one choice in `[0, span)` (`span == 0` means the full `u64`
    /// domain). The *reduced* value is what lands on the tape, so shrinking
    /// operates directly on meaningful quantities: halving a tape entry
    /// halves the decoded value.
    fn choice_below(&mut self, span: u64) -> u64 {
        let raw = match &mut self.source {
            Source::Random(rng) => rng.next_u64(),
            Source::Replay(tape, cursor) => {
                let v = tape.get(*cursor).copied().unwrap_or(0);
                *cursor += 1;
                v
            }
        };
        let value = if span == 0 { raw } else { raw % span };
        self.record.push(value);
        value
    }

    /// A full-domain `u64` (shrinks toward 0).
    pub fn u64(&mut self) -> u64 {
        self.choice_below(0)
    }

    /// A full-domain `u32`.
    pub fn u32(&mut self) -> u32 {
        self.choice_below(1 << 32) as u32
    }

    /// A full-domain `u8`.
    pub fn u8(&mut self) -> u8 {
        self.choice_below(1 << 8) as u8
    }

    /// Uniform `usize` in `[lo, hi]` (shrinks toward `lo`).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "usize_in: {lo} > {hi}");
        let span = ((hi - lo) as u64).wrapping_add(1);
        lo + self.choice_below(span) as usize
    }

    /// Uniform `u32` in `[lo, hi]` (shrinks toward `lo`).
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.usize_in(lo as usize, hi as usize) as u32
    }

    /// Uniform `u8` in `[lo, hi]` (shrinks toward `lo`).
    pub fn u8_in(&mut self, lo: u8, hi: u8) -> u8 {
        self.usize_in(lo as usize, hi as usize) as u8
    }

    /// Uniform `i64` in `[lo, hi]` (shrinks toward `lo`).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "i64_in: {lo} > {hi}");
        let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
        lo.wrapping_add(self.choice_below(span) as i64)
    }

    /// Uniform `f64` in `[lo, hi)` (shrinks toward `lo`).
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit_f64()
    }

    /// Uniform `f64` in `[0, 1)` (shrinks toward 0).
    pub fn unit_f64(&mut self) -> f64 {
        self.choice_below(1 << 53) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (shrinks toward `false`).
    pub fn bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Uniformly chosen element of a non-empty slice (shrinks toward the
    /// first element).
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose: empty slice");
        &items[self.usize_in(0, items.len() - 1)]
    }

    /// A vector with uniform length in `[len_lo, len_hi]`, each element from
    /// `element` (shrinks toward fewer, simpler elements).
    pub fn vec<T>(
        &mut self,
        len_lo: usize,
        len_hi: usize,
        mut element: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(len_lo, len_hi);
        (0..len).map(|_| element(self)).collect()
    }

    /// An ASCII-alphanumeric string with length in `[len_lo, len_hi]`.
    pub fn ascii_string(&mut self, len_lo: usize, len_hi: usize) -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
        let len = self.usize_in(len_lo, len_hi);
        (0..len).map(|_| *self.choose(ALPHABET) as char).collect()
    }
}

/// Harness configuration: case count, base seed, shrink budget.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed; per-case RNGs derive from it, so runs are reproducible.
    pub seed: u64,
    /// Maximum number of candidate executions during shrinking.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256, seed: 0x4A52_5649_5f50_4301, max_shrink_steps: 4096 }
    }
}

fn execute<F: Fn(&mut Gen) -> TestResult>(f: &F, mut gen: Gen) -> (TestResult, Vec<u64>) {
    // unwind-ok: the harness reports the panicking property as a shrinkable failing case
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut gen)));
    let result = match outcome {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "property panicked".to_string());
            Err(format!("panic: {msg}"))
        }
    };
    (result, gen.record)
}

impl Config {
    /// Config with `cases` random cases and default seed/budget. Mirror of
    /// proptest's `ProptestConfig::with_cases`.
    #[must_use]
    pub fn with_cases(cases: u32) -> Config {
        Config { cases, ..Config::default() }
    }

    /// Replace the base seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }

    /// Run `property` on `self.cases` random inputs; on failure, shrink the
    /// counterexample and panic with a reproducible report.
    ///
    /// # Panics
    /// Panics (failing the enclosing `#[test]`) if the property returns
    /// `Err` or panics for any generated input.
    pub fn run<F: Fn(&mut Gen) -> TestResult>(&self, property: F) {
        for case in 0..self.cases {
            // Derive a well-separated per-case seed.
            let mut mixer = SplitMix64::new(self.seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let rng = Xoshiro256PlusPlus::seed_from_u64(mixer.next_u64());
            let (result, tape) = execute(&property, Gen::random(rng));
            if let Err(message) = result {
                let (min_tape, min_message, steps) = self.shrink(&property, tape, message);
                let replay = min_tape.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",");
                panic!(
                    "propcheck: property falsified at case {case}/{} (base seed {:#x})\n\
                     minimal counterexample after {steps} shrink steps \
                     (choice tape [{replay}])\n{min_message}",
                    self.cases, self.seed,
                );
            }
        }
    }

    /// Greedy tape shrinking: span deletion, then per-choice reduction.
    fn shrink<F: Fn(&mut Gen) -> TestResult>(
        &self,
        property: &F,
        mut tape: Vec<u64>,
        mut message: String,
    ) -> (Vec<u64>, String, u32) {
        let mut steps = 0u32;
        // A candidate is adopted only if it still fails AND its replayed
        // record is strictly smaller than the current tape (shorter, or
        // lexicographically less at equal length). Without the ordering
        // check, replays that regenerate the same tape would be re-adopted
        // forever.
        let try_candidate =
            |candidate: Vec<u64>, current: &[u64], steps: &mut u32| -> Option<(Vec<u64>, String)> {
                if *steps >= self.max_shrink_steps {
                    return None;
                }
                *steps += 1;
                let (result, record) = execute(property, Gen::replay(candidate));
                let smaller = record.len() < current.len()
                    || (record.len() == current.len() && record.as_slice() < current);
                match result {
                    Err(msg) if smaller => Some((record, msg)),
                    _ => None,
                }
            };

        let mut improved = true;
        while improved && steps < self.max_shrink_steps {
            improved = false;

            // Pass 1: delete spans, longest first.
            for width in [16usize, 8, 4, 2, 1] {
                let mut start = 0;
                while start < tape.len() {
                    if width > tape.len() - start {
                        break;
                    }
                    let mut candidate = tape.clone();
                    candidate.drain(start..start + width);
                    if let Some((t, m)) = try_candidate(candidate, &tape, &mut steps) {
                        tape = t;
                        message = m;
                        improved = true;
                        // Re-test the same position after a successful cut.
                    } else {
                        start += 1;
                    }
                }
            }

            // Pass 2: shrink individual choices. Zero first, then binary
            // search the smallest still-failing value — tape entries are
            // canonical (already range-reduced), so for monotone predicates
            // this lands exactly on the boundary value.
            for i in 0..tape.len() {
                if i >= tape.len() {
                    // An adopted candidate may have shortened the tape.
                    break;
                }
                if tape[i] == 0 {
                    continue;
                }
                let mut zeroed = tape.clone();
                zeroed[i] = 0;
                if let Some((t, m)) = try_candidate(zeroed, &tape, &mut steps) {
                    tape = t;
                    message = m;
                    improved = true;
                    continue;
                }
                let mut floor = 0u64; // exclusive lower bound known to pass (0 passed)
                while i < tape.len() && tape[i] > floor + 1 {
                    let mid = floor + (tape[i] - floor) / 2;
                    let mut candidate = tape.clone();
                    candidate[i] = mid;
                    if let Some((t, m)) = try_candidate(candidate, &tape, &mut steps) {
                        tape = t;
                        message = m;
                        improved = true;
                    } else {
                        floor = mid;
                    }
                }
            }
        }
        (tape, message, steps)
    }
}

/// Run a property with the default [`Config`] (256 cases).
pub fn check<F: Fn(&mut Gen) -> TestResult>(property: F) {
    Config::default().run(property);
}

/// Property-scope assertion: returns `Err` from the enclosing property
/// closure instead of panicking, so the harness can shrink the input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Equality assertion for properties; shows both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {}\n  left: {:?}\n right: {:?} ({}:{})",
                format!($($fmt)+), l, r, file!(), line!()
            ));
        }
    }};
}

/// Inequality assertion for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?} ({}:{})",
                stringify!($left), stringify!($right), l, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {}\n  both: {:?} ({}:{})",
                format!($($fmt)+), l, file!(), line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut hits = 0u32;
        let counter = std::cell::Cell::new(0u32);
        Config::with_cases(50).run(|g| {
            counter.set(counter.get() + 1);
            let v = g.usize_in(3, 10);
            prop_assert!((3..=10).contains(&v));
            Ok(())
        });
        hits += counter.get();
        assert_eq!(hits, 50);
    }

    #[test]
    fn failing_property_panics_with_report() {
        let outcome = std::panic::catch_unwind(|| {
            Config::with_cases(100).run(|g| {
                let v = g.usize_in(0, 1000);
                prop_assert!(v < 500, "value {v} too big");
                Ok(())
            });
        });
        let msg = *outcome.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("propcheck: property falsified"), "{msg}");
        assert!(msg.contains("too big"), "{msg}");
    }

    #[test]
    fn shrinking_finds_the_boundary() {
        // The minimal failing value for `v >= 500` is exactly 500; the
        // shrinker should get there from whatever case first failed.
        let outcome = std::panic::catch_unwind(|| {
            Config::with_cases(100).run(|g| {
                let v = g.usize_in(0, 1000);
                prop_assert!(v < 500, "counterexample={v}");
                Ok(())
            });
        });
        let msg = *outcome.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("counterexample=500"), "should shrink to 500: {msg}");
    }

    #[test]
    fn shrinking_reduces_vectors() {
        // Any vector containing an element > 100 fails; minimal is [101].
        let outcome = std::panic::catch_unwind(|| {
            Config::with_cases(200).run(|g| {
                let xs = g.vec(0, 20, |g| g.usize_in(0, 1000));
                prop_assert!(xs.iter().all(|&x| x <= 100), "bad={xs:?}");
                Ok(())
            });
        });
        let msg = *outcome.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("bad=[101]"), "should shrink to [101]: {msg}");
    }

    #[test]
    fn panics_inside_properties_are_caught_and_shrunk() {
        let outcome = std::panic::catch_unwind(|| {
            Config::with_cases(50).run(|g| {
                let v = g.usize_in(0, 100);
                assert!(v < 10, "native assert fires");
                Ok(())
            });
        });
        let msg = *outcome.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("panic:"), "{msg}");
    }

    #[test]
    fn runs_are_deterministic() {
        let capture = |seed: u64| {
            let mut drawn = Vec::new();
            let out: &mut Vec<u64> = &mut drawn;
            let cell = std::cell::RefCell::new(out);
            Config::with_cases(10).seed(seed).run(|g| {
                cell.borrow_mut().push(g.u64());
                Ok(())
            });
            drawn
        };
        assert_eq!(capture(7), capture(7));
        assert_ne!(capture(7), capture(8));
    }

    #[test]
    fn generator_helpers_respect_bounds() {
        Config::with_cases(200).run(|g| {
            prop_assert!(g.i64_in(-5, 5).abs() <= 5);
            let f = g.f64_in(1.0, 2.0);
            prop_assert!((1.0..2.0).contains(&f));
            let items = [10, 20, 30];
            prop_assert!(items.contains(g.choose(&items)));
            let s = g.ascii_string(2, 4);
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
            let _: bool = g.bool(0.5);
            Ok(())
        });
    }
}
