//! Deterministic pseudo-random number generation with a `rand`-compatible
//! call surface.
//!
//! The workspace is hermetic: no crates.io dependencies. This module replaces
//! the `rand`/`rand_chacha` pair with in-tree generators:
//!
//! * [`ChaCha8Rng`] — a real ChaCha stream cipher reduced to 8 rounds, the
//!   same construction `rand_chacha::ChaCha8Rng` uses. Every seeded call
//!   site in the workspace keeps its `ChaCha8Rng::seed_from_u64(seed)`
//!   idiom unchanged (the byte streams differ from the `rand_chacha` crate's
//!   only in the seed-expansion constant, not in the cipher).
//! * [`Xoshiro256PlusPlus`] — a fast non-cryptographic generator for bulk
//!   simulation draws, seeded through [`SplitMix64`] as its authors
//!   recommend.
//! * [`SplitMix64`] — the 64-bit seed expander; also usable directly as a
//!   tiny RNG for hashing-style mixing.
//!
//! The trait surface mirrors the `rand` 0.8 names used by the workspace:
//! [`RngCore`] (`next_u32`/`next_u64`/`fill_bytes`), [`Rng`]
//! (`gen_range`/`gen_bool`/`gen`), [`SeedableRng`]
//! (`from_seed`/`seed_from_u64`), and [`SliceRandom`] (`shuffle`/`choose`).

/// Low-level uniform bit source. Mirror of `rand::RngCore`.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction. Mirror of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed material (a fixed-size byte array per generator).
    type Seed: Default + AsMut<[u8]>;

    /// Build from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a single `u64`, expanding it with SplitMix64 — the same
    /// scheme `rand`'s default `seed_from_u64` uses.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64::new(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

// ---------------------------------------------------------------------------
// SplitMix64
// ---------------------------------------------------------------------------

/// Sebastiano Vigna's SplitMix64: a one-word generator with full 2^64 period,
/// used to expand small seeds into the larger states of the other generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from the raw 64-bit state.
    #[must_use]
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SplitMix64::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        SplitMix64::new(state)
    }
}

// ---------------------------------------------------------------------------
// xoshiro256++
// ---------------------------------------------------------------------------

/// Blackman & Vigna's xoshiro256++ 1.0 — the workspace's general-purpose
/// fast generator (period 2^256 − 1, passes BigCrush).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // The all-zero state is the one fixed point; SplitMix64-expanded
        // seeds never produce it, but raw byte seeds could.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        Xoshiro256PlusPlus { s }
    }
}

// ---------------------------------------------------------------------------
// ChaCha8
// ---------------------------------------------------------------------------

/// ChaCha with 8 rounds — the construction behind `rand_chacha::ChaCha8Rng`.
///
/// A 256-bit key (the seed) and a 64-bit block counter drive a keystream
/// consumed 32 bits at a time. Deterministic, splittable by seed, and far
/// higher quality than anything the workspace's simulations need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unconsumed word in `buffer`; 16 means "refill".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14–15 are the nonce; the RNG use fixes it to zero.
        let initial = state;
        for _ in 0..4 {
            // One double round = column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = state[i].wrapping_add(initial[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *word = u32::from_le_bytes(bytes);
        }
        ChaCha8Rng { key, counter: 0, buffer: [0; 16], index: 16 }
    }
}

// The generator state serializes exactly (key, block counter, keystream
// buffer, read index), so a deserialized generator resumes the stream at the
// very next word — the property training checkpoints rely on.
impl crate::json::ToJson for ChaCha8Rng {
    fn to_json_value(&self) -> crate::json::Json {
        crate::json::Json::Obj(vec![
            ("key".to_string(), crate::json::ToJson::to_json_value(&self.key.to_vec())),
            ("counter".to_string(), crate::json::ToJson::to_json_value(&self.counter)),
            ("buffer".to_string(), crate::json::ToJson::to_json_value(&self.buffer.to_vec())),
            ("index".to_string(), crate::json::ToJson::to_json_value(&self.index)),
        ])
    }
}

impl crate::json::FromJson for ChaCha8Rng {
    fn from_json_value(v: &crate::json::Json) -> Result<Self, crate::json::JsonError> {
        crate::json::check_object(v, "ChaCha8Rng", &["key", "counter", "buffer", "index"])?;
        let key_vec: Vec<u32> = crate::json::field(v, "key")?;
        let buffer_vec: Vec<u32> = crate::json::field(v, "buffer")?;
        let counter: u64 = crate::json::field(v, "counter")?;
        let index: usize = crate::json::field(v, "index")?;
        let key: [u32; 8] = key_vec.try_into().map_err(|_| {
            crate::json::JsonError::msg("ChaCha8Rng key must hold exactly 8 words")
        })?;
        let buffer: [u32; 16] = buffer_vec.try_into().map_err(|_| {
            crate::json::JsonError::msg("ChaCha8Rng buffer must hold exactly 16 words")
        })?;
        if index > 16 {
            return Err(crate::json::JsonError::msg(
                "ChaCha8Rng index must be at most 16",
            ));
        }
        Ok(ChaCha8Rng { key, counter, buffer, index })
    }
}

// ---------------------------------------------------------------------------
// High-level sampling
// ---------------------------------------------------------------------------

/// Uniform integer in `[0, span)` without modulo bias (Lemire's method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A range usable with [`Rng::gen_range`]. Implemented for `Range` and
/// `RangeInclusive` over the primitive integers and floats.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draw a uniform value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = uniform_below(rng, span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                let offset = uniform_below(rng, span as u64);
                (lo as i128 + offset as i128) as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty => $unit:ident),+) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * $unit(rng)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * $unit(rng)
            }
        }
    )+};
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

float_sample_range!(f64 => unit_f64, f32 => unit_f32);

/// Types drawable uniformly from their natural domain via [`Rng::gen`]
/// (`[0, 1)` for floats, the full domain for integers and `bool`).
pub trait Sample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_sample {
    ($($t:ty),+) => {$(
        impl Sample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level draws layered over any [`RngCore`]. Mirror of `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }

    /// Draw from the type's natural domain (see [`Sample`]).
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers. Mirror of `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// `amount` distinct indices drawn uniformly from `0..length`, in random
/// order (partial Fisher–Yates). Replacement for `rand::seq::index::sample`.
///
/// # Panics
/// Panics if `amount > length`.
pub fn sample_indices<R: RngCore + ?Sized>(
    rng: &mut R,
    length: usize,
    amount: usize,
) -> Vec<usize> {
    assert!(amount <= length, "sample_indices: amount {amount} > length {length}");
    let mut pool: Vec<usize> = (0..length).collect();
    for i in 0..amount {
        let j = i + uniform_below(rng, (length - i) as u64) as usize;
        pool.swap(i, j);
    }
    pool.truncate(amount);
    pool
}

/// One draw from `N(mean, std_dev²)` via the Box–Muller transform.
/// Used for Gaussian weight initialization in `jarvis-neural`.
pub fn sample_gaussian<R: RngCore + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1 = 1.0 - unit_f64(rng);
    let u2 = unit_f64(rng);
    let radius = (-2.0 * u1.ln()).sqrt();
    mean + std_dev * radius * (2.0 * core::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c implementation.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
    }

    #[test]
    fn chacha_ietf_test_vector() {
        // ChaCha8 keystream for the all-zero key, zero nonce, block 0: the
        // published vector starts 3e00ef2f 895f40d6 7f5bb8e8 1f09a5a1
        // (little-endian byte stream), i.e. words 0x2fef003e, 0xd6405f89, …
        let rng = ChaCha8Rng::from_seed([0u8; 32]);
        let mut r = rng.clone();
        let words: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_eq!(words[0], 0x2fef_003e);
        assert_eq!(words[1], 0xd640_5f89);
        assert_eq!(words[2], 0xe8b8_5b7f);
        assert_eq!(words[3], 0xa1a5_091f);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut a = ChaCha8Rng::seed_from_u64(seed);
            let mut b = ChaCha8Rng::seed_from_u64(seed);
            let mut x = Xoshiro256PlusPlus::seed_from_u64(seed);
            let mut y = Xoshiro256PlusPlus::seed_from_u64(seed);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
                assert_eq!(x.next_u64(), y.next_u64());
            }
        }
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits} hits for p=0.25");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.1));
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_in_slice() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let idx = sample_indices(&mut rng, 100, 30);
        assert_eq!(idx.len(), 30);
        let mut dedup = idx.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 30, "indices must be distinct");
        assert!(idx.iter().all(|&i| i < 100));
        assert_eq!(sample_indices(&mut rng, 4, 4).len(), 4);
        assert!(sample_indices(&mut rng, 10, 0).is_empty());
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| sample_gaussian(&mut rng, 2.0, 3.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chacha_json_round_trip_resumes_mid_stream() {
        use crate::json::{FromJson, ToJson};
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        // Consume an odd number of words so the restored generator must
        // resume partway through a keystream block.
        for _ in 0..21 {
            rng.next_u32();
        }
        let json = rng.to_json();
        let mut restored = ChaCha8Rng::from_json(&json).unwrap();
        assert_eq!(restored, rng);
        for _ in 0..40 {
            assert_eq!(restored.next_u64(), rng.next_u64());
        }
    }

    #[test]
    fn chacha_json_rejects_malformed_state() {
        use crate::json::FromJson;
        assert!(ChaCha8Rng::from_json("{}").is_err());
        assert!(ChaCha8Rng::from_json(
            r#"{"key":[1,2,3],"counter":0,"buffer":[0],"index":0}"#
        )
        .is_err());
        let mut good = {
            use crate::json::ToJson;
            ChaCha8Rng::seed_from_u64(1).to_json()
        };
        good = good.replace("\"index\":16", "\"index\":17");
        assert!(ChaCha8Rng::from_json(&good).is_err(), "index 17 out of range");
    }
}
