//! Bounded multi-producer single-consumer channels.
//!
//! A minimal replacement for `crossbeam-channel`'s bounded queues, built on
//! `std::sync::{Mutex, Condvar}`. The serving runtime uses these between its
//! event router and worker shards: a hard capacity bound gives explicit
//! backpressure — a full queue either blocks the producer ([`Sender::send`])
//! or reports the overflow immediately ([`Sender::try_send`]) so the caller
//! can shed load *visibly* instead of buffering without limit.
//!
//! Semantics:
//!
//! - [`Sender`] is cloneable; [`Receiver`] is not (single consumer).
//! - When every sender is dropped, the receiver drains the remaining
//!   messages and then [`Receiver::recv`] returns `None`.
//! - When the receiver is dropped, sends fail with
//!   [`TrySendError::Disconnected`] and the value is handed back.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Why a [`Sender::try_send`] did not enqueue the value.
///
/// Both variants hand the rejected value back to the caller so nothing is
/// silently dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity; the value was not enqueued.
    Full(T),
    /// The receiver is gone; no send can ever succeed again.
    Disconnected(T),
}

/// Error returned by a blocking [`Sender::send`] when the receiver is gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(
    /// The value that could not be delivered.
    pub T,
);

struct Shared<T> {
    inner: Mutex<State<T>>,
    /// Signalled when the queue gains an item (wakes the receiver).
    filled: Condvar,
    /// Signalled when the queue loses an item or closes (wakes blocked senders).
    drained: Condvar,
}

struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
}

/// The producing half of a bounded channel. Clone freely.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half of a bounded channel. Exactly one exists per channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded channel with room for `capacity` queued messages.
///
/// # Panics
///
/// Panics when `capacity` is zero: a zero-capacity rendezvous channel is not
/// supported (every `try_send` would fail and `send` would deadlock against
/// this implementation's buffer-based protocol).
#[must_use]
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "bounded channel capacity must be at least 1");
    let shared = Arc::new(Shared {
        inner: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            senders: 1,
            receiver_alive: true,
        }),
        filled: Condvar::new(),
        drained: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Enqueue `value`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] carrying the value back when the receiver has
    /// been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.inner.lock().expect("channel lock poisoned");
        loop {
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            if state.queue.len() < state.capacity {
                state.queue.push_back(value);
                drop(state);
                self.shared.filled.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .drained
                .wait(state)
                .expect("channel lock poisoned");
        }
    }

    /// Enqueue `value` without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`TrySendError::Full`] when the queue is at capacity and
    /// [`TrySendError::Disconnected`] when the receiver has been dropped;
    /// both hand the value back.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.inner.lock().expect("channel lock poisoned");
        if !state.receiver_alive {
            return Err(TrySendError::Disconnected(value));
        }
        if state.queue.len() >= state.capacity {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.filled.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.inner.lock().expect("channel lock poisoned");
        state.senders += 1;
        drop(state);
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.inner.lock().expect("channel lock poisoned");
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake a receiver blocked in recv() so it can observe the close.
            self.shared.filled.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue the next message, blocking while the queue is empty.
    ///
    /// Returns `None` once every sender has been dropped *and* the queue is
    /// drained — no message is ever lost to a close.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.inner.lock().expect("channel lock poisoned");
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.drained.notify_one();
                return Some(value);
            }
            if state.senders == 0 {
                return None;
            }
            state = self
                .shared
                .filled
                .wait(state)
                .expect("channel lock poisoned");
        }
    }

    /// Dequeue the next message without blocking; `None` when the queue is
    /// currently empty (regardless of whether senders remain).
    pub fn try_recv(&self) -> Option<T> {
        let mut state = self.shared.inner.lock().expect("channel lock poisoned");
        let value = state.queue.pop_front();
        drop(state);
        if value.is_some() {
            self.shared.drained.notify_one();
        }
        value
    }

    /// A blocking iterator over incoming messages; ends when the channel
    /// closes (every sender dropped and the queue drained).
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.inner.lock().expect("channel lock poisoned");
        state.receiver_alive = false;
        drop(state);
        // Wake senders blocked in send() so they can observe the close.
        self.shared.drained.notify_all();
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

/// Owning blocking iterator returned by [`Receiver::into_iter`].
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.try_send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_send_reports_full_and_returns_value() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Some(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
    }

    #[test]
    fn close_drains_remaining_messages() {
        let (tx, rx) = bounded(8);
        tx.try_send("a").unwrap();
        tx.try_send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some("a"));
        assert_eq!(rx.recv(), Some("b"));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
        assert_eq!(tx.try_send(8), Err(TrySendError::Disconnected(8)));
    }

    #[test]
    fn blocking_send_wakes_when_space_frees() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let producer = thread::spawn(move || {
            // Blocks until the consumer below drains the first message.
            tx.send(1).unwrap();
        });
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        producer.join().unwrap();
    }

    #[test]
    fn many_producers_one_consumer_loses_nothing() {
        let (tx, rx) = bounded(3);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got: Vec<i32> = rx.into_iter().collect();
        for p in producers {
            p.join().unwrap();
        }
        got.sort_unstable();
        let want: Vec<i32> = (0..4).flat_map(|p| (0..100).map(move |i| p * 100 + i)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn try_recv_never_blocks() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(rx.try_recv(), None);
        tx.try_send(9).unwrap();
        assert_eq!(rx.try_recv(), Some(9));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = bounded::<u8>(0);
    }
}
