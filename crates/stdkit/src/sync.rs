//! Bounded channels and lock-free run queues.
//!
//! Two primitives, both bounded, both replacements for `crossbeam`:
//!
//! 1. **[`bounded`] MPSC channel** — `Mutex`+`Condvar` based, blocking
//!    sends, used where producers should *sleep* under backpressure. A hard
//!    capacity bound gives explicit backpressure — a full queue either
//!    blocks the producer ([`Sender::send`]) or reports the overflow
//!    immediately ([`Sender::try_send`]) so the caller can shed load
//!    *visibly* instead of buffering without limit.
//! 2. **[`StealQueue`] lock-free ring** — an atomic sequence-numbered
//!    bounded ring (Vyukov-style) with non-blocking `try_push`/`pop`. It is
//!    safe under any producer/consumer mix; the serving runtime uses one as
//!    an SPSC ingest ring per shard (router → worker) and one as an SPMC
//!    run queue per shard that idle workers *steal* closed inference
//!    batches from. No mutex, no condvar: a push or pop is a couple of
//!    atomic operations, so neither side ever syscall-parks the other.
//!
//! Channel semantics:
//!
//! - [`Sender`] is cloneable; [`Receiver`] is not (single consumer).
//! - When every sender is dropped, the receiver drains the remaining
//!   messages and then [`Receiver::recv`] returns `None`.
//! - When the receiver is dropped, sends fail with
//!   [`TrySendError::Disconnected`] and the value is handed back.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Why a [`Sender::try_send`] did not enqueue the value.
///
/// Both variants hand the rejected value back to the caller so nothing is
/// silently dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity; the value was not enqueued.
    Full(T),
    /// The receiver is gone; no send can ever succeed again.
    Disconnected(T),
}

/// Error returned by a blocking [`Sender::send`] when the receiver is gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(
    /// The value that could not be delivered.
    pub T,
);

struct Shared<T> {
    inner: Mutex<State<T>>,
    /// Signalled when the queue gains an item (wakes the receiver).
    filled: Condvar,
    /// Signalled when the queue loses an item or closes (wakes blocked senders).
    drained: Condvar,
}

struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
}

/// The producing half of a bounded channel. Clone freely.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half of a bounded channel. Exactly one exists per channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded channel with room for `capacity` queued messages.
///
/// # Panics
///
/// Panics when `capacity` is zero: a zero-capacity rendezvous channel is not
/// supported (every `try_send` would fail and `send` would deadlock against
/// this implementation's buffer-based protocol).
#[must_use]
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "bounded channel capacity must be at least 1");
    let shared = Arc::new(Shared {
        inner: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            senders: 1,
            receiver_alive: true,
        }),
        filled: Condvar::new(),
        drained: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Enqueue `value`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] carrying the value back when the receiver has
    /// been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.inner.lock().expect("channel lock poisoned");
        loop {
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            if state.queue.len() < state.capacity {
                state.queue.push_back(value);
                drop(state);
                // lock-ok: the condvar shares the channel's Arc with the
                // mutex, so the notified state outlives every waiter; recv
                // re-checks the queue under the lock, and notifying after
                // the unlock spares the woken receiver an immediate block.
                self.shared.filled.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .drained
                .wait(state)
                .expect("channel lock poisoned");
        }
    }

    /// Enqueue `value` without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`TrySendError::Full`] when the queue is at capacity and
    /// [`TrySendError::Disconnected`] when the receiver has been dropped;
    /// both hand the value back.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.inner.lock().expect("channel lock poisoned");
        if !state.receiver_alive {
            return Err(TrySendError::Disconnected(value));
        }
        if state.queue.len() >= state.capacity {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        drop(state);
        // lock-ok: Arc-shared condvar + predicate re-check in recv (see
        // send); notify-after-unlock avoids a pessimistic wakeup.
        self.shared.filled.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.inner.lock().expect("channel lock poisoned");
        state.senders += 1;
        drop(state);
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.inner.lock().expect("channel lock poisoned");
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake a receiver blocked in recv() so it can observe the close.
            // lock-ok: the receiver holds its own Arc clone of the shared
            // state, so the condvar outlives this sender; recv re-checks
            // `senders == 0` under the lock before returning None.
            self.shared.filled.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue the next message, blocking while the queue is empty.
    ///
    /// Returns `None` once every sender has been dropped *and* the queue is
    /// drained — no message is ever lost to a close.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.inner.lock().expect("channel lock poisoned");
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                // lock-ok: Arc-shared condvar + capacity re-check in send;
                // notify-after-unlock spares the woken sender a block.
                self.shared.drained.notify_one();
                return Some(value);
            }
            if state.senders == 0 {
                return None;
            }
            state = self
                .shared
                .filled
                .wait(state)
                .expect("channel lock poisoned");
        }
    }

    /// Dequeue the next message without blocking; `None` when the queue is
    /// currently empty (regardless of whether senders remain).
    pub fn try_recv(&self) -> Option<T> {
        let mut state = self.shared.inner.lock().expect("channel lock poisoned");
        let value = state.queue.pop_front();
        drop(state);
        if value.is_some() {
            // lock-ok: Arc-shared condvar + capacity re-check in send (see
            // recv); the queue slot freed above stays freed.
            self.shared.drained.notify_one();
        }
        value
    }

    /// A blocking iterator over incoming messages; ends when the channel
    /// closes (every sender dropped and the queue drained).
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.inner.lock().expect("channel lock poisoned");
        state.receiver_alive = false;
        drop(state);
        // Wake senders blocked in send() so they can observe the close.
        // lock-ok: senders hold their own Arc clones, so the condvar
        // outlives this receiver; send re-checks `receiver_alive` under
        // the lock before retrying.
        self.shared.drained.notify_all();
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

/// Owning blocking iterator returned by [`Receiver::into_iter`].
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv()
    }
}

// ---------------------------------------------------------------------------
// StealQueue: lock-free bounded ring with work stealing
// ---------------------------------------------------------------------------

/// Why a [`StealQueue::try_push`] did not enqueue the value.
///
/// The rejected value is handed back so nothing is silently dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is at capacity; the value was not enqueued.
    Full(T),
}

/// One ring slot: an atomic sequence number gating an inline value cell.
///
/// The sequence protocol (Vyukov's bounded queue): slot `i` starts at
/// `seq = i`. A producer claiming ticket `t` waits for `seq == t`, writes
/// the value, then publishes `seq = t + 1`. A consumer claiming ticket `h`
/// waits for `seq == h + 1`, reads the value, then recycles the slot with
/// `seq = h + capacity` — the ticket the producer of the *next* lap waits
/// for. The `Release` stores pair with the `Acquire` loads, so a value read
/// always happens-after the write that produced it.
struct StealSlot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A lock-free bounded FIFO ring with non-blocking push/pop and a close
/// flag — the run-queue primitive of the work-stealing serving core.
///
/// Any number of producers and consumers may operate concurrently (the
/// implementation is a Vyukov sequence-numbered ring, sound under any
/// mix); the intended uses are the two degenerate cases:
///
/// - **SPSC ingest ring**: one router pushes, one worker pops. Backpressure
///   is explicit — [`StealQueue::try_push`] hands a [`PushError::Full`]
///   back instead of blocking, and the producer decides whether to spin,
///   shed, or fail.
/// - **SPMC steal queue**: the owning worker pushes closed work batches,
///   and *any* worker (owner or thief) pops them. FIFO order makes the
///   oldest batch the first stolen, which is what tail latency wants.
///
/// [`StealQueue::close`] is the producer's end-of-stream signal:
/// consumers poll [`StealQueue::is_drained`] (closed *and* empty) for
/// termination. Dropping the ring drops any undelivered values.
pub struct StealQueue<T> {
    slots: Box<[StealSlot<T>]>,
    capacity: usize,
    /// Next ticket a consumer will claim.
    head: AtomicUsize,
    /// Next ticket a producer will claim.
    tail: AtomicUsize,
    closed: AtomicBool,
}

// SAFETY: the sequence protocol hands each value from exactly one producer
// to exactly one consumer with Release/Acquire ordering, so sharing the
// ring only requires the values themselves to be sendable.
unsafe impl<T: Send> Send for StealQueue<T> {}
// SAFETY: same argument as Send above — the seq handoff protocol is the
// synchronization, so `&StealQueue` is shareable whenever T itself is Send.
unsafe impl<T: Send> Sync for StealQueue<T> {}

impl<T> StealQueue<T> {
    /// Create a ring with room for exactly `capacity` values.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is below 2. The sequence protocol needs at
    /// least two slots: with a single slot, "free for ticket `t`" and
    /// "published for ticket `t-1`" are the same sequence number (`t`), so
    /// a producer would overwrite an unconsumed value.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "steal queue capacity must be at least 2");
        let slots = (0..capacity)
            .map(|i| StealSlot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        StealQueue {
            slots,
            capacity,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Enqueue `value` without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] handing the value back when the ring is
    /// at capacity — the caller chooses whether to retry, shed, or run the
    /// work inline.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        // ordering: Relaxed — the ticket value is only a CAS hint; the
        // happens-before edge producers rely on is seq's Release/Acquire.
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail % self.capacity];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == tail {
                // Slot free for this lap: claim the ticket, then publish.
                // ordering: Relaxed/Relaxed — the CAS only claims the
                // ticket atomically; publication happens-before is carried
                // by the seq Release store below, never by the ticket.
                match self.tail.compare_exchange_weak(
                    tail,
                    tail + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made this thread the unique owner
                        // of ticket `tail`; no other producer can claim it
                        // and no consumer reads before seq becomes tail+1.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(tail + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(now) => tail = now,
                }
            } else if seq < tail {
                // The consumer of one lap ago has not recycled the slot:
                // the ring is full right now.
                return Err(PushError::Full(value));
            } else {
                // Another producer advanced past us; reload the ticket.
                // ordering: Relaxed — CAS hint only (see the load above).
                tail = self.tail.load(Ordering::Relaxed);
            }
            std::hint::spin_loop();
        }
    }

    /// Dequeue the oldest value without blocking; `None` when the ring is
    /// currently empty.
    pub fn pop(&self) -> Option<T> {
        // ordering: Relaxed — ticket hint only; the value read is ordered
        // by seq's Acquire load seeing the producer's Release store.
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head % self.capacity];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == head + 1 {
                // Value published for this ticket: claim it, read, recycle.
                // ordering: Relaxed/Relaxed — claims the consumer ticket
                // only; the data edge is seq Acquire (above) and the slot
                // recycle edge is seq's Release store below.
                match self.head.compare_exchange_weak(
                    head,
                    head + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made this thread the unique
                        // consumer of ticket `head`, and the Acquire load
                        // of seq saw the producer's Release, so the value
                        // is fully written and owned by us alone.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(head + self.capacity, Ordering::Release);
                        return Some(value);
                    }
                    Err(now) => head = now,
                }
            } else if seq <= head {
                // No value published for this ticket yet: empty (a push may
                // be mid-flight; non-blocking semantics report empty now).
                return None;
            } else {
                // Another consumer advanced past us; reload the ticket.
                // ordering: Relaxed — CAS hint only (see the load above).
                head = self.head.load(Ordering::Relaxed);
            }
            std::hint::spin_loop();
        }
    }

    /// Producer-side end-of-stream signal. Pushing after `close` is not
    /// forbidden (the flag is advisory), but well-behaved producers close
    /// exactly once, after their final push.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Has [`StealQueue::close`] been called?
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Number of values currently queued (a racy snapshot under concurrent
    /// use; exact when quiescent).
    #[must_use]
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Is the ring currently empty? (Racy under concurrent use.)
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closed *and* empty: no value is claimable now, and — because closing
    /// happens after the producer's final push — none will ever appear.
    /// This is the consumer-side termination test.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        // Order matters: observe the close flag first, then emptiness. The
        // Release store in `close` happens after the final push, so seeing
        // closed==true and then empty==true proves the stream is over.
        self.is_closed() && self.is_empty()
    }

    /// The fixed capacity the ring was created with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl<T> Drop for StealQueue<T> {
    fn drop(&mut self) {
        // Drain through the normal protocol so every undelivered value is
        // dropped exactly once (the ring owns values between push and pop).
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for StealQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StealQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.try_send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_send_reports_full_and_returns_value() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Some(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
    }

    #[test]
    fn close_drains_remaining_messages() {
        let (tx, rx) = bounded(8);
        tx.try_send("a").unwrap();
        tx.try_send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some("a"));
        assert_eq!(rx.recv(), Some("b"));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
        assert_eq!(tx.try_send(8), Err(TrySendError::Disconnected(8)));
    }

    #[test]
    fn blocking_send_wakes_when_space_frees() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let producer = thread::spawn(move || {
            // Blocks until the consumer below drains the first message.
            tx.send(1).unwrap();
        });
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        producer.join().unwrap();
    }

    #[test]
    fn many_producers_one_consumer_loses_nothing() {
        let (tx, rx) = bounded(3);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got: Vec<i32> = rx.into_iter().collect();
        for p in producers {
            p.join().unwrap();
        }
        got.sort_unstable();
        let want: Vec<i32> = (0..4).flat_map(|p| (0..100).map(move |i| p * 100 + i)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn try_recv_never_blocks() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(rx.try_recv(), None);
        tx.try_send(9).unwrap();
        assert_eq!(rx.try_recv(), Some(9));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = bounded::<u8>(0);
    }

    // -----------------------------------------------------------------------
    // StealQueue: single-thread semantics
    // -----------------------------------------------------------------------

    #[test]
    fn steal_queue_is_fifo_across_laps() {
        let q = StealQueue::new(3);
        // Three full laps around a capacity-3 ring.
        for lap in 0..3u32 {
            for i in 0..3 {
                q.try_push(lap * 10 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(q.pop(), Some(lap * 10 + i));
            }
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn steal_queue_full_and_empty_boundaries() {
        let q = StealQueue::new(2);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None, "empty ring pops nothing");
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_push(3), Err(PushError::Full(3)), "full ring hands the value back");
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap(); // freed slot is reusable immediately
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn steal_queue_close_then_drain() {
        let q = StealQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert!(q.is_closed());
        assert!(!q.is_drained(), "closed but not yet empty");
        assert_eq!(q.pop(), Some("a"));
        assert!(q.is_drained(), "closed and empty");
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 2")]
    fn steal_queue_zero_capacity_is_rejected() {
        let _ = StealQueue::<u8>::new(0);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 2")]
    fn steal_queue_single_slot_capacity_is_rejected() {
        // One slot cannot disambiguate free-for-`t` from published-for-`t-1`
        // in the sequence protocol; constructing such a ring must fail fast
        // rather than silently overwrite values.
        let _ = StealQueue::<u8>::new(1);
    }

    /// A value whose drop is observable: the leak check for undelivered
    /// items when a ring is dropped with work still queued.
    #[derive(Debug)]
    struct DropToken(Arc<std::sync::atomic::AtomicUsize>);
    impl Drop for DropToken {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn steal_queue_drop_with_pending_items_leaks_nothing() {
        let drops = Arc::new(AtomicUsize::new(0));
        let q = StealQueue::new(8);
        for _ in 0..6 {
            q.try_push(DropToken(Arc::clone(&drops))).unwrap();
        }
        // Deliver two (dropped by the consumer), leave four in the ring.
        drop(q.pop());
        drop(q.pop());
        assert_eq!(drops.load(Ordering::SeqCst), 2);
        drop(q);
        assert_eq!(drops.load(Ordering::SeqCst), 6, "ring drop must release every pending value");
    }

    #[test]
    fn steal_queue_rejected_push_does_not_double_drop() {
        let drops = Arc::new(AtomicUsize::new(0));
        let q = StealQueue::new(2);
        q.try_push(DropToken(Arc::clone(&drops))).unwrap();
        q.try_push(DropToken(Arc::clone(&drops))).unwrap();
        let Err(PushError::Full(rejected)) = q.try_push(DropToken(Arc::clone(&drops))) else {
            panic!("push into a full ring must report Full");
        };
        drop(rejected);
        assert_eq!(drops.load(Ordering::SeqCst), 1, "only the handed-back value dropped");
        drop(q);
        assert_eq!(drops.load(Ordering::SeqCst), 3);
    }

    // -----------------------------------------------------------------------
    // StealQueue: multi-thread stress (the TSan/Miri targets wired into
    // scripts/sanitizers.sh)
    // -----------------------------------------------------------------------

    /// Seeded yield pattern: each thread derives its own SplitMix64 stream
    /// and yields pseudo-randomly, so every run exercises a different — but
    /// reproducible per seed — interleaving.
    fn jitter(rng: &mut crate::rng::SplitMix64) {
        use crate::rng::Rng;
        if rng.gen_bool(0.25) {
            thread::yield_now();
        }
    }

    #[test]
    fn steal_queue_spsc_router_worker_loses_nothing() {
        use crate::rng::SplitMix64;
        // Sized for the 3 execution tiers: native (fast), TSan (slower),
        // Miri (interpreter, ~100x) — the interleavings that matter show up
        // within a few hundred handoffs.
        const N: u64 = if cfg!(miri) { 64 } else { 500 };
        let q = Arc::new(StealQueue::new(16));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut rng = SplitMix64::new(0xA11CE);
                for mut i in 0..N {
                    loop {
                        match q.try_push(i) {
                            Ok(()) => break,
                            Err(PushError::Full(back)) => {
                                i = back;
                                thread::yield_now();
                            }
                        }
                    }
                    jitter(&mut rng);
                }
                q.close();
            })
        };
        let mut got = Vec::new();
        let mut rng = SplitMix64::new(0xB0B);
        loop {
            match q.pop() {
                Some(v) => got.push(v),
                None if q.is_drained() => break,
                None => thread::yield_now(),
            }
            jitter(&mut rng);
        }
        producer.join().unwrap();
        let want: Vec<u64> = (0..N).collect();
        assert_eq!(got, want, "SPSC delivery must be lossless and FIFO");
    }

    #[test]
    fn steal_queue_one_owner_many_thieves_partition_the_work() {
        use crate::rng::SplitMix64;
        const N: u64 = if cfg!(miri) { 96 } else { 600 };
        const THIEVES: usize = 3;
        let q = Arc::new(StealQueue::new(8));
        let owner = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut rng = SplitMix64::new(7);
                for mut i in 0..N {
                    loop {
                        match q.try_push(i) {
                            Ok(()) => break,
                            Err(PushError::Full(back)) => {
                                i = back;
                                thread::yield_now();
                            }
                        }
                    }
                    jitter(&mut rng);
                }
                q.close();
            })
        };
        let thieves: Vec<_> = (0..THIEVES)
            .map(|t| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut rng = SplitMix64::new(100 + t as u64);
                    let mut mine = Vec::new();
                    loop {
                        match q.pop() {
                            Some(v) => mine.push(v),
                            None if q.is_drained() => break,
                            None => thread::yield_now(),
                        }
                        jitter(&mut rng);
                    }
                    mine
                })
            })
            .collect();
        owner.join().unwrap();
        let mut all: Vec<u64> = Vec::new();
        for t in thieves {
            all.extend(t.join().unwrap());
        }
        all.sort_unstable();
        let want: Vec<u64> = (0..N).collect();
        assert_eq!(all, want, "thieves must exactly partition the stream: no loss, no dupes");
    }

    #[test]
    fn steal_queue_mpmc_full_mix_is_lossless() {
        use crate::rng::SplitMix64;
        const PER_PRODUCER: u64 = if cfg!(miri) { 48 } else { 250 };
        const PRODUCERS: u64 = 2;
        const CONSUMERS: usize = 2;
        let q = Arc::new(StealQueue::new(4));
        let live = Arc::new(AtomicUsize::new(PRODUCERS as usize));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                let live = Arc::clone(&live);
                thread::spawn(move || {
                    let mut rng = SplitMix64::new(p);
                    for i in 0..PER_PRODUCER {
                        let mut v = p * PER_PRODUCER + i;
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => {
                                    v = back;
                                    thread::yield_now();
                                }
                            }
                        }
                        jitter(&mut rng);
                    }
                    // Last producer out closes the stream.
                    if live.fetch_sub(1, Ordering::AcqRel) == 1 {
                        q.close();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|c| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut rng = SplitMix64::new(50 + c as u64);
                    let mut mine = Vec::new();
                    loop {
                        match q.pop() {
                            Some(v) => mine.push(v),
                            None if q.is_drained() => break,
                            None => thread::yield_now(),
                        }
                        jitter(&mut rng);
                    }
                    mine
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let want: Vec<u64> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, want);
    }

    #[test]
    fn steal_queue_concurrent_drop_tokens_survive_stress() {
        // Push/steal churn with drop-observable payloads: after the dust
        // settles every token must have dropped exactly once, wherever it
        // ended up (consumed, or still queued when the ring dropped). The
        // producer pushes CAPACITY more tokens than the thief consumes, so
        // the ring is guaranteed to drop while full.
        const CAPACITY: usize = 4;
        const CONSUMED: usize = if cfg!(miri) { 32 } else { 200 };
        const PUSHED: usize = CONSUMED + CAPACITY;
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let q = Arc::new(StealQueue::new(CAPACITY));
            let producer = {
                let q = Arc::clone(&q);
                let drops = Arc::clone(&drops);
                thread::spawn(move || {
                    for _ in 0..PUSHED {
                        let mut v = DropToken(Arc::clone(&drops));
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => {
                                    v = back;
                                    thread::yield_now();
                                }
                            }
                        }
                    }
                    q.close();
                })
            };
            let thief = {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    // Consume an exact count, then stop — the rest must be
                    // released by the ring's own drop.
                    let mut taken = 0usize;
                    while taken < CONSUMED {
                        match q.pop() {
                            Some(v) => {
                                drop(v);
                                taken += 1;
                            }
                            None => thread::yield_now(),
                        }
                    }
                })
            };
            producer.join().unwrap();
            thief.join().unwrap();
            assert_eq!(q.len(), CAPACITY, "ring must still hold the tail of the stream");
        } // last Arc owners gone: ring drops with pending tokens
        assert_eq!(drops.load(Ordering::SeqCst), PUSHED, "every token drops exactly once");
    }
}
