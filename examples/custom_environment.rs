//! Context independence: Jarvis on a *non-home* IoT environment.
//!
//! The framework claims to be "applicable to any IoT environment with
//! minimum human effort" (Section I). This example builds a small greenhouse
//! from scratch — vent, irrigation pump, grow light, moisture sensor —
//! records a few days of manual operation through the episode recorder,
//! learns the safe-transition table with Algorithm 1, and shows the
//! constraint blocking an action the operator never performed.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example custom_environment
//! ```

use jarvis_repro::model::{
    Actor, AuthzPolicy, DeviceKind, DeviceSpec, EnvAction, EpisodeConfig, EpisodeRecorder, Fsm,
    UserId,
};
use jarvis_repro::policy::{learn_safe_transitions, MatchMode, SplConfig};

fn greenhouse() -> Fsm {
    let vent = DeviceSpec::builder("vent")
        .kind(DeviceKind::Actuator)
        .states(["closed", "open"])
        .actions(["close", "open"])
        .transition("closed", "open", "open")
        .transition("open", "close", "closed")
        .disutility(0.3)
        .build()
        .expect("valid device");
    let pump = DeviceSpec::builder("pump")
        .kind(DeviceKind::Appliance)
        .states(["idle", "running"])
        .actions(["stop", "start"])
        .transition("idle", "start", "running")
        .transition("running", "stop", "idle")
        .disutility(0.2)
        .build()
        .expect("valid device");
    let grow_light = DeviceSpec::builder("grow_light")
        .kind(DeviceKind::Actuator)
        .states(["off", "on"])
        .actions(["power_off", "power_on"])
        .transition("off", "power_on", "on")
        .transition("on", "power_off", "off")
        .disutility(0.4)
        .build()
        .expect("valid device");
    let moisture = DeviceSpec::builder("moisture_sensor")
        .kind(DeviceKind::Sensor)
        .states(["dry", "moist", "wet"])
        .actions(["read_dry", "read_moist", "read_wet"])
        .transition("dry", "read_moist", "moist")
        .transition("moist", "read_wet", "wet")
        .transition("wet", "read_moist", "moist")
        .transition("moist", "read_dry", "dry")
        .build()
        .expect("valid device");
    Fsm::new(vec![vent, pump, grow_light, moisture]).expect("valid fsm")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fsm = greenhouse();
    let authz = AuthzPolicy::new();
    // Ten-hour episodes at 10-minute intervals: the operator's shift.
    let config = EpisodeConfig::new(10 * 3600, 600)?;
    let operator = Actor::manual(UserId(0));

    // Record three days of manual operation: when the soil reads dry, the
    // operator starts the pump and opens the vent; mid-shift the grow light
    // runs; everything is shut down before leaving.
    let mut episodes = Vec::new();
    for day in 0..3u32 {
        let mut rec = EpisodeRecorder::new(&fsm, &authz, config, fsm.initial_state())?;
        let pump_at = 6 + (day % 2); // slight day-to-day variation
        for t in 0..config.steps() {
            match t {
                2 => {
                    rec.submit(operator, fsm_action(&fsm, "grow_light", "power_on"))?;
                }
                5 => {
                    rec.submit(operator, fsm_action(&fsm, "moisture_sensor", "read_dry"))?;
                }
                _ if t == pump_at => {
                    rec.submit(operator, fsm_action(&fsm, "pump", "start"))?;
                    rec.submit(operator, fsm_action(&fsm, "vent", "open"))?;
                }
                _ if t == pump_at + 3 => {
                    rec.submit(operator, fsm_action(&fsm, "moisture_sensor", "read_moist"))?;
                    rec.submit(operator, fsm_action(&fsm, "pump", "stop"))?;
                }
                _ if t == config.steps() - 2 => {
                    rec.submit(operator, fsm_action(&fsm, "vent", "close"))?;
                    rec.submit(operator, fsm_action(&fsm, "grow_light", "power_off"))?;
                }
                _ => {}
            }
            rec.advance()?;
        }
        episodes.push(rec.finish());
    }
    println!("recorded {} operator episodes of {} instances", episodes.len(), config.steps());

    // Algorithm 1 on a brand-new environment: zero smart-home assumptions.
    let outcome = learn_safe_transitions(&fsm, &episodes, None, &SplConfig::default());
    println!("learned {} safe (state, action) pairs", outcome.table.len());

    // The constraint generalizes what the operator did...
    let watering_state = episodes[0].transitions()[6].state.clone();
    let start_pump = EnvAction::single(fsm_action(&fsm, "pump", "start"));
    println!(
        "pump.start in the watering context: safe = {}",
        outcome.table.is_safe_action(&watering_state, &start_pump, MatchMode::Generalized)
    );

    // ...and blocks what they never did: running the pump with the vent
    // closed at end of shift.
    let mut closed_up = fsm.initial_state();
    closed_up.set_device(
        fsm.device_by_name("moisture_sensor").expect("exists"),
        fsm.device(fsm.device_by_name("moisture_sensor").unwrap())?
            .state_idx("wet")
            .expect("exists"),
    );
    println!(
        "pump.start on wet soil with everything closed: safe = {}",
        outcome.table.is_safe_action(&closed_up, &start_pump, MatchMode::Generalized)
    );
    assert!(!outcome
        .table
        .is_safe_action(&closed_up, &start_pump, MatchMode::Generalized));
    Ok(())
}

fn fsm_action(fsm: &Fsm, device: &str, action: &str) -> jarvis_repro::model::MiniAction {
    let id = fsm.device_by_name(device).expect("device exists");
    let a = fsm
        .device(id)
        .expect("valid id")
        .action_idx(action)
        .expect("action exists");
    jarvis_repro::model::MiniAction { device: id, action: a }
}
