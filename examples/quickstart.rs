//! Quickstart: the full Jarvis pipeline on the eleven-device evaluation
//! home, end to end.
//!
//! 1. A one-week learning phase observes the home's natural behavior.
//! 2. The ANN filter is trained on labelled benign anomalies.
//! 3. Algorithm 1 learns the safe-transition table `P_safe`.
//! 4. Algorithm 2 trains a constrained DQN and plans the next day.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use jarvis_repro::core::{Jarvis, JarvisConfig, JarvisError, OptimizerConfig, RewardWeights};
use jarvis_repro::sim::HomeDataset;
use jarvis_repro::smart_home::SmartHome;

fn main() -> Result<(), JarvisError> {
    let home = SmartHome::evaluation_home();
    println!(
        "home: {} devices, |SS| = {}, {} mini-actions",
        home.fsm().num_devices(),
        home.fsm().state_space_size().unwrap_or(0),
        home.fsm().num_mini_actions()
    );

    let config = JarvisConfig {
        weights: RewardWeights::emphasizing("energy", 0.6),
        optimizer: OptimizerConfig { episodes: 12, ..OptimizerConfig::default() },
        ..JarvisConfig::default()
    };
    let mut jarvis = Jarvis::new(home, config);

    // 1. Learning phase: L = 1 week of natural behavior (Section V-A-2).
    let data = HomeDataset::home_a(42);
    let episodes = jarvis.learning_phase(&data, 0..7)?;
    println!("learning phase: {episodes} daily episodes recorded and parsed");

    // 2. Benign-anomaly filter (single-hidden-layer ANN, Section V-A-3).
    if let Some(loss) = jarvis.train_filter(42)? {
        println!("anomaly filter trained, final loss {loss:.4}");
    }

    // 3. Algorithm 1: the safe-transition table.
    jarvis.learn_policies()?;
    let outcome = jarvis.outcome().expect("just learned");
    println!(
        "P_safe learned: {} safe (state, action) pairs over {} states ({} anomalies filtered)",
        outcome.table.len(),
        outcome.table.num_states(),
        outcome.filtered_out
    );

    // 4. Algorithm 2: plan tomorrow under the constraint.
    let plan = jarvis.optimize_day(&data, 8)?;
    println!("\n--- day 8 plan (energy-focused, f = 0.6) ---");
    println!(
        "normal user behavior: {:>6.2} kWh  ${:>5.2}  mean |ΔT| {:.2} °C",
        plan.normal.energy_kwh,
        plan.normal.cost_usd,
        plan.normal.mean_temp_dev_c()
    );
    println!(
        "Jarvis optimized:     {:>6.2} kWh  ${:>5.2}  mean |ΔT| {:.2} °C",
        plan.optimized.energy_kwh,
        plan.optimized.cost_usd,
        plan.optimized.mean_temp_dev_c()
    );
    println!(
        "safety violations: {} (constrained exploration cannot leave the safe space)",
        plan.optimized.violations
    );
    Ok(())
}
