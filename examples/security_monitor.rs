//! Using the Security Policy Learner as an intrusion detector.
//!
//! Learns safe behavior for a week, then:
//! * replays a benign day — no alarms;
//! * injects crafted violations from the Section VI-B corpus — every one is
//!   flagged, with the time instance and scenario;
//! * injects a benign anomaly (fridge door left open) — the ANN filter
//!   excuses it instead of alarming.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example security_monitor
//! ```

use jarvis_repro::attacks::{build_corpus, inject_anomaly, inject_violation};
use jarvis_repro::core::{Jarvis, JarvisConfig, JarvisError};
use jarvis_repro::model::TimeStep;
use jarvis_repro::policy::{flag_violations, MatchMode};
use jarvis_repro::sim::{AnomalyGenerator, HomeDataset};
use jarvis_repro::smart_home::SmartHome;

fn main() -> Result<(), JarvisError> {
    let home = SmartHome::evaluation_home();
    let data = HomeDataset::home_a(7);
    let mut jarvis = Jarvis::new(home, JarvisConfig::default());
    jarvis.learning_phase(&data, 0..7)?;
    jarvis.train_filter(7)?;
    jarvis.learn_policies()?;
    let table = jarvis.outcome().expect("learned").table.clone();
    println!("learned {} safe transitions from one week of behavior\n", table.len());

    // A benign day raises (almost) no alarms: the only possible flags come
    // from routine transitions the ANN filter misclassified as anomalies
    // during learning (the ~1 % false-positive rate of Figure 5).
    let filtered_out = jarvis.outcome().expect("learned").filtered_out;
    let benign = &jarvis.episodes()[2];
    let alarms = flag_violations(&table, benign, MatchMode::Exact);
    println!(
        "benign day replay: {} alarms ({} of {} learning transitions were filter false positives)",
        alarms.len(),
        filtered_out,
        jarvis.episodes().len() * 1440,
    );
    assert!(alarms.len() <= filtered_out, "alarms must stem from filter FPs only");

    // Crafted attacks are flagged at the exact engineered instant.
    let corpus = build_corpus(jarvis.home());
    println!("\ninjecting 5 sample violations from the 214-instance corpus:");
    for violation in corpus.iter().step_by(47).take(5) {
        let injected =
            inject_violation(jarvis.home(), benign, violation, TimeStep(9 * 60 + 30))?;
        let flags = flag_violations(&table, &injected.episode, MatchMode::Exact);
        let caught = flags.contains(&injected.injected_step);
        println!(
            "  [{}] {:<62} -> {}",
            violation.vtype,
            violation.description,
            if caught { "FLAGGED" } else { "missed!" }
        );
        assert!(caught);
    }

    // A benign anomaly is scored by the ANN and excused.
    let filter = jarvis.filter().expect("filter trained");
    let anomaly = AnomalyGenerator::new(99).generate(1, 1).remove(0);
    let injected = inject_anomaly(jarvis.home(), benign, &anomaly, 0)?;
    let tr = &injected.episode.transitions()[injected.injected_step.0 as usize];
    let score = filter.score(&tr.state, &tr.action, tr.step).unwrap_or(0.0);
    println!(
        "\nbenign anomaly {:?} at minute {}: anomaly score {:.3} (threshold {:.2}) -> {}",
        anomaly.class,
        anomaly.start_minute,
        score,
        filter.threshold(),
        if score >= filter.threshold() { "excused as benign" } else { "would alarm" }
    );

    // Live monitoring: the deployed enforcement path. Actions stream in one
    // at a time; the monitor tracks state, blocks violations, and lets
    // manual fire-egress rules open behavior learning could never observe.
    let mut config = JarvisConfig::default();
    config.manual = Some(jarvis_repro::smart_home::emergency_rules(jarvis.home()));
    let mut jarvis2 = Jarvis::new(SmartHome::evaluation_home(), config);
    jarvis2.learning_phase(&data, 0..7)?;
    jarvis2.learn_policies()?;
    let mut monitor = jarvis2.monitor()?;
    println!("\nlive monitor:");
    let unlock = jarvis2.home().mini_action("lock", "unlock");
    println!("  07:00 unlock (departure)          -> {:?}", monitor.observe(unlock)?);
    let sensor_off = jarvis2.home().mini_action("temp_sensor", "power_off");
    println!("  07:01 temp sensor power_off       -> {:?}", monitor.observe(sensor_off)?);
    monitor.observe_exogenous(jarvis2.home().mini_action("temp_sensor", "alarm_fire"))?;
    println!("  07:02 fire alarm raised (exogenous)");
    println!("  07:02 unlock (fire egress)        -> {:?}", monitor.observe(unlock)?);
    println!("  alarms recorded: {}", monitor.alarms().len());
    Ok(())
}
