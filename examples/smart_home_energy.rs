//! Energy management with Jarvis: the Figure 6/7 workload as a program.
//!
//! Optimizes three winter days of the Home B dataset under two different
//! user "ethics" (Section VI-E): a highly energy-conscious configuration
//! and a comfort-first configuration, and prints the per-day trade-offs.
//! Afterwards, asks Jarvis for a live suggestion in a specific state — the
//! "user takes some actions manually" flow of Section VI-D.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example smart_home_energy
//! ```

use jarvis_repro::core::suggest::suggest;
use jarvis_repro::core::{
    DayScenario, HomeRlEnv, Jarvis, JarvisConfig, JarvisError, Optimizer, OptimizerConfig,
    RewardWeights, SmartReward,
};
use jarvis_repro::model::{EnvAction, TimeStep};
use jarvis_repro::policy::MatchMode;
use jarvis_repro::sim::HomeDataset;
use jarvis_repro::smart_home::SmartHome;

fn run_ethic(name: &str, weights: RewardWeights) -> Result<(), JarvisError> {
    let home = SmartHome::evaluation_home();
    let learn_data = HomeDataset::home_a(42);
    let eval_data = HomeDataset::home_b(43);
    let config = JarvisConfig {
        weights,
        optimizer: OptimizerConfig { episodes: 12, ..OptimizerConfig::default() },
        ..JarvisConfig::default()
    };
    let mut jarvis = Jarvis::new(home, config);
    jarvis.learning_phase(&learn_data, 0..7)?;
    jarvis.learn_policies()?;

    println!("\n=== ethic: {name} ===");
    println!("{:>6}  {:>22}  {:>22}", "day", "normal kWh / $ / ΔT", "optimized kWh / $ / ΔT");
    for day in 10..13 {
        let plan = jarvis.optimize_day(&eval_data, day)?;
        println!(
            "{:>6}  {:>7.2} {:>6.2} {:>6.2}  {:>7.2} {:>6.2} {:>6.2}",
            day,
            plan.normal.energy_kwh,
            plan.normal.cost_usd,
            plan.normal.mean_temp_dev_c(),
            plan.optimized.energy_kwh,
            plan.optimized.cost_usd,
            plan.optimized.mean_temp_dev_c(),
        );
    }
    Ok(())
}

fn main() -> Result<(), JarvisError> {
    // Two hypothetical ethics from Section VI-E.
    run_ethic("highly energy-conscious (f = 0.9/0.05/0.05)", RewardWeights {
        energy: 0.9,
        cost: 0.05,
        comfort: 0.05,
    })?;
    run_ethic("comfort-first (f = 0.2/0.2/0.6)", RewardWeights {
        energy: 0.2,
        cost: 0.2,
        comfort: 0.6,
    })?;

    // Live suggestion: the user has manually driven the home into a state;
    // Jarvis proposes the best safe next action.
    let home = SmartHome::evaluation_home();
    let learn_data = HomeDataset::home_a(42);
    let mut jarvis = Jarvis::new(home, JarvisConfig {
        weights: RewardWeights::emphasizing("energy", 0.7),
        optimizer: OptimizerConfig { episodes: 12, ..OptimizerConfig::default() },
        ..JarvisConfig::default()
    });
    jarvis.learning_phase(&learn_data, 0..7)?;
    jarvis.learn_policies()?;
    let (table, behavior) = {
        let outcome = jarvis.outcome().expect("learned");
        (outcome.table.clone(), outcome.behavior.clone())
    };
    let scenario = DayScenario::from_dataset(jarvis.home(), &learn_data, 8);
    let reward = SmartReward::evaluation(
        jarvis.config().weights,
        scenario.peak_price(),
        behavior,
        scenario.config(),
        jarvis.home().fsm().num_devices(),
    );
    let mut env = HomeRlEnv::new(jarvis.home(), &scenario, &reward)
        .constrained(&table, MatchMode::Generalized);
    let mut optimizer = Optimizer::new(&env, jarvis.config().optimizer.clone())?;
    optimizer.train(&mut env)?;

    // The user just left the house at 08:05 with the lights still on.
    let mut state = jarvis.home().midnight_state();
    state.set_device(
        jarvis.home().device_id("lock"),
        jarvis.home().state_idx("lock", "locked_outside"),
    );
    state.set_device(
        jarvis.home().device_id("light"),
        jarvis.home().state_idx("light", "on"),
    );
    env.force_state(state, TimeStep(8 * 60 + 5));
    let s = suggest(optimizer.agent(), &env)?;
    let rendered = match s.action {
        None => "do nothing".to_owned(),
        Some(m) => jarvis
            .home()
            .fsm()
            .describe_action(&EnvAction::single(m))
            .join(","),
    };
    println!(
        "\nlive suggestion at 08:05 (user away, lights left on): {rendered} \
         (Q = {:.2}, {} unsafe higher-Q actions skipped)",
        s.q_value, s.rank
    );
    Ok(())
}
