//! Future work, implemented: Jarvis on a vehicular environment.
//!
//! The paper closes with "we plan to extend the framework to other IoT
//! environments like vehicular networks". This example builds a connected
//! electric vehicle as an IoT environment — doors, ignition, climate,
//! charger, and a battery sensor — records a commuting routine, learns the
//! safe-transition table with Algorithm 1, and then runs a *constrained*
//! tabular Q-learner (through the generic `jarvis-rl` substrate) to shift
//! charging into cheap night hours without ever unlocking a moving car.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example vehicle_fleet
//! ```

use jarvis_repro::model::{
    Actor, AuthzPolicy, DeviceKind, DeviceSpec, EnvAction, EnvState, EpisodeConfig,
    EpisodeRecorder, Fsm, MiniAction, UserId,
};
use jarvis_repro::policy::{learn_safe_transitions, MatchMode, SplConfig};
use jarvis_repro::rl::{DiscreteEnvironment, Environment, QTable, Step};
use jarvis_repro::sim::DamPrices;
use jarvis_stdkit::rng::SeedableRng;

fn vehicle() -> Fsm {
    let doors = DeviceSpec::builder("doors")
        .kind(DeviceKind::Actuator)
        .states(["locked", "unlocked"])
        .actions(["lock", "unlock"])
        .transition("locked", "unlock", "unlocked")
        .transition("unlocked", "lock", "locked")
        .disutility(0.9)
        .build()
        .expect("valid device");
    let ignition = DeviceSpec::builder("ignition")
        .kind(DeviceKind::Actuator)
        .states(["off", "driving"])
        .actions(["stop", "start"])
        .transition("off", "start", "driving")
        .transition("driving", "stop", "off")
        .disutility(0.8)
        .build()
        .expect("valid device");
    let climate = DeviceSpec::builder("climate")
        .kind(DeviceKind::Hvac)
        .states(["off", "on"])
        .actions(["power_off", "power_on"])
        .transition("off", "power_on", "on")
        .transition("on", "power_off", "off")
        .disutility(0.2)
        .build()
        .expect("valid device");
    let charger = DeviceSpec::builder("charger")
        .kind(DeviceKind::Appliance)
        .states(["idle", "charging"])
        .actions(["stop", "start"])
        .transition("idle", "start", "charging")
        .transition("charging", "stop", "idle")
        .disutility(0.05)
        .build()
        .expect("valid device");
    let battery = DeviceSpec::builder("battery")
        .kind(DeviceKind::Sensor)
        .states(["low", "ok", "full"])
        .actions(["read_low", "read_ok", "read_full"])
        .transition("low", "read_ok", "ok")
        .transition("ok", "read_full", "full")
        .transition("ok", "read_low", "low")
        .transition("full", "read_ok", "ok")
        .build()
        .expect("valid device");
    Fsm::new(vec![doors, ignition, climate, charger, battery]).expect("valid fsm")
}

fn mini(fsm: &Fsm, device: &str, action: &str) -> MiniAction {
    let id = fsm.device_by_name(device).expect("device exists");
    let a = fsm.device(id).expect("valid").action_idx(action).expect("action exists");
    MiniAction { device: id, action: a }
}

/// A charging-night environment: 8 hourly steps (22:00–06:00); the agent may
/// start/stop the charger; price follows the DAM curve; reward = negative
/// cost plus a bonus for ending with a charged battery.
struct ChargingNight<'a> {
    fsm: &'a Fsm,
    prices: &'a DamPrices,
    state: EnvState,
    hour: u32,
    cost: f64,
    allowed: Vec<MiniAction>,
}

impl<'a> ChargingNight<'a> {
    fn battery_state(&self) -> u8 {
        let id = self.fsm.device_by_name("battery").expect("exists");
        self.state.device(id).expect("valid").0
    }
}

impl<'a> Environment for ChargingNight<'a> {
    fn state_dim(&self) -> usize {
        3
    }
    fn num_actions(&self) -> usize {
        self.allowed.len() + 1
    }
    fn observe(&self) -> Vec<f64> {
        vec![
            f64::from(self.hour) / 8.0,
            f64::from(self.battery_state()) / 2.0,
            self.prices.price_per_kwh(0, (22 + self.hour) % 24) / 0.12,
        ]
    }
    fn valid_actions(&self) -> Vec<usize> {
        (0..self.num_actions()).collect()
    }
    fn reset(&mut self) -> Vec<f64> {
        self.state = self.fsm.initial_state();
        self.hour = 0;
        self.cost = 0.0;
        self.observe()
    }
    fn step(&mut self, action: usize) -> Step {
        if action > 0 {
            let m = self.allowed[action - 1];
            self.state = self
                .fsm
                .step(&self.state, &EnvAction::single(m))
                .expect("catalogue action");
        }
        // Physics: one hour of charging draws 7 kWh and raises the battery.
        let charger = self.fsm.device_by_name("charger").expect("exists");
        let charging = self.state.device(charger).expect("valid").0 == 1;
        let price = self.prices.price_per_kwh(0, (22 + self.hour) % 24);
        let mut reward = 0.0;
        if charging {
            self.cost += 7.0 * price;
            reward -= 7.0 * price;
            let battery = self.fsm.device_by_name("battery").expect("exists");
            let level = self.battery_state();
            if level < 2 && self.hour % 2 == 1 {
                self.state.set_device(battery, jarvis_repro::model::StateIdx(level + 1));
            }
        }
        self.hour += 1;
        let done = self.hour >= 8;
        if done {
            // The commute needs a charged car.
            reward += match self.battery_state() {
                2 => 2.0,
                1 => 0.5,
                _ => -2.0,
            };
        }
        Step { obs: self.observe(), reward, done }
    }
}

impl<'a> DiscreteEnvironment for ChargingNight<'a> {
    fn num_states(&self) -> usize {
        self.fsm.state_space_size().expect("small") as usize * 8
    }
    fn state_id(&self) -> usize {
        self.fsm.state_index(&self.state).expect("valid") as usize * 8
            + self.hour.min(7) as usize
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fsm = vehicle();
    let authz = AuthzPolicy::new();
    let config = EpisodeConfig::new(24 * 3600, 3600)?; // hourly instances
    let driver = Actor::manual(UserId(0));

    // 1. Record three commuting days: unlock → drive → lock; charge at night.
    let mut episodes = Vec::new();
    for day in 0..3u32 {
        let mut rec = EpisodeRecorder::new(&fsm, &authz, config, fsm.initial_state())?;
        for t in 0..config.steps() {
            match t {
                7 => {
                    rec.submit(driver, mini(&fsm, "doors", "unlock"))?;
                }
                8 => {
                    rec.submit(driver, mini(&fsm, "ignition", "start"))?;
                    rec.submit(driver, mini(&fsm, "climate", "power_on"))?;
                }
                9 => {
                    rec.submit(driver, mini(&fsm, "battery", "read_ok"))?;
                }
                17 => {
                    rec.submit(driver, mini(&fsm, "ignition", "stop"))?;
                    rec.submit(driver, mini(&fsm, "climate", "power_off"))?;
                }
                18 => {
                    rec.submit(driver, mini(&fsm, "doors", "lock"))?;
                }
                _ if t == 22 + (day % 2) => {
                    rec.submit(driver, mini(&fsm, "charger", "start"))?;
                }
                23 => {
                    rec.submit(driver, mini(&fsm, "battery", "read_full"))?;
                    rec.submit(driver, mini(&fsm, "charger", "stop"))?;
                }
                _ => {}
            }
            rec.advance()?;
        }
        episodes.push(rec.finish());
    }

    // 2. Algorithm 1: the vehicle's safe-transition table.
    let outcome = learn_safe_transitions(&fsm, &episodes, None, &SplConfig::default());
    println!("vehicle P_safe: {} safe (state, action) pairs", outcome.table.len());

    // Unlocking while driving was never observed → blocked.
    let mut driving = fsm.initial_state();
    driving.set_device(fsm.device_by_name("ignition").unwrap(), jarvis_repro::model::StateIdx(1));
    let unlock = EnvAction::single(mini(&fsm, "doors", "unlock"));
    assert!(!outcome
        .table
        .is_safe_action(&driving, &unlock, MatchMode::Generalized));
    println!("unlock while driving: blocked by the learned policy");

    // 3. Constrained tabular Q-learning over the charging night: only
    // charger actions the learning phase saw are available.
    let prices = DamPrices::new(7);
    let allowed: Vec<MiniAction> =
        vec![mini(&fsm, "charger", "start"), mini(&fsm, "charger", "stop")];
    let mut env = ChargingNight {
        fsm: &fsm,
        prices: &prices,
        state: fsm.initial_state(),
        hour: 0,
        cost: 0.0,
        allowed,
    };
    let mut q = QTable::new(env.num_actions(), 0.4, 0.95);
    let mut rng = jarvis_stdkit::rng::ChaCha8Rng::seed_from_u64(5);
    for ep in 0..400 {
        env.reset();
        let eps = if ep < 300 { 0.4 } else { 0.05 };
        loop {
            let s = env.state_id();
            let a = q.epsilon_greedy(s, &env.valid_actions(), eps, &mut rng);
            let step = env.step(a);
            q.update(s, a, step.reward, env.state_id(), &env.valid_actions(), step.done);
            if step.done {
                break;
            }
        }
    }
    env.reset();
    let mut charged_hours = Vec::new();
    loop {
        let a = q.best_action(env.state_id(), &env.valid_actions()).unwrap_or(0);
        let done = env.step(a).done;
        let charger = fsm.device_by_name("charger").unwrap();
        if env.state.device(charger).unwrap().0 == 1 {
            charged_hours.push((22 + env.hour - 1) % 24);
        }
        if done {
            break;
        }
    }
    println!(
        "optimized charging hours: {charged_hours:?}, night cost ${:.2}, battery level {}",
        env.cost,
        env.battery_state()
    );
    assert!(env.battery_state() >= 1, "the commute needs charge");
    Ok(())
}
