//! Weekly planning with a warm-started agent, plus policy persistence.
//!
//! A deployed Jarvis does not retrain from scratch every midnight: the DQN
//! persists across days (`Jarvis::optimize_days`), and the learned policies
//! survive restarts as a JSON snapshot (`save_policies`/`load_policies`).
//! This example plans Monday–Friday, shows the warm-start effect on training
//! reward, then simulates a restart from the snapshot.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example weekly_plan
//! ```

use jarvis_repro::core::{Jarvis, JarvisConfig, JarvisError, OptimizerConfig, RewardWeights};
use jarvis_repro::sim::HomeDataset;
use jarvis_repro::smart_home::SmartHome;

fn main() -> Result<(), JarvisError> {
    let home = SmartHome::evaluation_home();
    let data = HomeDataset::home_a(42);
    let config = JarvisConfig {
        weights: RewardWeights::emphasizing("energy", 0.6),
        manual: Some(jarvis_repro::smart_home::emergency_rules(&home)),
        optimizer: OptimizerConfig { episodes: 8, ..OptimizerConfig::default() },
        ..JarvisConfig::default()
    };
    let mut jarvis = Jarvis::new(home, config);
    jarvis.learning_phase(&data, 0..7)?;
    jarvis.train_filter(42)?;
    jarvis.learn_policies()?;

    // Plan the work week with one persistent agent.
    println!("planning days 7..12 (warm-started agent):");
    println!(
        "{:>5}  {:>12} {:>12}  {:>12} {:>12}  {:>16}",
        "day", "normal kWh", "opt kWh", "normal $", "opt $", "best train reward"
    );
    let plans = jarvis.optimize_days(&data, 7..12)?;
    for p in &plans {
        println!(
            "{:>5}  {:>12.2} {:>12.2}  {:>12.2} {:>12.2}  {:>16.1}",
            p.day,
            p.normal.energy_kwh,
            p.optimized.energy_kwh,
            p.normal.cost_usd,
            p.optimized.cost_usd,
            p.stats.best_reward(),
        );
        assert_eq!(p.optimized.violations, 0);
    }
    let first = plans.first().expect("non-empty").stats.best_reward();
    let last = plans.last().expect("non-empty").stats.best_reward();
    println!("\nwarm start: best training reward day 7 = {first:.1}, day 11 = {last:.1}");

    // Persist the learned policies and restart.
    let snapshot = jarvis.save_policies()?;
    println!("policy snapshot: {} bytes of JSON", snapshot.len());
    let mut restarted = Jarvis::new(
        SmartHome::evaluation_home(),
        JarvisConfig {
            weights: RewardWeights::emphasizing("energy", 0.6),
            optimizer: OptimizerConfig { episodes: 8, ..OptimizerConfig::default() },
            ..JarvisConfig::default()
        },
    );
    restarted.load_policies(&snapshot)?;
    let plan = restarted.optimize_day(&data, 13)?;
    println!(
        "restarted deployment plans day 13 without relearning: {:.2} kWh (normal {:.2}), {} violations",
        plan.optimized.energy_kwh, plan.normal.energy_kwh, plan.optimized.violations
    );
    Ok(())
}
