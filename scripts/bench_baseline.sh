#!/usr/bin/env sh
# Record the neural kernel baseline that scripts/verify.sh gates against.
#
# Runs the gemm bench (schema v2: per-SIMD-tier GEMM sweep, quantized vs
# f64 forward at serving batch sizes, worker-pool overhead) at full
# measurement budgets and writes the medians/minima to BENCH_neural.json
# at the repo root. Re-run (and commit the result) whenever the kernels in
# crates/neural/src/{gemm,simd,quant}.rs change deliberately; verify.sh
# fails if a kernel's min gets more than 2x slower than what is recorded
# here, or when a fresh-computed gate (quant >=3x at batches 16-64, pool
# parity <=1.5x at 64/128, argmax agreement >=0.95) fails.
#
# Usage: scripts/bench_baseline.sh

set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline (bench deps)"
cargo build --release --offline -p jarvis-bench

echo "==> recording GEMM baseline to BENCH_neural.json"
cargo bench --offline -p jarvis-bench --bench gemm -- --json "$PWD/BENCH_neural.json"

echo "OK: baseline written to BENCH_neural.json — commit it with the kernel change"
