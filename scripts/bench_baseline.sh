#!/usr/bin/env sh
# Record the GEMM kernel baseline that scripts/verify.sh gates against.
#
# Runs the gemm bench at full measurement budgets and writes the medians to
# BENCH_neural.json at the repo root. Re-run (and commit the result) whenever
# the kernels in crates/neural/src/gemm.rs change deliberately; verify.sh
# fails if a kernel gets more than 2x slower than what is recorded here.
#
# Usage: scripts/bench_baseline.sh

set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline (bench deps)"
cargo build --release --offline -p jarvis-bench

echo "==> recording GEMM baseline to BENCH_neural.json"
cargo bench --offline -p jarvis-bench --bench gemm -- --json "$PWD/BENCH_neural.json"

echo "OK: baseline written to BENCH_neural.json — commit it with the kernel change"
