#!/usr/bin/env sh
# Panic-site lint for the pipeline crates.
#
# The load-bearing ingest → learn → optimize path (crates/core, crates/policy,
# crates/smart-home) and the serving path (crates/runtime) must not grow new
# unwrap()/expect()/panic! sites: faults in the telemetry stream are data,
# not bugs, and belong in JarvisError (`Checkpoint`, `Fault`, `Overload`,
# ...) — see DESIGN.md §10.
#
# A site is allowed only when its line carries an `// invariant: ...`
# justification stating why it cannot fire (static catalogue, index produced
# by the same structure, documented panic in an analysis-only API). Test code
# is exempt: scanning stops at the first `#[cfg(test)]` in each file, and
# doc-comment lines (`//!`, `///`) are skipped.
#
# Usage: scripts/lint_panics.sh   (exits non-zero listing unannotated sites)

set -eu
cd "$(dirname "$0")/.."

status=0
for f in $(find crates/core/src crates/policy/src crates/smart-home/src crates/runtime/src -name '*.rs' | sort); do
    # Non-test prefix of the file: everything before the first #[cfg(test)].
    hits=$(awk '
        /#\[cfg\(test\)\]/ { exit }
        /^[[:space:]]*\/\// { next }          # comment-only lines (incl. //! and ///)
        /\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(/ {
            if ($0 !~ /\/\/ invariant:/) printf "%s:%d: %s\n", FILENAME, FNR, $0
        }
    ' "$f")
    if [ -n "$hits" ]; then
        echo "$hits"
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo ""
    echo "lint_panics: unannotated panic sites in pipeline crates."
    echo "Convert them to JarvisError/ModelError, or justify with '// invariant: ...'."
    exit 1
fi
echo "lint_panics: OK (no unannotated panic sites in crates/{core,policy,smart-home,runtime}/src)"
