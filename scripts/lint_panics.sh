#!/usr/bin/env sh
# Panic-site lint for the pipeline crates — compatibility shim.
#
# The awk scanner that used to live here is now rule R3 (`panics`) of the
# in-tree lint engine, `crates/lint` (jarvis-lint), which scans the same
# crates with a real comment/string/test-scope-aware scanner. See
# DESIGN.md §12 for the rule and the `// invariant: <why>` escape hatch.
#
# Usage: scripts/lint_panics.sh [paths...]   (exit 1 on unannotated sites)

set -eu
cd "$(dirname "$0")/.."

exec cargo run -q --offline -p jarvis-lint -- --rule panics "$@"
