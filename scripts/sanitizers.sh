#!/usr/bin/env sh
# Opt-in dynamic-analysis pass for the hand-rolled concurrency primitives
# (crates/stdkit/src/sync.rs: the bounded MPSC channel and the lock-free
# StealQueue ring under the threaded work-stealing serving runtime;
# crates/stdkit/src/pool.rs: the persistent worker pool and its scoped
# fork/join handoff). The `sync` and `pool` test filters pick up the whole
# battery: FIFO/lap ordering, full/empty boundaries, drop-with-pending leak
# checks, the seeded router/worker, owner-vs-thieves, and MPMC interleaving
# stress tests, plus pool reuse, panic containment, nested-join progress,
# and ring-overflow fallback.
#
# The supervision battery (crates/runtime/tests/supervision.rs: catch_unwind
# shard boundaries, WAL restore/replay, threaded-vs-deterministic recovery
# parity, quarantine and degraded serving) rides along under both tools —
# panic recovery plus scoped threads is exactly the code TSan and Miri are
# best at breaking. JARVIS_SIMD=scalar keeps Miri off the SIMD intrinsics.
#
# The continual-learning battery (crates/runtime/tests/online.rs) rides
# along too: background fine-tuning runs per-home replay passes through the
# scoped worker pool, and the battery's pool-size-invariance tests are the
# sharpest probe of that fork/join path under both tools. Sizes scale down
# automatically under Miri (cfg(miri) in the test).
#
# Static analysis (jarvis-lint) covers determinism and panic policy, and
# since lint v2 also audits the concurrency core itself: R8 requires every
# non-default atomic ordering (Relaxed outside the pure-counter idiom,
# any SeqCst) to carry a written `// ordering:` justification. Those
# justifications are memory-model *claims*, and this script is what tests
# them: every annotated site must live in a module driven here under TSan
# and Miri, which check_ordering_coverage enforces below. Data races are
# out of static reach, so this script drives ThreadSanitizer and Miri
# at the stdkit sync/channel tests. Both require a NIGHTLY toolchain with
# the matching components (rust-src for -Zbuild-std, miri). The script is
# NOT part of scripts/verify.sh — the pinned toolchain in the offline image
# is stable — and exits 0 with a notice when nightly is unavailable, so it
# is always safe to invoke.
#
# Usage: scripts/sanitizers.sh [tsan|miri|all]   (default: all)

set -eu
cd "$(dirname "$0")/.."

mode="${1:-all}"
target="$(rustc -vV | awk '/^host:/ { print $2 }')"

# Every R8 `// ordering:` annotation admits a non-default atomic ordering on
# the strength of a prose argument. Keep those arguments honest: the file
# holding one must be in the set this script actually exercises under
# TSan/Miri (stdkit sync + pool test filters, runtime via the supervision
# and online test targets). A new annotation in an undriven module means
# either extend the batteries here or move the atomic behind a driven API.
check_ordering_coverage() {
    uncovered=0
    for f in $(grep -rl -- '// ordering:' crates/*/src 2>/dev/null || true); do
        case "$f" in
            crates/stdkit/src/sync.rs | crates/stdkit/src/pool.rs) ;;
            crates/runtime/src/*) ;;
            # The analyzer necessarily spells its own tag in rule docs and
            # violation messages; the lint engine itself is single-threaded
            # and holds no atomics to annotate.
            crates/lint/src/*) ;;
            *)
                echo "sanitizers: $f has '// ordering:' sites but no TSan/Miri battery drives it" >&2
                uncovered=1
                ;;
        esac
    done
    if [ "$uncovered" -ne 0 ]; then
        echo "sanitizers: R8 ordering-annotation coverage check FAILED" >&2
        exit 1
    fi
    echo "sanitizers: R8 ordering-annotation sites are all in TSan/Miri-driven modules"
}

check_ordering_coverage

have_nightly() {
    rustup toolchain list 2>/dev/null | grep -q nightly
}

if ! command -v rustup >/dev/null 2>&1 || ! have_nightly; then
    echo "sanitizers: no nightly toolchain available; skipping (static lint still covers determinism)"
    exit 0
fi

have_component() {
    rustup component list --toolchain nightly 2>/dev/null \
        | grep -q "^$1.*(installed)"
}

run_tsan() {
    if ! have_component rust-src; then
        echo "sanitizers: nightly rust-src not installed (needed for -Zbuild-std); skipping TSan"
        return 0
    fi
    echo "==> ThreadSanitizer: jarvis-stdkit sync + pool tests (channel, StealQueue, WorkerPool)"
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test --offline -p jarvis-stdkit sync pool \
        -Zbuild-std --target "$target"
    echo "==> ThreadSanitizer: jarvis-runtime supervision battery (supervisor, WAL, chaos recovery)"
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test --offline -p jarvis-runtime --test supervision \
        -Zbuild-std --target "$target"
    echo "==> ThreadSanitizer: jarvis-runtime continual-learning battery (fine-tune pool, swaps)"
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test --offline -p jarvis-runtime --test online \
        -Zbuild-std --target "$target"
}

run_miri() {
    if ! have_component miri; then
        echo "sanitizers: nightly miri not installed; skipping Miri"
        return 0
    fi
    echo "==> Miri: jarvis-stdkit sync + pool tests (channel, StealQueue, WorkerPool)"
    cargo +nightly miri test --offline -p jarvis-stdkit sync pool
    echo "==> Miri: jarvis-runtime supervision battery (supervisor, WAL, chaos recovery)"
    JARVIS_SIMD=scalar \
        cargo +nightly miri test --offline -p jarvis-runtime --test supervision
    echo "==> Miri: jarvis-runtime continual-learning battery (fine-tune pool, swaps)"
    JARVIS_SIMD=scalar \
        cargo +nightly miri test --offline -p jarvis-runtime --test online
}

case "$mode" in
    tsan) run_tsan ;;
    miri) run_miri ;;
    all)  run_tsan; run_miri ;;
    *)
        echo "usage: scripts/sanitizers.sh [tsan|miri|all]" >&2
        exit 2
        ;;
esac

echo "sanitizers: OK"
