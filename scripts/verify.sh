#!/usr/bin/env sh
# Tier-1 verification, fully offline.
#
# The workspace has zero external dependencies (see tests/hermeticity.rs),
# so --offline must always succeed: if this script fails at dependency
# resolution, an external crate leaked into a manifest.
#
# Usage: scripts/verify.sh [--quick|--bench]
#   --quick   fast pre-commit gate: lint (quick walk) + build + test + the
#             serving-runtime throughput/tail-latency smoke.
#   --bench   additionally smoke-run every bench target via the in-tree
#             harness (quick budgets).

set -eu
cd "$(dirname "$0")/.."

# The lint walk is budget-gated (<0.5 s, exit 3 on overrun), so it always
# runs from the release binary: a debug walk pays ~4x on the token-tree
# pass and would trip the budget on machine noise alone.
build_lint() {
    cargo build -q --release --offline -p jarvis-lint
}

if [ "${1:-}" = "--quick" ]; then
    echo "==> jarvis-lint --quick (R1-R10 over crates/, 500ms budget)"
    build_lint
    ./target/release/jarvis-lint --quick --budget-ms 500

    echo "==> cargo build --release --offline"
    cargo build --release --offline --workspace

    echo "==> cargo test --offline"
    cargo test -q --offline --workspace

    # Kernel smoke: the neural crate's unit + integration tests (SIMD
    # conformance battery, quantization, gradcheck) in one pass.
    echo "==> neural kernel smoke (cargo test -p jarvis-neural)"
    cargo test -q --offline -p jarvis-neural

    # SIMD/quantization gates, recomputed fresh each run: quantized
    # forward >=3x over the scalar-tier f64 forward at batches 16-64,
    # pool-threaded GEMM no slower than 1.5x single-thread at 64/128,
    # argmax agreement >=0.95 — plus <=2x regression vs BENCH_neural.json.
    # The two speedup/parity gates are perf targets calibrated on the AVX2
    # baseline box; below AVX2 the bench demotes them to warnings so a
    # correct build on weaker hardware still verifies (agreement and the
    # bitwise-conformance tests above remain unconditional).
    echo "==> cargo bench --bench gemm -- --quick --check BENCH_neural.json"
    cargo bench --offline -p jarvis-bench --bench gemm -- --quick --check "$PWD/BENCH_neural.json"

    # Continual-learning smoke: online serving bitwise across shard
    # counts/modes, fold hysteresis, shadow-eval and promotion-gate
    # determinism, pool-size-invariant fine-tuning, rollback.
    echo "==> continual-learning smoke (cargo test -p jarvis-runtime --test online)"
    cargo test -q --offline -p jarvis-runtime --test online

    # Serving-runtime gates against the recorded BENCH_runtime.json:
    # >2x throughput regression of the gated batched path, shard-4 p99
    # above p99_ratio_gate times shard-1 p99, the one-panic-per-499
    # chaos run not bitwise identical to the uninterrupted oracle
    # (recovery-determinism smoke), degraded-mode throughput below
    # degraded_ratio_gate times healthy, the hot-swap stall above one
    # batch window, or the drift-adaptation gate (continual false alarms
    # above frozen, or detection below 1.0).
    echo "==> serving-runtime + recovery smoke (throughput --quick --check BENCH_runtime.json)"
    cargo run -q --release --offline -p jarvis-bench --bin throughput -- --quick --check "$PWD/BENCH_runtime.json"

    echo "OK (quick): lint clean, workspace builds, tests, kernel and latency gates pass offline"
    exit 0
fi

# Static analysis first: determinism, wall-clock, panic-policy, float, and
# hermeticity line rules plus the token-tree concurrency audit (unsafe,
# atomic orderings, lock discipline, result discards) over every workspace
# crate (crates/lint, DESIGN.md §12/§17).
echo "==> jarvis-lint (R1-R10 over the whole workspace, 500ms budget)"
build_lint
./target/release/jarvis-lint --budget-ms 500

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test --offline"
cargo test -q --offline --workspace

# GEMM kernel verification: gradient checks, bit-identity vs the naive
# reference at every thread count, and a quick bench smoke that fails if a
# blocked kernel regressed >2x against the recorded BENCH_neural.json.
echo "==> gradient checks (crates/neural/tests/gradcheck.rs)"
cargo test -q --offline -p jarvis-neural --test gradcheck

echo "==> kernel-equivalence properties (crates/neural/tests/properties.rs)"
cargo test -q --offline -p jarvis-neural --test properties

echo "==> cargo bench --bench gemm -- --quick --check BENCH_neural.json"
cargo bench --offline -p jarvis-bench --bench gemm -- --quick --check "$PWD/BENCH_neural.json"

# Self-healing battery: supervised shards, WAL crash recovery, quarantine
# and degraded serving (crates/runtime/tests/supervision.rs).
echo "==> supervision battery (cargo test -p jarvis-runtime --test supervision)"
cargo test -q --offline -p jarvis-runtime --test supervision

# Continual-learning battery: online serving determinism, fold hysteresis,
# shadow evaluation and promotion gates, fine-tuning pool invariance, and
# byte-for-byte rollback (crates/runtime/tests/online.rs).
echo "==> continual-learning battery (cargo test -p jarvis-runtime --test online)"
cargo test -q --offline -p jarvis-runtime --test online

# Serving-runtime smoke: the gated 64-home batched-inference pair, the
# threaded shard-1/shard-4 tail-latency pair, the one-panic recovery run
# (bitwise recovery-determinism gate), and degraded-mode throughput,
# checked against the recorded BENCH_runtime.json.
echo "==> serving-runtime + recovery smoke (throughput --quick --check BENCH_runtime.json)"
cargo run -q --release --offline -p jarvis-bench --bin throughput -- --quick --check "$PWD/BENCH_runtime.json"

# Fault-matrix smoke: one seed, two drop rates, through the full
# inject → ingest → learn → detect path (crates/bench robustness harness).
echo "==> fault-matrix smoke (robustness --quick)"
cargo run -q --release --offline -p jarvis-bench --bin robustness -- --quick

if [ "${1:-}" = "--bench" ]; then
    for b in fsm neural spl dqn sim miniaction; do
        echo "==> cargo bench --bench $b -- --quick"
        cargo bench --offline -p jarvis-bench --bench "$b" -- --quick
    done
fi

echo "OK: workspace builds and tests entirely offline"
