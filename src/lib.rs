//! # jarvis-repro — reproduction of *Jarvis: Moving Towards a Smarter
//! # Internet of Things* (ICDCS 2020)
//!
//! This meta-crate re-exports every crate of the workspace under one roof
//! and hosts the repo-level examples (`examples/`) and integration tests
//! (`tests/`). Use the individual crates directly in downstream code:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`model`] (`jarvis-iot-model`) | IoT environment FSM: devices, states, actions, episodes, authorization |
//! | [`neural`] (`jarvis-neural`) | feed-forward NN library: layers, backprop, Adam, ROC metrics |
//! | [`rl`] (`jarvis-rl`) | gym-style environments, replay buffer, tabular Q, DQN |
//! | [`sim`] (`jarvis-sim`) | dataset simulators: occupancy, traces, anomalies, prices, weather |
//! | [`smart_home`] (`jarvis-smart-home`) | device catalogue, JSON logging, IFTTT app engine |
//! | [`policy`] (`jarvis-policy`) | the Security Policy Learner: Algorithm 1, ANN filter, `P_safe` |
//! | [`attacks`] (`jarvis-attacks`) | the 214-violation corpus and episode engineering |
//! | [`core`] (`jarvis`) | the framework: smart reward, constrained DQN optimizer, analysis |
//! | [`runtime`] (`jarvis-runtime`) | sharded multi-home serving runtime with batched policy inference |
//!
//! See the repository README for a walkthrough and DESIGN.md for the full
//! system inventory and experiment index.
//!
//! # Example
//!
//! ```no_run
//! use jarvis_repro::core::{Jarvis, JarvisConfig};
//! use jarvis_repro::sim::HomeDataset;
//! use jarvis_repro::smart_home::SmartHome;
//!
//! let mut jarvis = Jarvis::new(SmartHome::evaluation_home(), JarvisConfig::default());
//! let data = HomeDataset::home_a(42);
//! jarvis.learning_phase(&data, 0..7)?;
//! jarvis.train_filter(42)?;
//! jarvis.learn_policies()?;
//! let plan = jarvis.optimize_day(&data, 8)?;
//! println!("{:.1} kWh (normal {:.1})", plan.optimized.energy_kwh, plan.normal.energy_kwh);
//! # Ok::<(), jarvis_repro::core::JarvisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use jarvis as core;
pub use jarvis_attacks as attacks;
pub use jarvis_iot_model as model;
pub use jarvis_neural as neural;
pub use jarvis_policy as policy;
pub use jarvis_rl as rl;
pub use jarvis_runtime as runtime;
pub use jarvis_sim as sim;
pub use jarvis_smart_home as smart_home;
