//! Determinism regression: with the in-tree PRNG, the entire pipeline is a
//! pure function of its seeds. Two independent Home A runs with the same
//! seed must produce bit-identical episode traces, learned tables, filter
//! weights, and day plans — any drift here means a generator changed its
//! stream and silently invalidated every recorded experiment.

use jarvis_repro::core::{Jarvis, JarvisConfig, OptimizerConfig, RewardWeights};
use jarvis_repro::neural::{Activation, Loss, Network, OptimizerKind, Parallelism};
use jarvis_repro::policy::FilterConfig;
use jarvis_repro::rl::{DqnAgent, DqnConfig, Experience, QTable};
use jarvis_repro::sim::HomeDataset;
use jarvis_repro::smart_home::SmartHome;
use jarvis_stdkit::json::ToJson;
use jarvis_stdkit::rng::{ChaCha8Rng, Rng, SeedableRng};

fn fast_config(seed: u64) -> JarvisConfig {
    JarvisConfig {
        weights: RewardWeights::balanced(),
        anomaly_training_samples: 200,
        filter: Some(FilterConfig { epochs: 3, seed, ..FilterConfig::default() }),
        optimizer: OptimizerConfig {
            episodes: 3,
            hidden: vec![16],
            replay_every: 32,
            seed,
            ..OptimizerConfig::default()
        },
        ..JarvisConfig::default()
    }
}

/// One full Home A pipeline run, reduced to its serialized artifacts.
fn pipeline_artifacts(seed: u64) -> (String, String, String) {
    let data = HomeDataset::home_a(seed);
    let mut jarvis = Jarvis::new(SmartHome::evaluation_home(), fast_config(seed));
    jarvis.learning_phase(&data, 0..3).unwrap();
    jarvis.train_filter(seed).unwrap();
    jarvis.learn_policies().unwrap();
    let episodes_json = jarvis.episodes().to_vec().to_json();
    let policies_json = jarvis.save_policies().unwrap();
    let plan = jarvis.optimize_day(&data, 4).unwrap();
    let plan_json = format!(
        "{} {} {:?} {:?} {}",
        plan.normal.to_json(),
        plan.optimized.to_json(),
        plan.stats.episode_rewards,
        plan.stats.episode_losses,
        plan.stats.final_epsilon,
    );
    (episodes_json, policies_json, plan_json)
}

/// Same seed → bit-identical episode traces, learned policies (including
/// the ANN filter's weights), and optimized day plans.
#[test]
fn pipeline_runs_are_bit_identical() {
    let (eps_a, pol_a, plan_a) = pipeline_artifacts(11);
    let (eps_b, pol_b, plan_b) = pipeline_artifacts(11);
    assert_eq!(eps_a, eps_b, "episode traces diverged");
    assert_eq!(pol_a, pol_b, "policy snapshots diverged");
    assert_eq!(plan_a, plan_b, "day plans diverged");
}

/// Different seeds genuinely change the artifacts (the comparison above is
/// not vacuous).
#[test]
fn different_seeds_differ() {
    let (eps_a, _, _) = pipeline_artifacts(11);
    let (eps_b, _, _) = pipeline_artifacts(12);
    assert_ne!(eps_a, eps_b, "seed must matter");
}

/// Masked batch training is bit-identical whether the GEMM kernels run on
/// one worker or four. The shapes here (batch 64 through 128-wide layers)
/// cross `PARALLEL_FLOP_THRESHOLD`, so worker threads genuinely spawn on the
/// multi-threaded side; serialized weights must still match byte for byte.
#[test]
fn masked_training_is_thread_count_invariant() {
    let run = |par: Parallelism| {
        let mut net = Network::builder(128)
            .layer(128, Activation::Relu)
            .layer(128, Activation::Tanh)
            .layer(16, Activation::Linear)
            .loss(Loss::Mse)
            .optimizer(OptimizerKind::adam(0.01))
            .seed(23)
            .parallelism(par)
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let xs: Vec<Vec<f64>> =
            (0..64).map(|_| (0..128).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
        let ys: Vec<Vec<f64>> =
            (0..64).map(|_| (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
        let ms: Vec<Vec<f64>> = (0..64)
            .map(|i| (0..16).map(|j| f64::from((i + j) % 3 != 0)).collect())
            .collect();
        let x: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
        let y: Vec<&[f64]> = ys.iter().map(Vec::as_slice).collect();
        let m: Vec<&[f64]> = ms.iter().map(Vec::as_slice).collect();
        for _ in 0..3 {
            net.train_batch_masked(&x, &y, Some(&m)).unwrap();
        }
        // Normalize the (intentionally different) config knob so the
        // comparison is about weights and optimizer state only.
        net.set_parallelism(Parallelism::Single);
        net.to_json().unwrap()
    };
    let single = run(Parallelism::Single);
    assert_eq!(single, run(Parallelism::Threads(4)), "weights diverged at 4 threads");
    assert_eq!(single, run(Parallelism::Threads(3)), "weights diverged at 3 threads");
}

/// A DQN replay step is bit-identical through the parallel kernel path: two
/// agents differing only in `parallelism` (sized so the replay batch crosses
/// the parallel threshold) see the same experiences and end with the same
/// Q values to the last bit.
#[test]
fn dqn_replay_is_thread_count_invariant() {
    let run = |par: Parallelism| {
        let mut config = DqnConfig::new(8, 4);
        config.hidden = vec![96, 96];
        config.batch_size = 48;
        config.seed = 5;
        config.parallelism = par;
        let mut agent = DqnAgent::new(config).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        for i in 0..64 {
            let state: Vec<f64> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let next: Vec<f64> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            agent.remember(Experience {
                state,
                action: i % 4,
                reward: rng.gen_range(-1.0..1.0),
                next,
                next_valid: vec![0, 1, 2, 3],
                done: i % 7 == 0,
            });
        }
        for _ in 0..4 {
            agent.replay().unwrap().expect("batch is full");
        }
        let obs: Vec<f64> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
        agent.q_values(&obs).unwrap()
    };
    let single = run(Parallelism::Single);
    let threaded = run(Parallelism::Threads(4));
    assert!(
        single.iter().zip(&threaded).all(|(a, b)| a.to_bits() == b.to_bits()),
        "DQN Q values diverged across thread counts: {single:?} vs {threaded:?}"
    );
}

/// Tabular Q-learning is bit-deterministic in (seed, update stream).
#[test]
fn qtable_training_is_deterministic() {
    let train = |seed: u64| {
        let mut q = QTable::new(4, 0.5, 0.9);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut s = 0usize;
        for _ in 0..2_000 {
            let a = q.epsilon_greedy(s, &[0, 1, 2, 3], 0.3, &mut rng);
            let r = rng.gen_range(-1.0_f64..1.0);
            let s2 = (s + a + 1) % 8;
            q.update(s, a, r, s2, &[0, 1, 2, 3], false);
            s = s2;
        }
        let cells: Vec<f64> =
            (0..8).flat_map(|s| (0..4).map(move |a| (s, a))).map(|(s, a)| q.q(s, a)).collect();
        cells
    };
    let a = train(3);
    let b = train(3);
    // Bit-identical, not approximately equal.
    assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    assert_ne!(train(3), train(4));
}

/// The optimizer's checkpoint format captures *everything* that feeds the
/// training stream: a run interrupted mid-way and restored from JSON must
/// end with a byte-identical final checkpoint (network weights, target
/// network, replay buffer, epsilon schedule, and RNG state) to the run
/// that never stopped.
#[test]
fn optimizer_checkpoint_resume_is_bit_identical() {
    use jarvis_repro::core::{DayScenario, Optimizer, SmartReward};
    use jarvis_repro::policy::TaBehavior;

    let home = SmartHome::evaluation_home();
    let data = HomeDataset::home_a(31);
    let scenario = DayScenario::from_dataset(&home, &data, 2);
    let reward = SmartReward::evaluation(
        RewardWeights::emphasizing("energy", 0.8),
        scenario.peak_price(),
        TaBehavior::new(),
        scenario.config(),
        home.fsm().num_devices(),
    );
    let mut cfg = OptimizerConfig::fast();
    cfg.episodes = 4;
    cfg.seed = 17;

    // Straight-through run.
    let mut env = jarvis_repro::core::HomeRlEnv::new(&home, &scenario, &reward);
    let mut straight = Optimizer::new(&env, cfg.clone()).unwrap();
    let full = straight.train(&mut env).unwrap();
    let straight_cp = straight.checkpoint(4, &full);

    // Interrupted run: 2 episodes, serialize, "crash", restore, finish.
    let mut env2 = jarvis_repro::core::HomeRlEnv::new(&home, &scenario, &reward);
    let mut first = Optimizer::new(&env2, cfg.clone()).unwrap();
    let chunk = first.train_episodes(&mut env2, 2).unwrap();
    let mid_cp = first.checkpoint(2, &chunk);
    drop(first);
    let mut env3 = jarvis_repro::core::HomeRlEnv::new(&home, &scenario, &reward);
    let (mut resumed, done, mut stats) = Optimizer::restore(&env3, &mid_cp).unwrap();
    assert_eq!(done, 2);
    let rest = resumed.train_episodes(&mut env3, cfg.episodes - done).unwrap();
    stats.merge(&rest);
    let resumed_cp = resumed.checkpoint(4, &stats);

    assert_eq!(straight_cp, resumed_cp, "checkpoint JSON diverged after resume");
}

/// Fault injection is a pure function of `(seed, plan)`: sweeping
/// `JARVIS_THREADS` (which steers `Parallelism::Auto` kernel fan-out) must
/// not change a single byte of the injected stream, the parsed episodes, or
/// the table learned from them. The sweep runs serially inside one test so
/// the env mutation cannot race other tests (everything else here pins
/// `Parallelism::Single`).
#[test]
fn fault_injection_is_thread_count_invariant() {
    use jarvis_repro::sim::{FaultInjector, FaultKind, FaultPlan, FaultRule};
    use jarvis_repro::smart_home::EventLog;
    use jarvis_repro::model::EpisodeConfig;
    use jarvis_repro::policy::{learn_safe_transitions, SplConfig};

    let plan = FaultPlan {
        seed: 17,
        rules: vec![
            FaultRule::all_day(FaultKind::Drop { rate: 0.04 }),
            FaultRule::all_day(FaultKind::Delay { rate: 0.03, max_minutes: 5 }),
            FaultRule::for_device(FaultKind::Offline { windows: 1, max_minutes: 90 }, "lock"),
        ],
    };
    let run = || {
        let data = HomeDataset::home_a(17);
        let injector = FaultInjector::new(plan.clone()).unwrap();
        let home = SmartHome::evaluation_home();
        let mut log = EventLog::new();
        let mut faulted_json = String::new();
        for day in 0..3 {
            let fd = injector.inject(&data, day);
            faulted_json.push_str(&fd.to_json());
            log.record_faulted_activity(&home, &fd);
        }
        let eps = log.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap().episodes;
        let outcome = learn_safe_transitions(home.fsm(), &eps, None, &SplConfig::default());
        (faulted_json, eps.to_json(), outcome.table.to_json())
    };
    let mut baseline = None;
    for threads in ["1", "2", "4"] {
        std::env::set_var("JARVIS_THREADS", threads);
        let artifacts = run();
        match &baseline {
            None => baseline = Some(artifacts),
            Some(b) => assert_eq!(b, &artifacts, "injection drifted at JARVIS_THREADS={threads}"),
        }
    }
    std::env::remove_var("JARVIS_THREADS");
}

/// The work-stealing serving runtime is a pure function of its ingested
/// stream: one fleet day served through {deterministic, threaded} modes and
/// a `JARVIS_THREADS` sweep (which steers `Parallelism::Auto` inside the
/// policy network's kernels) must end with byte-identical
/// `RuntimeSnapshot` JSON, bit-identical outcome streams, and identical
/// rejection accounting. Stolen inference batches are pure, so neither the
/// steal timing nor the kernel fan-out may leak into any serialized byte.
/// The env sweep runs serially inside one test, like the injection sweep
/// above.
#[test]
fn work_stealing_serving_is_execution_mode_invariant() {
    use jarvis_repro::policy::SafeTransitionTable;
    use jarvis_repro::runtime::{RuntimeConfig, ServingRuntime};
    use jarvis_repro::sim::FleetGenerator;

    // A learned table + a policy agent sized for the evaluation home.
    let home = SmartHome::evaluation_home();
    let mut jarvis = Jarvis::new(home.clone(), fast_config(19));
    jarvis.learning_phase(&HomeDataset::home_a(3), 0..2).unwrap();
    jarvis.learn_policies().unwrap();
    let table: SafeTransitionTable = jarvis.outcome().unwrap().table.clone();
    let state_dim = home.fsm().state_sizes().iter().sum::<usize>() + 5;
    let num_actions = home.agent_mini_actions().len() + 1;
    let mut dqn_cfg = DqnConfig::new(state_dim, num_actions);
    dqn_cfg.hidden = vec![16];
    dqn_cfg.seed = 19;
    let policy = DqnAgent::new(dqn_cfg).unwrap();

    let fleet = FleetGenerator::new(29, 6);
    let run = |deterministic: bool| {
        let mut config = RuntimeConfig::new(4);
        config.deterministic = deterministic;
        config.batch_window = 8;
        let mut rt = ServingRuntime::new(config, policy.clone()).unwrap();
        for id in 0..fleet.num_homes() {
            rt.register_home(u64::from(id), home.clone(), table.clone()).unwrap();
        }
        let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(45)).unwrap();
        let report = rt.serve(ingest.envelopes).unwrap();
        // Debug-format the outcomes: f64s print with shortest-round-trip
        // precision, so any bit difference shows.
        (rt.snapshot().to_json(), format!("{:?}", report.outcomes), report.rejected.len())
    };

    let baseline = run(true);
    for threads in ["1", "2", "4"] {
        std::env::set_var("JARVIS_THREADS", threads);
        let threaded = run(false);
        assert_eq!(
            baseline.0, threaded.0,
            "RuntimeSnapshot bytes drifted at JARVIS_THREADS={threads}"
        );
        assert_eq!(
            baseline.1, threaded.1,
            "outcome stream drifted at JARVIS_THREADS={threads}"
        );
        assert_eq!(baseline.2, 0, "deterministic mode never sheds");
        assert_eq!(threaded.2, 0, "Block backpressure never sheds");
    }
    std::env::remove_var("JARVIS_THREADS");
}

/// The int8 quantized serving path is as deterministic as the f64 one:
/// two independently constructed agents with the same seed quantize to
/// identical policies, and the quantized outcome stream is bit-identical
/// across execution modes, shard counts, and parallelism settings.
#[test]
fn quantized_serving_is_seed_and_execution_invariant() {
    use jarvis_repro::policy::SafeTransitionTable;
    use jarvis_repro::runtime::{RuntimeConfig, ServingRuntime};
    use jarvis_repro::sim::FleetGenerator;

    let home = SmartHome::evaluation_home();
    let mut jarvis = Jarvis::new(home.clone(), fast_config(23));
    jarvis.learning_phase(&HomeDataset::home_a(3), 0..2).unwrap();
    jarvis.learn_policies().unwrap();
    let table: SafeTransitionTable = jarvis.outcome().unwrap().table.clone();
    let state_dim = home.fsm().state_sizes().iter().sum::<usize>() + 5;
    let num_actions = home.agent_mini_actions().len() + 1;
    let make_policy = |par: Parallelism| {
        let mut cfg = DqnConfig::new(state_dim, num_actions);
        cfg.hidden = vec![16];
        cfg.seed = 23;
        cfg.parallelism = par;
        DqnAgent::new(cfg).unwrap()
    };

    let fleet = FleetGenerator::new(41, 4);
    let run = |policy: &DqnAgent, shards: usize, deterministic: bool| {
        let mut config = RuntimeConfig::new(shards);
        config.deterministic = deterministic;
        config.batch_window = 8;
        let mut rt = ServingRuntime::new(config, policy.clone()).unwrap();
        for id in 0..fleet.num_homes() {
            rt.register_home(u64::from(id), home.clone(), table.clone()).unwrap();
        }
        let calib = rt.calibration_observations();
        let rows: Vec<&[f64]> = calib.iter().map(Vec::as_slice).collect();
        let agreement = rt.quantize_policy(&rows, 0.0).unwrap();
        let ingest = rt.ingest_fleet_day(&fleet, 1, None, Some(45)).unwrap();
        let report = rt.serve(ingest.envelopes).unwrap();
        (format!("{:?}", report.outcomes), agreement.to_bits())
    };

    // Same seed, independently built agents, different GEMM parallelism:
    // identical quantized agreement and identical served bytes.
    let baseline = run(&make_policy(Parallelism::Single), 1, true);
    for par in [Parallelism::Single, Parallelism::Threads(3), Parallelism::Auto] {
        let policy = make_policy(par);
        for shards in [1usize, 4] {
            for deterministic in [true, false] {
                let got = run(&policy, shards, deterministic);
                assert_eq!(
                    baseline.1, got.1,
                    "quantized agreement drifted at {par:?}, {shards} shards"
                );
                assert_eq!(
                    baseline.0, got.0,
                    "quantized outcomes drifted at {par:?}, {shards} shards, det={deterministic}"
                );
            }
        }
    }
}
