//! Hermeticity guard: the workspace must stay buildable with zero network
//! access. Every dependency of every crate — including dev- and
//! build-dependencies — must be an in-tree `path = ...` dependency or a
//! `workspace = true` alias for one. Any external crates.io dependency
//! sneaking into a manifest fails this test before it fails an offline
//! build.

use std::fs;
use std::path::{Path, PathBuf};

/// Collect every Cargo.toml in the workspace (root + crates/*).
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in fs::read_dir(&crates).expect("crates/ directory") {
        let manifest = entry.expect("dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    assert!(manifests.len() >= 10, "expected the full workspace, found {}", manifests.len());
    // Crates the hermeticity audit must never silently lose track of.
    for required in ["runtime", "stdkit", "core", "bench", "lint"] {
        assert!(
            manifests.iter().any(|m| m.ends_with(format!("crates/{required}/Cargo.toml"))),
            "crates/{required}/Cargo.toml missing from the hermeticity scan"
        );
    }
    manifests
}

/// Minimal TOML-section scan: yields `(section, key, value)` for every
/// key under a `[...dependencies...]` table (enough structure to audit a
/// Cargo manifest without a TOML crate — which would itself violate the
/// policy this test enforces).
fn dependency_entries(text: &str) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        if !section.contains("dependencies") {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            out.push((section.clone(), key.trim().to_string(), value.trim().to_string()));
        }
    }
    out
}

#[test]
fn every_dependency_is_in_tree() {
    for manifest in workspace_manifests() {
        let text = fs::read_to_string(&manifest).expect("readable manifest");
        for (section, key, value) in dependency_entries(&text) {
            let in_tree = value.contains("path =")
                || value.contains("path=")
                || value.contains("workspace = true")
                || value.contains("workspace=true")
                || key.ends_with(".workspace"); // `dep.workspace = true` form
            assert!(
                in_tree,
                "{}: [{}] `{} = {}` is not a path/workspace dependency — \
                 external crates break the offline build",
                manifest.display(),
                section,
                key,
                value
            );
            // Workspace aliases must point at in-tree crates we actually ship.
            if value.contains("workspace") {
                let name = key.trim_end_matches(".workspace");
                assert!(
                    name.starts_with("jarvis"),
                    "{}: workspace dependency `{}` is not an in-tree jarvis crate",
                    manifest.display(),
                    name
                );
            }
        }
    }
}

#[test]
fn workspace_dependency_table_is_path_only() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    let mut in_table = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if !in_table || line.is_empty() || line.starts_with('#') {
            continue;
        }
        assert!(
            line.contains("path ="),
            "[workspace.dependencies] entry `{line}` must use `path = ...`"
        );
        assert!(
            !line.contains("version") && !line.contains("git") && !line.contains("registry"),
            "[workspace.dependencies] entry `{line}` must not reference a registry"
        );
    }
}
