//! End-to-end runtime monitoring: learned table + manual rules + ANN filter
//! classifying a live event stream.

use jarvis_repro::core::{Jarvis, JarvisConfig, OptimizerConfig, RewardWeights, Verdict};
use jarvis_repro::policy::FilterConfig;
use jarvis_repro::sim::HomeDataset;
use jarvis_repro::smart_home::{emergency_rules, SmartHome};

fn deployed_jarvis() -> Jarvis {
    let home = SmartHome::evaluation_home();
    let config = JarvisConfig {
        manual: Some(emergency_rules(&home)),
        filter: Some(FilterConfig { epochs: 8, seed: 3, ..FilterConfig::default() }),
        anomaly_training_samples: 1_200,
        weights: RewardWeights::balanced(),
        optimizer: OptimizerConfig::fast(),
        ..JarvisConfig::default()
    };
    let data = HomeDataset::home_a(3);
    let mut jarvis = Jarvis::new(home, config);
    jarvis.learning_phase(&data, 0..7).unwrap();
    jarvis.train_filter(3).unwrap();
    jarvis.learn_policies().unwrap();
    jarvis
}

#[test]
fn monitor_classifies_a_mixed_event_stream() {
    let jarvis = deployed_jarvis();
    let home = jarvis.home();
    let mut mon = jarvis.monitor().unwrap();

    // Routine departure sequence: safe.
    assert_eq!(mon.observe(home.mini_action("lock", "unlock")).unwrap(), Verdict::Safe);
    assert_eq!(mon.observe(home.mini_action("lock", "lock_inside")).unwrap(), Verdict::Safe);

    // Attack: disabling a sensor — blocked by the manual deny whatever the
    // table says.
    assert_eq!(
        mon.observe(home.mini_action("door_sensor", "power_off")).unwrap(),
        Verdict::Violation
    );

    // Benign anomaly: fridge door opens (never in routine logs) — the ANN
    // excuses it instead of alarming.
    let v = mon.observe(home.mini_action("fridge", "open_door")).unwrap();
    assert_eq!(v, Verdict::Excused, "fridge-door events are the canonical benign anomaly");

    // Fire: the alarm is exogenous; egress unlock is allowed by manual rule,
    // heating is denied.
    mon.observe_exogenous(home.mini_action("temp_sensor", "alarm_fire")).unwrap();
    assert_eq!(mon.observe(home.mini_action("lock", "unlock")).unwrap(), Verdict::Safe);
    assert_eq!(
        mon.observe(home.mini_action("thermostat", "set_heat")).unwrap(),
        Verdict::Violation
    );

    // Exactly the two violations were alarmed; excused events were not.
    assert_eq!(mon.alarms().len(), 2);
}

#[test]
fn monitor_replays_a_benign_day_quietly() {
    let jarvis = deployed_jarvis();
    let home = jarvis.home();
    let filtered_out = jarvis.outcome().unwrap().filtered_out;
    let episode = &jarvis.episodes()[4];
    let mut mon = jarvis.monitor().unwrap();
    let mut alarms = 0usize;
    for tr in episode.transitions() {
        // Keep the monitor clock aligned with the episode's real minutes.
        while mon.time() < tr.step {
            mon.tick();
        }
        for m in tr.action.minis() {
            let name = home
                .fsm()
                .device(m.device)
                .unwrap()
                .action_name(m.action)
                .unwrap();
            if jarvis_repro::smart_home::devices::is_agent_action(name) {
                if mon.observe(*m).unwrap() == Verdict::Violation {
                    alarms += 1;
                }
            } else {
                // Sensor readings are the physical world, not policy-checked.
                mon.observe_exogenous(*m).unwrap();
            }
        }
    }
    // The only admissible alarms are transitions the ANN filtered during
    // learning (its small false-positive rate).
    assert!(
        alarms <= filtered_out,
        "{alarms} alarms on a benign day (filter removed {filtered_out})"
    );
}

#[test]
fn active_learning_widens_the_monitorable_space() {
    use jarvis_repro::core::suggest::suggest;
    use jarvis_repro::core::{
        active_learning_round, DayScenario, DeviceAllowlistOracle, HomeRlEnv, Optimizer,
        SmartReward,
    };
    use jarvis_repro::policy::MatchMode;

    let jarvis = deployed_jarvis();
    let data = HomeDataset::home_a(3);
    let outcome = jarvis.outcome().unwrap();
    let scenario = DayScenario::from_dataset(jarvis.home(), &data, 8);
    let reward = SmartReward::evaluation(
        RewardWeights::emphasizing("energy", 0.8),
        scenario.peak_price(),
        outcome.behavior.clone(),
        scenario.config(),
        jarvis.home().fsm().num_devices(),
    );
    let mut table = outcome.table.clone();
    let before = table.len();

    let mut scout_env = HomeRlEnv::new(jarvis.home(), &scenario, &reward);
    let mut scout = Optimizer::new(&scout_env, OptimizerConfig::fast()).unwrap();
    scout.train(&mut scout_env).unwrap();
    let mut oracle = DeviceAllowlistOracle::new([
        jarvis.home().device_id("washer"),
        jarvis.home().device_id("tv"),
        jarvis.home().device_id("light"),
        jarvis.home().device_id("thermostat"),
    ]);
    let report = active_learning_round(
        jarvis.home(),
        &mut scout_env,
        scout.agent(),
        &mut table,
        MatchMode::Generalized,
        &mut oracle,
        12,
    )
    .unwrap();
    assert_eq!(table.len(), before + report.approved);

    // Suggestions still come from the (possibly widened) safe set.
    let env = HomeRlEnv::new(jarvis.home(), &scenario, &reward)
        .constrained(&table, MatchMode::Generalized);
    let s = suggest(scout.agent(), &env).unwrap();
    if let Some(mini) = s.action {
        assert!(table.is_safe_action(
            env.current_state(),
            &jarvis_repro::model::EnvAction::single(mini),
            MatchMode::Generalized
        ));
    }
}
