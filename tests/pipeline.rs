//! End-to-end integration: the full Jarvis pipeline across every crate.

use jarvis_repro::core::{Jarvis, JarvisConfig, OptimizerConfig, RewardWeights};
use jarvis_repro::policy::FilterConfig;
use jarvis_repro::sim::HomeDataset;
use jarvis_repro::smart_home::SmartHome;

fn fast_config(weights: RewardWeights, seed: u64) -> JarvisConfig {
    JarvisConfig {
        weights,
        anomaly_training_samples: 400,
        filter: Some(FilterConfig { epochs: 5, seed, ..FilterConfig::default() }),
        optimizer: OptimizerConfig {
            episodes: 6,
            hidden: vec![32],
            replay_every: 16,
            seed,
            ..OptimizerConfig::default()
        },
        ..JarvisConfig::default()
    }
}

#[test]
fn full_pipeline_energy_shape() {
    // The headline functionality claim: with an energy-heavy weight, the
    // optimized day uses meaningfully less energy than normal behavior,
    // with zero safety violations.
    let data = HomeDataset::home_a(42);
    let mut jarvis = Jarvis::new(
        SmartHome::evaluation_home(),
        fast_config(RewardWeights::emphasizing("energy", 0.8), 42),
    );
    jarvis.learning_phase(&data, 0..7).unwrap();
    jarvis.train_filter(42).unwrap();
    jarvis.learn_policies().unwrap();

    let plan = jarvis.optimize_day(&data, 8).unwrap();
    assert_eq!(plan.optimized.steps, 1440);
    assert_eq!(plan.optimized.violations, 0);
    assert!(
        plan.optimized.energy_kwh < plan.normal.energy_kwh,
        "optimized {} kWh should beat normal {} kWh",
        plan.optimized.energy_kwh,
        plan.normal.energy_kwh
    );
}

#[test]
fn pipeline_is_deterministic_per_seed() {
    let run = || {
        let data = HomeDataset::home_a(7);
        let mut jarvis = Jarvis::new(
            SmartHome::evaluation_home(),
            fast_config(RewardWeights::balanced(), 7),
        );
        jarvis.learning_phase(&data, 0..3).unwrap();
        jarvis.learn_policies().unwrap();
        let plan = jarvis.optimize_day(&data, 4).unwrap();
        (
            jarvis.outcome().unwrap().table.len(),
            plan.optimized.energy_kwh,
            plan.optimized.reward,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn learning_more_days_grows_the_safe_table() {
    let data = HomeDataset::home_a(5);
    let table_len = |days: u32| {
        let mut jarvis = Jarvis::new(
            SmartHome::evaluation_home(),
            fast_config(RewardWeights::balanced(), 5),
        );
        jarvis.learning_phase(&data, 0..days).unwrap();
        jarvis.learn_policies().unwrap();
        jarvis.outcome().unwrap().table.len()
    };
    let short = table_len(2);
    let long = table_len(7);
    assert!(long > short, "7 days ({long}) should observe more than 2 ({short})");
}

#[test]
fn thresh_env_ablation_shrinks_the_table() {
    // Higher Thresh_env demands more repetitions before a pair is safe.
    let data = HomeDataset::home_a(5);
    let table_len = |thresh: u64| {
        let mut config = fast_config(RewardWeights::balanced(), 5);
        config.spl = jarvis_repro::policy::SplConfig { thresh_env: thresh };
        let mut jarvis = Jarvis::new(SmartHome::evaluation_home(), config);
        jarvis.learning_phase(&data, 0..7).unwrap();
        jarvis.learn_policies().unwrap();
        jarvis.outcome().unwrap().table.len()
    };
    let permissive = table_len(0);
    let strict = table_len(3);
    assert!(strict < permissive, "thresh 3 ({strict}) must prune vs 0 ({permissive})");
    assert!(strict > 0, "weekly routines repeat often enough to survive");
}

#[test]
fn chi_ablation_changes_comfort_tradeoff() {
    // χ scales utility against dis-utility; an extreme χ (dis-utility
    // negligible) frees the agent to ignore user habit timing entirely.
    let data = HomeDataset::home_a(11);
    let run = |chi: f64| {
        let mut config = fast_config(RewardWeights::emphasizing("energy", 0.9), 11);
        config.chi = chi;
        let mut jarvis = Jarvis::new(SmartHome::evaluation_home(), config);
        jarvis.learning_phase(&data, 0..5).unwrap();
        jarvis.learn_policies().unwrap();
        jarvis.optimize_day(&data, 6).unwrap().optimized
    };
    let balanced = run(1.0);
    let utility_only = run(1_000.0);
    // Both run; with dis-utility effectively disabled the reward cannot be
    // lower (the penalty term vanished).
    assert!(utility_only.reward >= balanced.reward - 1e-6);
}

#[test]
fn unconstrained_mode_commits_violations() {
    use jarvis_repro::core::{DayScenario, HomeRlEnv, Optimizer, SmartReward};
    use jarvis_repro::policy::MatchMode;

    let data = HomeDataset::home_a(3);
    let mut jarvis = Jarvis::new(
        SmartHome::evaluation_home(),
        fast_config(RewardWeights::balanced(), 3),
    );
    jarvis.learning_phase(&data, 0..5).unwrap();
    jarvis.learn_policies().unwrap();
    let outcome = jarvis.outcome().unwrap();

    let scenario = DayScenario::from_dataset(jarvis.home(), &data, 6);
    let reward = SmartReward::evaluation(
        RewardWeights::balanced(),
        scenario.peak_price(),
        outcome.behavior.clone(),
        scenario.config(),
        jarvis.home().fsm().num_devices(),
    );
    let mut env = HomeRlEnv::new(jarvis.home(), &scenario, &reward)
        .with_detector(&outcome.table, MatchMode::Generalized);
    let mut optimizer = Optimizer::new(&env, jarvis.config().optimizer.clone()).unwrap();
    let stats = optimizer.train(&mut env).unwrap();
    assert!(
        stats.mean_violations() > 10.0,
        "unconstrained exploration must rack up violations, got {}",
        stats.mean_violations()
    );
}
