//! Property-based tests over the core data structures and invariants,
//! spanning the workspace crates.

use jarvis_repro::model::{
    DeviceId, DeviceSpec, EnvAction, EnvState, Fsm, MiniAction, StateIdx, StatePattern,
};
use jarvis_repro::neural::metrics::{auc, Confusion};
use jarvis_repro::policy::{MatchMode, SafeTransitionTable};
use jarvis_repro::rl::{top_c, ReplayBuffer};
use jarvis_stdkit::prop_assert;
use jarvis_stdkit::prop_assert_eq;
use jarvis_stdkit::propcheck::{Config, Gen};

/// A random small FSM of 1..=6 devices with 2..=4 states and 1..=4 actions
/// each, and fully random (but valid) transition tables.
fn gen_fsm(g: &mut Gen) -> Fsm {
    let n_devices = g.usize_in(1, 6);
    let specs: Vec<DeviceSpec> = (0..n_devices)
        .map(|i| {
            let ns = g.usize_in(2, 4);
            let na = g.usize_in(1, 4);
            let seed = g.u64();
            let states: Vec<String> = (0..ns).map(|s| format!("s{s}")).collect();
            let actions: Vec<String> = (0..na).map(|a| format!("a{a}")).collect();
            let mut b = DeviceSpec::builder(format!("d{i}"))
                .states(states.clone())
                .actions(actions.clone());
            // Derive transitions deterministically from the seed.
            let mut x = seed | 1;
            for s in 0..ns {
                for a in 0..na {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let to = (x >> 33) as usize % ns;
                    b = b.transition(&states[s], &actions[a], &states[to]);
                }
            }
            b.build().expect("valid device")
        })
        .collect();
    Fsm::new(specs).expect("non-empty")
}

/// A valid state of `fsm`.
fn gen_state(g: &mut Gen, fsm: &Fsm) -> EnvState {
    fsm.state_sizes().iter().map(|&n| StateIdx(g.u8() % n as u8)).collect()
}

/// Δ always yields a valid state, and the no-op is the identity.
#[test]
fn fsm_step_closure() {
    Config::with_cases(64).run(|g| {
        let fsm = gen_fsm(g);
        let raw = gen_state(g, &fsm);
        prop_assert!(fsm.validate_state(&raw).is_ok());
        let noop = fsm.step(&raw, &EnvAction::noop()).unwrap();
        prop_assert_eq!(&noop, &raw);
        // Every mini-action leads to another valid state differing in at
        // most the actuated device.
        for mini in fsm.mini_actions() {
            let next = fsm.step(&raw, &EnvAction::single(mini)).unwrap();
            prop_assert!(fsm.validate_state(&next).is_ok());
            prop_assert!(raw.hamming(&next) <= 1);
            for (id, s) in next.iter() {
                if id != mini.device {
                    prop_assert_eq!(raw.device(id), Some(s));
                }
            }
        }
        Ok(())
    });
}

/// Mini-action flat indexing is a bijection over the whole action space.
#[test]
fn mini_action_bijection() {
    Config::with_cases(64).run(|g| {
        let fsm = gen_fsm(g);
        let mut seen = std::collections::HashSet::new();
        for flat in 0..fsm.num_mini_actions() {
            let mini = fsm.mini_action_at(flat);
            prop_assert_eq!(fsm.mini_action_index(mini), Some(flat));
            prop_assert!(seen.insert(mini), "duplicate at {}", flat);
        }
        prop_assert_eq!(fsm.mini_action_at(fsm.num_mini_actions()), None);
        Ok(())
    });
}

/// EnvAction canonicalization: construction order never matters.
#[test]
fn env_action_canonical() {
    Config::with_cases(64).run(|g| {
        let mut minis: Vec<(usize, u8)> =
            (0..g.usize_in(0, 5)).map(|_| (g.usize_in(0, 7), g.u8_in(0, 3))).collect();
        minis.sort();
        minis.dedup_by_key(|m| m.0);
        let forward: Vec<MiniAction> =
            minis.iter().map(|&(d, a)| MiniAction::new(DeviceId(d), a)).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let a = EnvAction::try_from_minis(forward).unwrap();
        let b = EnvAction::try_from_minis(reversed).unwrap();
        prop_assert_eq!(&a, &b);
        for m in a.minis() {
            prop_assert_eq!(a.on_device(m.device), Some(m.action));
        }
        Ok(())
    });
}

/// StatePattern: a fully pinned pattern matches exactly its source
/// state; widening any slot keeps it matching.
#[test]
fn pattern_widening_is_monotone() {
    Config::with_cases(64).run(|g| {
        let fsm = gen_fsm(g);
        let s = gen_state(g, &fsm);
        let widen: Vec<bool> = (0..6).map(|_| g.bool(0.5)).collect();
        let full = StatePattern::new(s.iter().map(|(_, st)| Some(st)).collect());
        prop_assert!(full.matches(&s));
        let widened = StatePattern::new(
            s.iter()
                .enumerate()
                .map(|(i, (_, st))| {
                    if widen.get(i).copied().unwrap_or(false) { None } else { Some(st) }
                })
                .collect(),
        );
        prop_assert!(widened.matches(&s), "widening can never unmatch");
        prop_assert!(widened.specificity() <= full.specificity());
        Ok(())
    });
}

/// SafeTransitionTable: everything allowed is reported safe under every
/// mode; Exact never reports an unobserved pair safe.
#[test]
fn safe_table_soundness() {
    Config::with_cases(64).run(|g| {
        let fsm = gen_fsm(g);
        let states: Vec<EnvState> = (0..g.usize_in(1, 4)).map(|_| gen_state(g, &fsm)).collect();
        let mut table = SafeTransitionTable::new();
        let mut allowed = Vec::new();
        for (i, s) in states.iter().enumerate() {
            let minis = fsm.mini_actions();
            let mini = minis[i % minis.len()];
            let action = EnvAction::single(mini);
            table.allow(&fsm, s, &action);
            allowed.push((s.clone(), action));
        }
        for (s, a) in &allowed {
            for mode in [MatchMode::Exact, MatchMode::DeviceContext, MatchMode::Generalized] {
                prop_assert!(table.is_safe_action(s, a, mode), "{mode:?}");
            }
        }
        // A pair never allowed is not Exact-safe (unless it is the no-op).
        let unseen_state = states[0].clone();
        for mini in fsm.mini_actions() {
            let action = EnvAction::single(mini);
            if !allowed.iter().any(|(s, a)| s == &unseen_state && a == &action) {
                prop_assert!(!table.is_safe_action(&unseen_state, &action, MatchMode::Exact));
            }
        }
        Ok(())
    });
}

/// Replay buffer: never exceeds capacity, keeps the newest items.
#[test]
fn replay_buffer_bounds() {
    Config::with_cases(64).run(|g| {
        let capacity = g.usize_in(1, 63);
        let items: Vec<u32> = (0..g.usize_in(0, 255)).map(|_| g.u32()).collect();
        let mut buf = ReplayBuffer::new(capacity);
        for &x in &items {
            buf.push(x);
        }
        prop_assert!(buf.len() <= capacity);
        prop_assert_eq!(buf.len(), items.len().min(capacity));
        let kept: Vec<u32> = buf.iter().copied().collect();
        let expected: Vec<u32> = items[items.len().saturating_sub(capacity)..].to_vec();
        prop_assert_eq!(kept, expected);
        Ok(())
    });
}

/// `top_c` enumerates the valid set exactly once, in non-increasing
/// Q order.
#[test]
fn top_c_is_a_ranking() {
    Config::with_cases(64).run(|g| {
        let q: Vec<f64> = (0..g.usize_in(1, 19)).map(|_| g.f64_in(-100.0, 100.0)).collect();
        let valid: Vec<usize> = (0..q.len()).collect();
        let ranking: Vec<usize> = (0..q.len()).map(|c| top_c(&q, &valid, c).unwrap()).collect();
        let mut sorted = ranking.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&sorted, &valid, "must be a permutation");
        for w in ranking.windows(2) {
            prop_assert!(q[w[0]] >= q[w[1]]);
        }
        prop_assert_eq!(top_c(&q, &valid, q.len()), None);
        Ok(())
    });
}

/// Confusion counts always total the sample size; AUC is within [0, 1].
#[test]
fn metrics_invariants() {
    Config::with_cases(64).run(|g| {
        let n = g.usize_in(1, 99);
        let scores: Vec<f64> = (0..n).map(|_| g.f64_in(0.0, 1.0)).collect();
        let labels: Vec<bool> = (0..n).map(|_| g.bool(0.5)).collect();
        let thr = g.f64_in(0.0, 1.0);
        let c = Confusion::at_threshold(&scores, &labels, thr);
        prop_assert_eq!(c.tp + c.fp + c.tn + c.fn_, n);
        let a = auc(&scores, &labels);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&a), "auc {a}");
        Ok(())
    });
}

/// A fault plan whose every rule carries rate 0.0 is the identity on the
/// whole ingest path, for *any* dataset seed: the injected pipeline's
/// parsed episodes are bit-identical to the un-injected ones. This is the
/// nested-drop guarantee at its degenerate point — the injector draws RNG
/// values but never acts on them.
#[test]
fn zero_rate_fault_injection_is_pipeline_identity() {
    use jarvis_repro::model::EpisodeConfig;
    use jarvis_repro::sim::{FaultInjector, FaultKind, FaultPlan, FaultRule, HomeDataset};
    use jarvis_repro::smart_home::{EventLog, SmartHome};
    use jarvis_stdkit::json::ToJson;

    let home = SmartHome::evaluation_home();
    Config::with_cases(6).run(|g| {
        let data = HomeDataset::home_a(g.u64());
        let day = g.u32_in(0, 3);
        let plan = FaultPlan {
            seed: g.u64(),
            rules: vec![
                FaultRule::all_day(FaultKind::Drop { rate: 0.0 }),
                FaultRule::all_day(FaultKind::Duplicate { rate: 0.0 }),
                FaultRule::all_day(FaultKind::Delay { rate: 0.0, max_minutes: 5 }),
                FaultRule::all_day(FaultKind::StuckAt { rate: 0.0, hold_minutes: 10 }),
            ],
        };
        let injector = FaultInjector::new(plan).expect("zero-rate plan is valid");

        let mut clean = EventLog::new();
        clean.record_activity(&home, &data.activity(day));
        let clean_eps = clean.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();

        let mut faulted = EventLog::new();
        let fd = injector.inject(&data, day);
        prop_assert_eq!(&fd.summary.total(), &0, "zero-rate plan acted on the stream");
        faulted.record_faulted_activity(&home, &fd);
        let faulted_eps = faulted.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();

        prop_assert_eq!(
            clean_eps.episodes.to_json(),
            faulted_eps.episodes.to_json(),
            "zero-rate injection changed the parsed episodes"
        );
        prop_assert_eq!(faulted_eps.gap_steps, 0);
        Ok(())
    });
}

/// Injection is a pure function of `(seed, plan)`: re-running any randomly
/// generated (valid) plan over the same day yields a byte-identical
/// `FaultedDay`, and the faulted stream never grows a minute outside the day.
#[test]
fn fault_injection_is_deterministic_per_seed_and_plan() {
    use jarvis_repro::sim::{FaultInjector, FaultKind, FaultPlan, FaultRule, HomeDataset};
    use jarvis_stdkit::json::ToJson;

    let data = HomeDataset::home_a(9);
    Config::with_cases(24).run(|g| {
        let day = g.u32_in(0, 2);
        let n_rules = g.usize_in(1, 4);
        let rules = (0..n_rules)
            .map(|_| {
                let rate = f64::from(g.u8_in(0, 100)) / 100.0;
                let kind = match g.u8() % 5 {
                    0 => FaultKind::Drop { rate },
                    1 => FaultKind::Duplicate { rate },
                    2 => FaultKind::Delay { rate, max_minutes: g.u32_in(1, 30) },
                    3 => FaultKind::StuckAt { rate, hold_minutes: g.u32_in(1, 60) },
                    _ => FaultKind::Offline {
                        windows: g.u32_in(1, 3),
                        max_minutes: g.u32_in(1, 120),
                    },
                };
                FaultRule::all_day(kind)
            })
            .collect();
        let plan = FaultPlan { seed: g.u64(), rules };
        let a = FaultInjector::new(plan.clone()).expect("generated plan is valid");
        let b = FaultInjector::new(plan).unwrap();
        let fa = a.inject(&data, day);
        let fb = b.inject(&data, day);
        prop_assert_eq!(fa.to_json(), fb.to_json(), "same (seed, plan) diverged");
        prop_assert!(fa.events.iter().all(|e| e.minute < 1440), "event escaped the day");
        prop_assert!(
            fa.events.windows(2).all(|w| w[0].minute <= w[1].minute),
            "faulted stream not minute-sorted"
        );
        Ok(())
    });
}
