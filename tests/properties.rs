//! Property-based tests over the core data structures and invariants,
//! spanning the workspace crates.

use jarvis_repro::model::{
    DeviceId, DeviceSpec, EnvAction, EnvState, Fsm, MiniAction, StateIdx, StatePattern,
};
use jarvis_repro::neural::metrics::{auc, Confusion};
use jarvis_repro::policy::{MatchMode, SafeTransitionTable};
use jarvis_repro::rl::{top_c, ReplayBuffer};
use proptest::prelude::*;

/// Strategy: a random small FSM of 1..=6 devices with 2..=4 states and
/// 1..=4 actions each, and fully random (but valid) transition tables.
fn arb_fsm() -> impl Strategy<Value = Fsm> {
    prop::collection::vec((2usize..=4, 1usize..=4, any::<u64>()), 1..=6).prop_map(|devs| {
        let specs: Vec<DeviceSpec> = devs
            .iter()
            .enumerate()
            .map(|(i, &(ns, na, seed))| {
                let states: Vec<String> = (0..ns).map(|s| format!("s{s}")).collect();
                let actions: Vec<String> = (0..na).map(|a| format!("a{a}")).collect();
                let mut b = DeviceSpec::builder(format!("d{i}"))
                    .states(states.clone())
                    .actions(actions.clone());
                // Derive transitions deterministically from the seed.
                let mut x = seed | 1;
                for s in 0..ns {
                    for a in 0..na {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let to = (x >> 33) as usize % ns;
                        b = b.transition(&states[s], &actions[a], &states[to]);
                    }
                }
                b.build().expect("valid device")
            })
            .collect();
        Fsm::new(specs).expect("non-empty")
    })
}

/// Strategy: a valid state of `fsm`.
fn arb_state(fsm: &Fsm) -> impl Strategy<Value = EnvState> {
    let sizes = fsm.state_sizes();
    prop::collection::vec(any::<u8>(), sizes.len()).prop_map(move |raw| {
        raw.iter()
            .zip(&sizes)
            .map(|(&r, &n)| StateIdx(r % n as u8))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Δ always yields a valid state, and the no-op is the identity.
    #[test]
    fn fsm_step_closure((fsm, raw) in arb_fsm().prop_flat_map(|f| {
        let s = arb_state(&f);
        (Just(f), s)
    })) {
        prop_assert!(fsm.validate_state(&raw).is_ok());
        let noop = fsm.step(&raw, &EnvAction::noop()).unwrap();
        prop_assert_eq!(&noop, &raw);
        // Every mini-action leads to another valid state differing in at
        // most the actuated device.
        for mini in fsm.mini_actions() {
            let next = fsm.step(&raw, &EnvAction::single(mini)).unwrap();
            prop_assert!(fsm.validate_state(&next).is_ok());
            prop_assert!(raw.hamming(&next) <= 1);
            for (id, s) in next.iter() {
                if id != mini.device {
                    prop_assert_eq!(raw.device(id), Some(s));
                }
            }
        }
    }

    /// Mini-action flat indexing is a bijection over the whole action space.
    #[test]
    fn mini_action_bijection(fsm in arb_fsm()) {
        let mut seen = std::collections::HashSet::new();
        for flat in 0..fsm.num_mini_actions() {
            let mini = fsm.mini_action_at(flat);
            prop_assert_eq!(fsm.mini_action_index(mini), Some(flat));
            prop_assert!(seen.insert(mini), "duplicate at {}", flat);
        }
        prop_assert_eq!(fsm.mini_action_at(fsm.num_mini_actions()), None);
    }

    /// EnvAction canonicalization: construction order never matters.
    #[test]
    fn env_action_canonical(mut minis in prop::collection::vec((0usize..8, 0u8..4), 0..6)) {
        minis.sort();
        minis.dedup_by_key(|m| m.0);
        let forward: Vec<MiniAction> =
            minis.iter().map(|&(d, a)| MiniAction::new(DeviceId(d), a)).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let a = EnvAction::try_from_minis(forward).unwrap();
        let b = EnvAction::try_from_minis(reversed).unwrap();
        prop_assert_eq!(&a, &b);
        for m in a.minis() {
            prop_assert_eq!(a.on_device(m.device), Some(m.action));
        }
    }

    /// StatePattern: a fully pinned pattern matches exactly its source
    /// state; widening any slot keeps it matching.
    #[test]
    fn pattern_widening_is_monotone((fsm, s) in arb_fsm().prop_flat_map(|f| {
        let s = arb_state(&f);
        (Just(f), s)
    }), widen in prop::collection::vec(any::<bool>(), 6)) {
        let full = StatePattern::new(s.iter().map(|(_, st)| Some(st)).collect());
        prop_assert!(full.matches(&s));
        let widened = StatePattern::new(
            s.iter()
                .enumerate()
                .map(|(i, (_, st))| {
                    if widen.get(i).copied().unwrap_or(false) { None } else { Some(st) }
                })
                .collect(),
        );
        prop_assert!(widened.matches(&s), "widening can never unmatch");
        prop_assert!(widened.specificity() <= full.specificity());
        let _ = fsm;
    }

    /// SafeTransitionTable: everything allowed is reported safe under every
    /// mode; Exact never reports an unobserved pair safe.
    #[test]
    fn safe_table_soundness((fsm, states) in arb_fsm().prop_flat_map(|f| {
        let s = prop::collection::vec(arb_state(&f), 1..5);
        (Just(f), s)
    })) {
        let mut table = SafeTransitionTable::new();
        let mut allowed = Vec::new();
        for (i, s) in states.iter().enumerate() {
            let minis = fsm.mini_actions();
            let mini = minis[i % minis.len()];
            let action = EnvAction::single(mini);
            table.allow(&fsm, s, &action);
            allowed.push((s.clone(), action));
        }
        for (s, a) in &allowed {
            for mode in [MatchMode::Exact, MatchMode::DeviceContext, MatchMode::Generalized] {
                prop_assert!(table.is_safe_action(s, a, mode), "{mode:?}");
            }
        }
        // A pair never allowed is not Exact-safe (unless it is the no-op).
        let unseen_state = states[0].clone();
        for mini in fsm.mini_actions() {
            let action = EnvAction::single(mini);
            if !allowed.iter().any(|(s, a)| s == &unseen_state && a == &action) {
                prop_assert!(!table.is_safe_action(&unseen_state, &action, MatchMode::Exact));
            }
        }
    }

    /// Replay buffer: never exceeds capacity, keeps the newest items.
    #[test]
    fn replay_buffer_bounds(capacity in 1usize..64, items in prop::collection::vec(any::<u32>(), 0..256)) {
        let mut buf = ReplayBuffer::new(capacity);
        for &x in &items {
            buf.push(x);
        }
        prop_assert!(buf.len() <= capacity);
        prop_assert_eq!(buf.len(), items.len().min(capacity));
        let kept: Vec<u32> = buf.iter().copied().collect();
        let expected: Vec<u32> =
            items[items.len().saturating_sub(capacity)..].to_vec();
        prop_assert_eq!(kept, expected);
    }

    /// `top_c` enumerates the valid set exactly once, in non-increasing
    /// Q order.
    #[test]
    fn top_c_is_a_ranking(q in prop::collection::vec(-100.0f64..100.0, 1..20)) {
        let valid: Vec<usize> = (0..q.len()).collect();
        let ranking: Vec<usize> =
            (0..q.len()).map(|c| top_c(&q, &valid, c).unwrap()).collect();
        let mut sorted = ranking.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&sorted, &valid, "must be a permutation");
        for w in ranking.windows(2) {
            prop_assert!(q[w[0]] >= q[w[1]]);
        }
        prop_assert_eq!(top_c(&q, &valid, q.len()), None);
    }

    /// Confusion counts always total the sample size; AUC is within [0, 1].
    #[test]
    fn metrics_invariants(samples in prop::collection::vec((0.0f64..1.0, any::<bool>()), 1..100), thr in 0.0f64..1.0) {
        let scores: Vec<f64> = samples.iter().map(|&(s, _)| s).collect();
        let labels: Vec<bool> = samples.iter().map(|&(_, l)| l).collect();
        let c = Confusion::at_threshold(&scores, &labels, thr);
        prop_assert_eq!(c.tp + c.fp + c.tn + c.fn_, samples.len());
        let a = auc(&scores, &labels);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&a), "auc {a}");
    }
}
