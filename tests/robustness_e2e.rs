//! Fault-matrix robustness harness: sweep fault rates × seeds through the
//! whole pipeline and check that detection degrades *gracefully* — the
//! false-positive rate of the learned safe-transition table stays bounded
//! and (near-)monotone in the fault rate, known gaps never inflate it, and
//! no pipeline stage panics at any swept rate.
//!
//! The second half is the crash-recovery matrix: panics injected at every
//! k-th envelope × shard counts × seeds through the supervised serving
//! runtime, asserting the recovered run is *bitwise* equal to the
//! uninterrupted oracle — outcomes, snapshot bytes, and full detection of
//! engineered violations — plus a stall variant for the deadline watchdog.
//!
//! The degradation curves themselves are regenerated at larger scale by
//! `cargo run -p jarvis-bench --bin robustness` and recorded in
//! EXPERIMENTS.md.

use jarvis_repro::attacks::{build_corpus, evaluate_detection, inject_violation};
use jarvis_repro::core::{Jarvis, JarvisConfig, OptimizerConfig, Verdict};
use jarvis_repro::model::{Episode, EpisodeConfig, TimeStep};
use jarvis_repro::policy::{flag_violations, MatchMode, SafeTransitionTable};
use jarvis_repro::rl::{DqnAgent, DqnConfig};
use jarvis_repro::runtime::{
    Envelope, EventKind, Outcome, RuntimeConfig, ServingRuntime, SupervisorConfig,
};
use jarvis_repro::sim::{
    ChaosInjector, ChaosKind, ChaosPlan, ChaosRule, ChaosSchedule, FaultInjector, FaultKind,
    FaultPlan, FaultRule, FleetGenerator, HomeDataset,
};
use jarvis_repro::smart_home::{EventLog, SmartHome};
use jarvis_stdkit::json::ToJson;

const LEARN_DAYS: std::ops::Range<u32> = 0..3;

fn fast_config() -> JarvisConfig {
    JarvisConfig {
        filter: None,
        optimizer: OptimizerConfig::fast(),
        ..JarvisConfig::default()
    }
}

/// Learn the table from the clean stream.
fn clean_baseline(seed: u64) -> (Jarvis, HomeDataset) {
    let data = HomeDataset::home_a(seed);
    let mut jarvis = Jarvis::new(SmartHome::evaluation_home(), fast_config());
    jarvis.learning_phase(&data, LEARN_DAYS).unwrap();
    jarvis.learn_policies().unwrap();
    (jarvis, data)
}

/// Re-ingest the same days through a fault plan and return the episodes.
fn faulted_episodes(data: &HomeDataset, plan: FaultPlan) -> Vec<Episode> {
    let injector = FaultInjector::new(plan).unwrap();
    let home = SmartHome::evaluation_home();
    let mut log = EventLog::new();
    for day in LEARN_DAYS {
        log.record_faulted_activity(&home, &injector.inject(data, day));
    }
    log.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap().episodes
}

/// Fraction of active (non-idle, non-gap) transitions the table flags. With
/// no attacks injected, every flag is a false positive.
fn false_positive_rate(table: &SafeTransitionTable, episodes: &[Episode], mode: MatchMode) -> f64 {
    let mut flagged = 0usize;
    let mut active = 0usize;
    for ep in episodes {
        active += ep.transitions().iter().filter(|tr| !tr.is_idle() && !tr.gap).count();
        flagged += flag_violations(table, ep, mode).len();
    }
    flagged as f64 / active.max(1) as f64
}

#[test]
fn fp_degradation_is_bounded_and_monotone_in_drop_rate() {
    let rates = [0.0, 0.01, 0.03, 0.05];
    for seed in [7u64, 23] {
        let (jarvis, data) = clean_baseline(seed);
        let table = &jarvis.outcome().unwrap().table;
        let mut gen_curve = Vec::new();
        for &rate in &rates {
            let eps = faulted_episodes(&data, FaultPlan::uniform_drop(seed, rate));
            // Exact matching amplifies a single dropped event into a skewed
            // joint state; even so it must not blow up at ≤ 5% drop.
            let exact = false_positive_rate(table, &eps, MatchMode::Exact);
            assert!(
                exact <= 0.6,
                "seed {seed}: exact-mode FP rate {exact:.3} at drop rate {rate} blew up"
            );
            gen_curve.push(false_positive_rate(table, &eps, MatchMode::Generalized));
        }
        // Generalized triggers (the runtime constraint mode) are the
        // graceful-degradation headline: clean at rate 0, bounded at 5%.
        assert_eq!(
            gen_curve[0], 0.0,
            "seed {seed}: zero-fault replay of the training stream must be clean"
        );
        for (i, &fp) in gen_curve.iter().enumerate() {
            assert!(
                fp <= 0.35,
                "seed {seed}: FP rate {fp:.3} at drop rate {} not gracefully bounded",
                rates[i]
            );
        }
        // Drop sets nest across rates under one seed, so the curve is
        // monotone up to re-slotting noise.
        for w in gen_curve.windows(2) {
            assert!(
                w[1] + 0.02 >= w[0],
                "seed {seed}: FP curve not near-monotone: {gen_curve:?}"
            );
        }
    }
}

#[test]
fn known_gaps_do_not_inflate_false_positives() {
    let (jarvis, data) = clean_baseline(11);
    let table = &jarvis.outcome().unwrap().table;
    // Take the lock (a high-activity device) fully offline for two long
    // windows each day: every covered interval is flagged as a gap and
    // skipped by the detector.
    let plan = FaultPlan {
        seed: 11,
        rules: vec![FaultRule::for_device(
            FaultKind::Offline { windows: 2, max_minutes: 240 },
            "lock",
        )],
    };
    let eps = faulted_episodes(&data, plan);
    let gaps: usize = eps.iter().map(Episode::num_gaps).sum();
    assert!(gaps > 0, "offline windows must flag gaps");
    let fp = false_positive_rate(table, &eps, MatchMode::Generalized);
    assert!(
        fp <= 0.10,
        "FP rate {fp:.3}: known outages should be absorbed, not flagged"
    );
}

#[test]
fn combined_fault_kinds_never_panic_and_detection_survives() {
    // Every fault model at once, at aggressive rates, across seeds: the
    // pipeline must parse, learn, and still detect engineered violations.
    let corpus_steps = [TimeStep(400), TimeStep(900)];
    for seed in [3u64, 19] {
        let (jarvis, data) = clean_baseline(seed);
        let table = &jarvis.outcome().unwrap().table;
        let plan = FaultPlan {
            seed,
            rules: vec![
                FaultRule::all_day(FaultKind::Drop { rate: 0.05 }),
                FaultRule::all_day(FaultKind::Duplicate { rate: 0.05 }),
                FaultRule::all_day(FaultKind::Delay { rate: 0.05, max_minutes: 5 }),
                FaultRule::all_day(FaultKind::StuckAt { rate: 0.02, hold_minutes: 30 }),
                FaultRule::all_day(FaultKind::Offline { windows: 1, max_minutes: 60 }),
            ],
        };
        let eps = faulted_episodes(&data, plan);
        assert_eq!(eps.len(), LEARN_DAYS.len());
        for ep in &eps {
            assert_eq!(ep.len(), 1440);
        }
        // Engineered violations on the faulted bases are still caught: the
        // corpus transitions were never learned, faults or no faults.
        let home = jarvis.home();
        let corpus = build_corpus(home);
        let injected: Vec<_> = corpus
            .iter()
            .step_by(10)
            .flat_map(|v| {
                corpus_steps
                    .iter()
                    .filter_map(|&t| inject_violation(home, &eps[0], v, t).ok())
                    .collect::<Vec<_>>()
            })
            .collect();
        assert!(!injected.is_empty());
        let report = evaluate_detection(table, &injected, MatchMode::Exact);
        assert_eq!(
            report.detected, report.total,
            "seed {seed}: faults must not mask engineered violations"
        );
    }
}

// ---------------------------------------------------------------------------
// Crash-recovery matrix: supervised serving under chaos injection
// ---------------------------------------------------------------------------

const FLEET_HOMES: u32 = 6;
const QUERY_EVERY: u32 = 45;

/// A serving fixture: the evaluation home, a table learned from a short
/// learning phase, and a policy net sized for that home.
struct ServeFixture {
    home: SmartHome,
    table: SafeTransitionTable,
    policy: DqnAgent,
}

fn serve_fixture() -> ServeFixture {
    let home = SmartHome::evaluation_home();
    let mut jarvis = Jarvis::new(home.clone(), fast_config());
    jarvis.learning_phase(&HomeDataset::home_a(3), 0..2).unwrap();
    jarvis.learn_policies().unwrap();
    let table = jarvis.outcome().unwrap().table.clone();
    let state_dim = home.fsm().state_sizes().iter().sum::<usize>() + 5;
    let num_actions = home.agent_mini_actions().len() + 1;
    let mut cfg = DqnConfig::new(state_dim, num_actions);
    cfg.hidden = vec![16];
    cfg.seed = 7;
    let policy = DqnAgent::new(cfg).unwrap();
    ServeFixture { home, table, policy }
}

fn serving_runtime(f: &ServeFixture, shards: usize) -> ServingRuntime {
    let mut config = RuntimeConfig::new(shards);
    config.deterministic = true;
    config.batch_window = 8;
    let mut rt = ServingRuntime::new(config, f.policy.clone()).unwrap();
    for id in 0..FLEET_HOMES {
        rt.register_home(u64::from(id), f.home.clone(), f.table.clone()).unwrap();
    }
    rt
}

/// One fleet day of envelopes with engineered violations appended: a
/// never-learned action per home at the end of the day. Returns the stream
/// and the violating sequence numbers.
fn violating_stream(
    f: &ServeFixture,
    rt: &mut ServingRuntime,
    fleet: &FleetGenerator,
) -> (Vec<Envelope>, Vec<u64>) {
    let mut envelopes =
        rt.ingest_fleet_day(fleet, 1, None, Some(QUERY_EVERY)).unwrap().envelopes;
    let violation = f.home.mini_action("door_sensor", "power_off");
    let mut seq = envelopes.last().map_or(0, |e| e.seq + 1);
    let mut injected = Vec::new();
    for home in 0..u64::from(FLEET_HOMES) {
        envelopes.push(Envelope { seq, home, minute: 1439, kind: EventKind::Action(violation) });
        injected.push(seq);
        seq += 1;
    }
    (envelopes, injected)
}

/// Fraction of the injected violations the monitor flagged.
fn detection_rate(outcomes: &[Outcome], injected: &[u64]) -> f64 {
    let detected = injected
        .iter()
        .filter(|&&seq| {
            outcomes.iter().any(|o| {
                matches!(o, Outcome::Verdict { seq: s, verdict: Verdict::Violation, .. } if *s == seq)
            })
        })
        .count();
    detected as f64 / injected.len().max(1) as f64
}

/// Run oracle + supervised-under-chaos for one (shards, plan) cell and
/// assert the recovered run is bitwise indistinguishable.
fn assert_recovery_is_bitwise(
    f: &ServeFixture,
    fleet: &FleetGenerator,
    shards: usize,
    plan: &ChaosPlan,
    sup: &SupervisorConfig,
) -> jarvis_repro::runtime::RecoveryReport {
    let mut oracle_rt = serving_runtime(f, shards);
    let (stream, injected) = violating_stream(f, &mut oracle_rt, fleet);
    let want = oracle_rt.serve(stream.clone()).unwrap();
    let want_snap = oracle_rt.snapshot().to_json();
    assert_eq!(detection_rate(&want.outcomes, &injected), 1.0, "oracle must detect everything");

    let chaos: ChaosSchedule = ChaosInjector::new(plan.clone())
        .unwrap()
        .schedule(stream.iter().map(|e| e.seq).collect::<Vec<_>>());
    assert!(!chaos.is_empty(), "the plan must arm at least one envelope");
    let mut rt = serving_runtime(f, shards);
    // The supervised runtime re-ingests the same fleet day — bitwise the
    // same stream, and its sequence counter advances identically.
    let (stream2, _) = violating_stream(f, &mut rt, fleet);
    assert_eq!(stream, stream2, "ingest must be deterministic");
    let got = rt.serve_supervised(stream2, sup, Some(&chaos)).unwrap();
    let got_snap = rt.snapshot().to_json();

    assert_eq!(want.outcomes, got.report.outcomes, "shards={shards}: outcomes diverged");
    assert_eq!(
        format!("{:?}", want.outcomes),
        format!("{:?}", got.report.outcomes),
        "shards={shards}: f64 bits diverged"
    );
    if want_snap != got_snap {
        let i = want_snap
            .bytes()
            .zip(got_snap.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(want_snap.len().min(got_snap.len()));
        let lo = i.saturating_sub(120);
        panic!(
            "shards={shards}: snapshot bytes diverged at byte {i}\n oracle: …{}…\n got:    …{}…",
            &want_snap[lo..(i + 120).min(want_snap.len())],
            &got_snap[lo..(i + 120).min(got_snap.len())]
        );
    }
    assert_eq!(
        detection_rate(&got.report.outcomes, &injected),
        1.0,
        "shards={shards}: recovery must not mask violations"
    );
    got.recovery
}

#[test]
fn crash_recovery_matrix_is_bitwise_equal_to_oracle() {
    let f = serve_fixture();
    let mut sup = SupervisorConfig::default();
    sup.restart_budget = u32::MAX;
    sup.checkpoint_every = 32;
    for seed in [11u64, 29] {
        let fleet = FleetGenerator::new(seed, FLEET_HOMES);
        for shards in [1usize, 2, 4] {
            let plan = ChaosPlan::periodic_panic(seed, 7, 1);
            let recovery = assert_recovery_is_bitwise(&f, &fleet, shards, &plan, &sup);
            assert!(!recovery.restarts.is_empty(), "panics must actually fire");
            assert!(recovery.quarantined.is_empty(), "single-attempt panics never quarantine");
            assert!(recovery.degraded_shards.is_empty());
            assert_eq!(recovery.fallback_decisions, 0);
        }
    }
}

#[test]
fn continual_learning_never_masks_detection() {
    use jarvis_repro::rl::DqnConfig;
    use jarvis_repro::runtime::{OnlineConfig, ShadowGates, SwapPoint};

    // Online learning on (short fold cadence so many folds fire mid-stream)
    // and a mid-stream policy swap: engineered violations sprayed across
    // the whole day — before, between, and after folds and the swap — must
    // every one be flagged. Injections are spaced wider than a fold window
    // per home, so no window ever supports the attack pairs and hysteresis
    // never admits them, even while the benign routine is being admitted.
    let f = serve_fixture();
    let mut rt = serving_runtime(&f, 2);
    rt.enable_online(
        OnlineConfig { fold_every: 64, ..OnlineConfig::default() },
        ShadowGates::default(),
    )
    .unwrap();
    let mut alt = DqnConfig::new(f.policy.config().state_dim, f.policy.config().num_actions);
    alt.hidden = vec![16];
    alt.seed = 99;
    let alt = jarvis_repro::rl::DqnAgent::new(alt).unwrap();
    let version = rt.policy_store_mut().unwrap().register(alt.checkpoint());

    let fleet = FleetGenerator::new(47, FLEET_HOMES);
    let base = rt.ingest_fleet_day(&fleet, 1, None, Some(QUERY_EVERY)).unwrap().envelopes;
    let violation = f.home.mini_action("door_sensor", "power_off");
    let mut stream = Vec::with_capacity(base.len() + base.len() / 150 + 1);
    let mut injected = Vec::new();
    for (i, env) in base.into_iter().enumerate() {
        stream.push(env);
        if i % 150 == 149 {
            let minute = stream.last().map_or(0, |e: &Envelope| e.minute);
            let home = (i / 150) as u64 % u64::from(FLEET_HOMES);
            injected.push(stream.len());
            stream.push(Envelope { seq: 0, home, minute, kind: EventKind::Action(violation) });
        }
    }
    for (seq, env) in stream.iter_mut().enumerate() {
        env.seq = seq as u64;
    }
    let injected: Vec<u64> = injected.into_iter().map(|pos| pos as u64).collect();
    let at_seq = stream.len() as u64 / 2;
    let report = rt.serve_online(stream, &[SwapPoint { at_seq, version }]).unwrap();

    assert_eq!(
        detection_rate(&report.outcomes, &injected),
        1.0,
        "folds and swaps must not mask engineered violations"
    );
    let pre = injected.iter().filter(|&&s| s < at_seq).count();
    assert!(pre > 0 && pre < injected.len(), "injections must span the swap point");
    let folds: u64 = (0..u64::from(FLEET_HOMES))
        .filter_map(|id| rt.slot(id).and_then(|s| s.online()).map(|o| o.folds))
        .sum();
    assert!(folds > 0, "folds must actually fire mid-stream");
    // The benign routine *does* get admitted over the day — the table
    // genuinely grows online — yet detection above stayed 1.0: had any
    // attack pair been admitted, a later injection of it would have been
    // served as Safe and detection would have dropped below 1.0.
    let admitted: u64 = (0..u64::from(FLEET_HOMES))
        .filter_map(|id| rt.slot(id).and_then(|s| s.online()).map(|o| o.admitted))
        .sum();
    assert!(admitted > 0, "the benign routine shift should clear hysteresis");
    assert_eq!(rt.policy_store().unwrap().active(), version, "the swap must have landed");
}

#[test]
fn stall_injection_exercises_the_deadline_watchdog() {
    let f = serve_fixture();
    let mut sup = SupervisorConfig::default();
    sup.restart_budget = u32::MAX;
    sup.deadline_ticks = 100;
    sup.checkpoint_every = 32;
    let fleet = FleetGenerator::new(17, FLEET_HOMES);
    let plan = ChaosPlan {
        seed: 17,
        rules: vec![ChaosRule::every_kth(ChaosKind::Stall { ticks: 300, attempts: 1 }, 19)],
    };
    let recovery = assert_recovery_is_bitwise(&f, &fleet, 2, &plan, &sup);
    assert!(!recovery.restarts.is_empty(), "over-deadline stalls must trip the watchdog");
    assert!(recovery
        .restarts
        .iter()
        .all(|r| r.cause == jarvis_repro::runtime::FailureCause::DeadlineOverrun));
}
