//! Fault-matrix robustness harness: sweep fault rates × seeds through the
//! whole pipeline and check that detection degrades *gracefully* — the
//! false-positive rate of the learned safe-transition table stays bounded
//! and (near-)monotone in the fault rate, known gaps never inflate it, and
//! no pipeline stage panics at any swept rate.
//!
//! The degradation curves themselves are regenerated at larger scale by
//! `cargo run -p jarvis-bench --bin robustness` and recorded in
//! EXPERIMENTS.md.

use jarvis_repro::attacks::{build_corpus, evaluate_detection, inject_violation};
use jarvis_repro::core::{Jarvis, JarvisConfig, OptimizerConfig};
use jarvis_repro::model::{Episode, EpisodeConfig, TimeStep};
use jarvis_repro::policy::{flag_violations, MatchMode, SafeTransitionTable};
use jarvis_repro::sim::{FaultInjector, FaultKind, FaultPlan, FaultRule, HomeDataset};
use jarvis_repro::smart_home::{EventLog, SmartHome};

const LEARN_DAYS: std::ops::Range<u32> = 0..3;

fn fast_config() -> JarvisConfig {
    JarvisConfig {
        filter: None,
        optimizer: OptimizerConfig::fast(),
        ..JarvisConfig::default()
    }
}

/// Learn the table from the clean stream.
fn clean_baseline(seed: u64) -> (Jarvis, HomeDataset) {
    let data = HomeDataset::home_a(seed);
    let mut jarvis = Jarvis::new(SmartHome::evaluation_home(), fast_config());
    jarvis.learning_phase(&data, LEARN_DAYS).unwrap();
    jarvis.learn_policies().unwrap();
    (jarvis, data)
}

/// Re-ingest the same days through a fault plan and return the episodes.
fn faulted_episodes(data: &HomeDataset, plan: FaultPlan) -> Vec<Episode> {
    let injector = FaultInjector::new(plan).unwrap();
    let home = SmartHome::evaluation_home();
    let mut log = EventLog::new();
    for day in LEARN_DAYS {
        log.record_faulted_activity(&home, &injector.inject(data, day));
    }
    log.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap().episodes
}

/// Fraction of active (non-idle, non-gap) transitions the table flags. With
/// no attacks injected, every flag is a false positive.
fn false_positive_rate(table: &SafeTransitionTable, episodes: &[Episode], mode: MatchMode) -> f64 {
    let mut flagged = 0usize;
    let mut active = 0usize;
    for ep in episodes {
        active += ep.transitions().iter().filter(|tr| !tr.is_idle() && !tr.gap).count();
        flagged += flag_violations(table, ep, mode).len();
    }
    flagged as f64 / active.max(1) as f64
}

#[test]
fn fp_degradation_is_bounded_and_monotone_in_drop_rate() {
    let rates = [0.0, 0.01, 0.03, 0.05];
    for seed in [7u64, 23] {
        let (jarvis, data) = clean_baseline(seed);
        let table = &jarvis.outcome().unwrap().table;
        let mut gen_curve = Vec::new();
        for &rate in &rates {
            let eps = faulted_episodes(&data, FaultPlan::uniform_drop(seed, rate));
            // Exact matching amplifies a single dropped event into a skewed
            // joint state; even so it must not blow up at ≤ 5% drop.
            let exact = false_positive_rate(table, &eps, MatchMode::Exact);
            assert!(
                exact <= 0.6,
                "seed {seed}: exact-mode FP rate {exact:.3} at drop rate {rate} blew up"
            );
            gen_curve.push(false_positive_rate(table, &eps, MatchMode::Generalized));
        }
        // Generalized triggers (the runtime constraint mode) are the
        // graceful-degradation headline: clean at rate 0, bounded at 5%.
        assert_eq!(
            gen_curve[0], 0.0,
            "seed {seed}: zero-fault replay of the training stream must be clean"
        );
        for (i, &fp) in gen_curve.iter().enumerate() {
            assert!(
                fp <= 0.35,
                "seed {seed}: FP rate {fp:.3} at drop rate {} not gracefully bounded",
                rates[i]
            );
        }
        // Drop sets nest across rates under one seed, so the curve is
        // monotone up to re-slotting noise.
        for w in gen_curve.windows(2) {
            assert!(
                w[1] + 0.02 >= w[0],
                "seed {seed}: FP curve not near-monotone: {gen_curve:?}"
            );
        }
    }
}

#[test]
fn known_gaps_do_not_inflate_false_positives() {
    let (jarvis, data) = clean_baseline(11);
    let table = &jarvis.outcome().unwrap().table;
    // Take the lock (a high-activity device) fully offline for two long
    // windows each day: every covered interval is flagged as a gap and
    // skipped by the detector.
    let plan = FaultPlan {
        seed: 11,
        rules: vec![FaultRule::for_device(
            FaultKind::Offline { windows: 2, max_minutes: 240 },
            "lock",
        )],
    };
    let eps = faulted_episodes(&data, plan);
    let gaps: usize = eps.iter().map(Episode::num_gaps).sum();
    assert!(gaps > 0, "offline windows must flag gaps");
    let fp = false_positive_rate(table, &eps, MatchMode::Generalized);
    assert!(
        fp <= 0.10,
        "FP rate {fp:.3}: known outages should be absorbed, not flagged"
    );
}

#[test]
fn combined_fault_kinds_never_panic_and_detection_survives() {
    // Every fault model at once, at aggressive rates, across seeds: the
    // pipeline must parse, learn, and still detect engineered violations.
    let corpus_steps = [TimeStep(400), TimeStep(900)];
    for seed in [3u64, 19] {
        let (jarvis, data) = clean_baseline(seed);
        let table = &jarvis.outcome().unwrap().table;
        let plan = FaultPlan {
            seed,
            rules: vec![
                FaultRule::all_day(FaultKind::Drop { rate: 0.05 }),
                FaultRule::all_day(FaultKind::Duplicate { rate: 0.05 }),
                FaultRule::all_day(FaultKind::Delay { rate: 0.05, max_minutes: 5 }),
                FaultRule::all_day(FaultKind::StuckAt { rate: 0.02, hold_minutes: 30 }),
                FaultRule::all_day(FaultKind::Offline { windows: 1, max_minutes: 60 }),
            ],
        };
        let eps = faulted_episodes(&data, plan);
        assert_eq!(eps.len(), LEARN_DAYS.len());
        for ep in &eps {
            assert_eq!(ep.len(), 1440);
        }
        // Engineered violations on the faulted bases are still caught: the
        // corpus transitions were never learned, faults or no faults.
        let home = jarvis.home();
        let corpus = build_corpus(home);
        let injected: Vec<_> = corpus
            .iter()
            .step_by(10)
            .flat_map(|v| {
                corpus_steps
                    .iter()
                    .filter_map(|&t| inject_violation(home, &eps[0], v, t).ok())
                    .collect::<Vec<_>>()
            })
            .collect();
        assert!(!injected.is_empty());
        let report = evaluate_detection(table, &injected, MatchMode::Exact);
        assert_eq!(
            report.detected, report.total,
            "seed {seed}: faults must not mask engineered violations"
        );
    }
}
