//! End-to-end security integration: detection of the violation corpus and
//! filtering of benign anomalies, across the full pipeline.

use jarvis_repro::attacks::{
    build_corpus, eval::evaluate_filter, evaluate_detection, inject_anomaly, inject_violation,
};
use jarvis_repro::core::{Jarvis, JarvisConfig, OptimizerConfig, RewardWeights};
use jarvis_repro::model::TimeStep;
use jarvis_repro::policy::{FilterConfig, MatchMode};
use jarvis_repro::sim::{AnomalyGenerator, HomeDataset};
use jarvis_repro::smart_home::SmartHome;
use jarvis_stdkit::rng::{Rng, SeedableRng};

fn learned_jarvis(seed: u64, with_filter: bool) -> (Jarvis, HomeDataset) {
    let data = HomeDataset::home_a(seed);
    let config = JarvisConfig {
        anomaly_training_samples: 1_500,
        filter: with_filter
            .then(|| FilterConfig { epochs: 8, seed, ..FilterConfig::default() }),
        optimizer: OptimizerConfig { episodes: 2, ..OptimizerConfig::default() },
        weights: RewardWeights::balanced(),
        ..JarvisConfig::default()
    };
    let mut jarvis = Jarvis::new(SmartHome::evaluation_home(), config);
    jarvis.learning_phase(&data, 0..7).unwrap();
    if with_filter {
        jarvis.train_filter(seed).unwrap();
    }
    jarvis.learn_policies().unwrap();
    (jarvis, data)
}

#[test]
fn corpus_detection_is_total() {
    // 3 random injections per violation (the bench harness runs the paper's
    // full 100) — every single one must be flagged.
    let (jarvis, _) = learned_jarvis(42, false);
    let outcome = jarvis.outcome().unwrap();
    let corpus = build_corpus(jarvis.home());
    let episodes = jarvis.episodes();
    let mut rng = jarvis_stdkit::rng::ChaCha8Rng::seed_from_u64(1);
    let mut injected = Vec::new();
    for v in &corpus {
        for _ in 0..3 {
            let base = &episodes[rng.gen_range(0..episodes.len())];
            let step = TimeStep(rng.gen_range(0_u32..1440));
            injected.push(inject_violation(jarvis.home(), base, v, step).unwrap());
        }
    }
    let report = evaluate_detection(&outcome.table, &injected, MatchMode::Exact);
    assert_eq!(report.total, 214 * 3);
    assert_eq!(report.detected, report.total, "missed: {:?}", report.missed_sources);
}

#[test]
fn benign_anomalies_are_filtered_not_flagged() {
    let (jarvis, _) = learned_jarvis(17, true);
    let filter = jarvis.filter().unwrap();
    let episodes = jarvis.episodes();
    let generator = AnomalyGenerator::new(91);
    let mut rng = jarvis_stdkit::rng::ChaCha8Rng::seed_from_u64(2);
    let injected: Vec<_> = generator
        .generate(400, 30)
        .iter()
        .enumerate()
        .map(|(i, inst)| {
            let base = &episodes[rng.gen_range(0..episodes.len())];
            inject_anomaly(jarvis.home(), base, inst, i).unwrap()
        })
        .collect();
    let report = evaluate_filter(filter, &injected);
    assert!(
        report.accuracy() > 0.95,
        "filter accuracy {:.3} below the paper's ballpark",
        report.accuracy()
    );
}

#[test]
fn detection_is_unaffected_by_filter_training() {
    // In the paper's threat model the ANN only cleans the *learning data*;
    // runtime detection consults P_safe alone. Training the filter must not
    // weaken detection of the corpus.
    let (jarvis, _) = learned_jarvis(23, true);
    let outcome = jarvis.outcome().unwrap();
    let corpus = build_corpus(jarvis.home());
    let base = &jarvis.episodes()[3];
    for v in corpus.iter().step_by(5) {
        let injected =
            inject_violation(jarvis.home(), base, v, TimeStep(10 * 60)).unwrap();
        let flags = jarvis_repro::policy::flag_violations(
            &outcome.table,
            &injected.episode,
            MatchMode::Exact,
        );
        assert!(
            flags.contains(&injected.injected_step),
            "missed `{}` with filter trained",
            v.description
        );
    }
}

#[test]
fn ablation_without_filter_flags_benign_anomalies() {
    // Disabling the ANN (an Algorithm 1 ablation) turns every engineered
    // benign anomaly into a violation — the false positives the filter is
    // there to remove.
    let (jarvis, _) = learned_jarvis(5, false);
    let outcome = jarvis.outcome().unwrap();
    let episodes = jarvis.episodes();
    let generator = AnomalyGenerator::new(55);
    let mut rng = jarvis_stdkit::rng::ChaCha8Rng::seed_from_u64(3);
    let injected: Vec<_> = generator
        .generate(300, 7)
        .iter()
        .enumerate()
        .map(|(i, inst)| {
            let base = &episodes[rng.gen_range(0..episodes.len())];
            inject_anomaly(jarvis.home(), base, inst, i).unwrap()
        })
        .collect();
    let flagged = injected
        .iter()
        .filter(|inj| {
            jarvis_repro::policy::flag_violations(
                &outcome.table,
                &inj.episode,
                MatchMode::Exact,
            )
            .contains(&inj.injected_step)
        })
        .count();
    // Benign anomalies live near routine behavior by construction, so a
    // fraction happens to coincide with learned-safe pairs; but without the
    // ANN a large share is (wrongly) flagged as violations — the false
    // positives Figure 5's filter exists to remove.
    let rate = flagged as f64 / injected.len() as f64;
    assert!(
        rate > 0.5,
        "without the ANN most benign anomalies should be flagged ({flagged}/{})",
        injected.len()
    );
}
