//! Serialization round trips across the workspace: everything a deployment
//! would persist (device specs, logs, learned tables, trained networks)
//! survives JSON without loss.

use jarvis_repro::model::EpisodeConfig;
use jarvis_repro::policy::{learn_safe_transitions, MatchMode, SplConfig};
use jarvis_repro::sim::HomeDataset;
use jarvis_repro::smart_home::{devices, EventLog, SmartHome};

#[test]
fn device_catalogue_round_trips() {
    for dev in devices::evaluation_devices() {
        let json = serde_json::to_string(&dev).unwrap();
        let back: jarvis_repro::model::DeviceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(dev, back);
    }
}

#[test]
fn event_log_round_trips_as_json_lines() {
    let home = SmartHome::evaluation_home();
    let data = HomeDataset::home_a(3);
    let mut log = EventLog::new();
    log.record_activity(&home, &data.activity(1));
    let text = log.to_json_lines().unwrap();
    let back = EventLog::from_json_lines(&text).unwrap();
    assert_eq!(log, back);
    // Parsed episodes from original and round-tripped logs agree.
    let a = log.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();
    let b = back.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();
    assert_eq!(a.episodes, b.episodes);
}

#[test]
fn learned_safe_table_round_trips_with_behavior() {
    let home = SmartHome::evaluation_home();
    let data = HomeDataset::home_a(9);
    let mut log = EventLog::new();
    for day in 0..3 {
        log.record_activity(&home, &data.activity(day));
    }
    let episodes = log
        .parse_episodes(&home, EpisodeConfig::DAILY_MINUTES)
        .unwrap()
        .episodes;
    let outcome = learn_safe_transitions(home.fsm(), &episodes, None, &SplConfig::default());

    let table_json = serde_json::to_string(&outcome.table).unwrap();
    let table_back: jarvis_repro::policy::SafeTransitionTable =
        serde_json::from_str(&table_json).unwrap();
    assert_eq!(outcome.table, table_back);
    // Deserialized table makes identical decisions.
    for tr in episodes[0].transitions().iter().filter(|t| !t.is_idle()).take(50) {
        for mode in [MatchMode::Exact, MatchMode::DeviceContext, MatchMode::Generalized] {
            assert_eq!(
                outcome.table.is_safe_action(&tr.state, &tr.action, mode),
                table_back.is_safe_action(&tr.state, &tr.action, mode),
            );
        }
    }

    let behavior_json = serde_json::to_string(&outcome.behavior).unwrap();
    let behavior_back: jarvis_repro::policy::TaBehavior =
        serde_json::from_str(&behavior_json).unwrap();
    assert_eq!(outcome.behavior, behavior_back);
}

#[test]
fn trained_network_round_trips_exactly() {
    use jarvis_repro::neural::{Activation, Loss, Network, OptimizerKind};
    let mut net = Network::builder(4)
        .layer(8, Activation::Tanh)
        .layer(2, Activation::Linear)
        .loss(Loss::Mse)
        .optimizer(OptimizerKind::adam(0.01))
        .seed(5)
        .build()
        .unwrap();
    let x = [0.1, 0.2, 0.3, 0.4];
    let y = [1.0, -1.0];
    for _ in 0..20 {
        net.train_batch(&[&x], &[&y]).unwrap();
    }
    let back = Network::from_json(&net.to_json().unwrap()).unwrap();
    assert_eq!(net.predict(&x).unwrap(), back.predict(&x).unwrap());
}

#[test]
fn episodes_round_trip() {
    let home = SmartHome::evaluation_home();
    let data = HomeDataset::home_a(13);
    let mut log = EventLog::new();
    log.record_activity(&home, &data.activity(2));
    let ep = log
        .parse_episodes(&home, EpisodeConfig::DAILY_MINUTES)
        .unwrap()
        .episodes
        .remove(0);
    let json = serde_json::to_string(&ep).unwrap();
    let back: jarvis_repro::model::Episode = serde_json::from_str(&json).unwrap();
    assert_eq!(ep, back);
}
