//! Serialization round trips across the workspace: everything a deployment
//! would persist (device specs, logs, learned tables, trained networks)
//! survives JSON without loss — plus malformed-input tests exercising the
//! strict in-tree codec (truncated documents, wrong field types, unknown
//! fields must all return `Err`, never panic).

use jarvis_repro::model::EpisodeConfig;
use jarvis_repro::policy::{learn_safe_transitions, MatchMode, SplConfig};
use jarvis_repro::sim::HomeDataset;
use jarvis_repro::smart_home::{devices, EventLog, SmartHome};
use jarvis_stdkit::json::{FromJson, ToJson};

#[test]
fn device_catalogue_round_trips() {
    for dev in devices::evaluation_devices() {
        let json = dev.to_json();
        let back = jarvis_repro::model::DeviceSpec::from_json(&json).unwrap();
        assert_eq!(dev, back);
    }
}

#[test]
fn event_log_round_trips_as_json_lines() {
    let home = SmartHome::evaluation_home();
    let data = HomeDataset::home_a(3);
    let mut log = EventLog::new();
    log.record_activity(&home, &data.activity(1));
    let text = log.to_json_lines().unwrap();
    let back = EventLog::from_json_lines(&text).unwrap();
    assert_eq!(log, back);
    // Parsed episodes from original and round-tripped logs agree.
    let a = log.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();
    let b = back.parse_episodes(&home, EpisodeConfig::DAILY_MINUTES).unwrap();
    assert_eq!(a.episodes, b.episodes);
}

#[test]
fn learned_safe_table_round_trips_with_behavior() {
    let home = SmartHome::evaluation_home();
    let data = HomeDataset::home_a(9);
    let mut log = EventLog::new();
    for day in 0..3 {
        log.record_activity(&home, &data.activity(day));
    }
    let episodes = log
        .parse_episodes(&home, EpisodeConfig::DAILY_MINUTES)
        .unwrap()
        .episodes;
    let outcome = learn_safe_transitions(home.fsm(), &episodes, None, &SplConfig::default());

    let table_json = outcome.table.to_json();
    let table_back =
        jarvis_repro::policy::SafeTransitionTable::from_json(&table_json).unwrap();
    assert_eq!(outcome.table, table_back);
    // Deserialized table makes identical decisions.
    for tr in episodes[0].transitions().iter().filter(|t| !t.is_idle()).take(50) {
        for mode in [MatchMode::Exact, MatchMode::DeviceContext, MatchMode::Generalized] {
            assert_eq!(
                outcome.table.is_safe_action(&tr.state, &tr.action, mode),
                table_back.is_safe_action(&tr.state, &tr.action, mode),
            );
        }
    }

    let behavior_json = outcome.behavior.to_json();
    let behavior_back = jarvis_repro::policy::TaBehavior::from_json(&behavior_json).unwrap();
    assert_eq!(outcome.behavior, behavior_back);
}

#[test]
fn trained_network_round_trips_exactly() {
    use jarvis_repro::neural::{Activation, Loss, Network, OptimizerKind};
    let mut net = Network::builder(4)
        .layer(8, Activation::Tanh)
        .layer(2, Activation::Linear)
        .loss(Loss::Mse)
        .optimizer(OptimizerKind::adam(0.01))
        .seed(5)
        .build()
        .unwrap();
    let x = [0.1, 0.2, 0.3, 0.4];
    let y = [1.0, -1.0];
    for _ in 0..20 {
        net.train_batch(&[&x], &[&y]).unwrap();
    }
    let back = Network::from_json(&net.to_json().unwrap()).unwrap();
    assert_eq!(net.predict(&x).unwrap(), back.predict(&x).unwrap());
}

#[test]
fn episodes_round_trip() {
    let home = SmartHome::evaluation_home();
    let data = HomeDataset::home_a(13);
    let mut log = EventLog::new();
    log.record_activity(&home, &data.activity(2));
    let ep = log
        .parse_episodes(&home, EpisodeConfig::DAILY_MINUTES)
        .unwrap()
        .episodes
        .remove(0);
    let json = ep.to_json();
    let back = jarvis_repro::model::Episode::from_json(&json).unwrap();
    assert_eq!(ep, back);
}

// ---------------------------------------------------------------------------
// Malformed input: the strict codec must reject — never panic on — documents
// that are truncated, mistyped, or carry unexpected fields.
// ---------------------------------------------------------------------------

/// Truncating valid JSON at any byte boundary yields `Err`, not a panic.
#[test]
fn truncated_json_always_errs() {
    let dev = devices::evaluation_devices().remove(0);
    let json = dev.to_json();
    for cut in 0..json.len() {
        let prefix = match json.get(..cut) {
            Some(p) => p,
            None => continue, // non-UTF-8 boundary (none in practice: ASCII)
        };
        assert!(
            jarvis_repro::model::DeviceSpec::from_json(prefix).is_err(),
            "truncation at byte {cut} must not parse"
        );
    }
}

/// A field with the wrong JSON type is rejected.
#[test]
fn wrong_field_types_are_rejected() {
    use jarvis_repro::model::{DeviceSpec, Episode, Event};
    let dev = devices::evaluation_devices().remove(0);
    let json = dev.to_json();
    // Swap the "name" string for a number.
    let broken = json.replacen(&format!("\"name\":\"{}\"", dev.name()), "\"name\":7", 1);
    assert_ne!(json, broken, "substitution must hit");
    assert!(DeviceSpec::from_json(&broken).is_err());
    // A bare scalar where an object is expected.
    assert!(Episode::from_json("42").is_err());
    assert!(Event::from_json("\"not an event\"").is_err());
    assert!(Episode::from_json("[]").is_err());
}

/// Unknown fields are rejected (strict decoding), as are duplicate keys.
#[test]
fn unknown_and_duplicate_fields_are_rejected() {
    use jarvis_repro::model::DeviceSpec;
    let dev = devices::evaluation_devices().remove(0);
    let json = dev.to_json();
    let with_unknown = format!("{}{}", &json[..json.len() - 1], ",\"bogus\":1}");
    assert!(DeviceSpec::from_json(&with_unknown).is_err(), "unknown field must be rejected");
    let with_dup = format!(
        "{}{}",
        &json[..json.len() - 1],
        format!(",\"name\":\"{}\"}}", dev.name())
    );
    assert!(DeviceSpec::from_json(&with_dup).is_err(), "duplicate key must be rejected");
}

/// Syntax garbage in every common shape returns `Err`.
#[test]
fn syntax_errors_are_rejected() {
    use jarvis_repro::model::DeviceSpec;
    for bad in [
        "",
        "   ",
        "{",
        "}",
        "{]",
        "nul",
        "truefalse",
        "{\"a\":}",
        "{\"a\":1,}",
        "[1,2,,3]",
        "\"unterminated",
        "{\"a\" 1}",
        "01",
        "- 1",
        "1e",
        "\u{1}",
        "{\"a\":1}trailing",
    ] {
        assert!(DeviceSpec::from_json(bad).is_err(), "{bad:?} must not parse");
    }
}

/// A mangled line inside a JSON-lines log errs without losing the panic-free
/// guarantee.
#[test]
fn mangled_log_line_errs() {
    let home = SmartHome::evaluation_home();
    let data = HomeDataset::home_a(5);
    let mut log = EventLog::new();
    log.record_activity(&home, &data.activity(0));
    let text = log.to_json_lines().unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return;
    }
    let mangled = &lines[0][..lines[0].len() / 2];
    lines[0] = mangled;
    let rejoined = lines.join("\n");
    assert!(EventLog::from_json_lines(&rejoined).is_err());
}
